"""Executable form of a synthesized task.

The paper's flow generates C code that is compiled and run on the target
processor.  For the reproduction we also need to *execute* the synthesized
task so the experiments can compare it against the multi-task baseline; this
module provides that executable form: it walks the schedule graph, runs the
code fragments attached to the transitions through the FlowC interpreter, and
resolves data-dependent choices at run time -- exactly the behaviour of the
generated ISR of Section 6.4 (static order of transitions, run-time resolution
of data choices, state kept between invocations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.flowc.compiler import SelectCondition
from repro.flowc.interpreter import Environment, Interpreter, OperationCounter, WouldBlock
from repro.flowc.linker import LinkedSystem
from repro.petrinet.net import PetriNet, Transition
from repro.runtime.channels import CommunicationStats, PortBinding
from repro.scheduling.schedule import Schedule, ScheduleNode


class TaskExecutionError(Exception):
    """Raised when the synthesized task cannot make progress correctly."""


@dataclass
class TaskStatistics:
    """Execution statistics of one synthesized task."""

    events_served: int = 0
    transitions_executed: int = 0
    data_choices_resolved: int = 0
    state_updates: int = 0


class ExecutableTask:
    """Interpreted execution of a schedule as a single software task.

    Parameters
    ----------
    system:
        The linked system the schedule was computed for (supplies the per
        process declarations and port naming).
    schedule:
        The (single-source) schedule generated for one uncontrollable input.
    binding:
        Port binding supplying intra-task buffers, environment sources and
        sinks.  Multiple tasks of the same system may share one binding.
    environments:
        Optional shared per-process variable environments (shared when several
        tasks are generated for the same system).
    """

    def __init__(
        self,
        system: LinkedSystem,
        schedule: Schedule,
        binding: PortBinding,
        *,
        environments: Optional[Dict[str, Environment]] = None,
        counter: Optional[OperationCounter] = None,
        max_steps_per_event: int = 1_000_000,
    ):
        self.system = system
        self.schedule = schedule
        self.binding = binding
        self.net: PetriNet = schedule.net
        self.counter = counter if counter is not None else OperationCounter()
        self.stats = TaskStatistics()
        self.max_steps_per_event = max_steps_per_event
        self.environments: Dict[str, Environment] = environments if environments is not None else {}
        self._interpreters: Dict[str, Interpreter] = {}
        # place name -> (process, port name) of the port place, used to map
        # net-level places back to FlowC ports when resolving SELECT choices
        self._port_names: Dict[str, Tuple[str, str]] = {}
        for (process, port), place in system.port_place_of.items():
            self._port_names.setdefault(place, (process, port))
        self._uncontrollable = set(self.net.uncontrollable_sources())
        self._await_nodes = {node.index for node in schedule.await_nodes()}
        self.current_node: int = schedule.root
        self._initialise_environments()

    # ------------------------------------------------------------------
    # initialisation (Section 6.4.2)
    # ------------------------------------------------------------------
    def _initialise_environments(self) -> None:
        for process_name in self.system.network.processes:
            if process_name not in self.environments:
                self.environments[process_name] = Environment(process_name)
        for process_name, declarations in self.system.declarations.items():
            interpreter = self._interpreter_for(process_name)
            for declaration in declarations:
                interpreter.execute(declaration)

    def _interpreter_for(self, process: str) -> Interpreter:
        if process not in self._interpreters:
            self._interpreters[process] = Interpreter(
                self.environments[process], self.binding, counter=self.counter
            )
        return self._interpreters[process]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def source_transition(self) -> str:
        return self.schedule.source_transition

    def react(self, value: Any = 0) -> None:
        """Serve one occurrence of the task's uncontrollable input.

        The input value is latched into the environment source bound to the
        triggering port (Section 8.1), then the ISR body runs: transitions are
        executed in schedule order, data-dependent choices are resolved from
        the current variable values, and execution stops at the next await
        node.
        """
        source_ref = None
        for ref, transition in self.system.environment_transitions.items():
            if transition == self.source_transition:
                source_ref = ref
                break
        if source_ref is not None and source_ref.port in self.binding.sources:
            self.binding.sources[source_ref.port].offer(value)

        node = self.schedule.node(self.current_node)
        if self.source_transition not in node.edges:
            raise TaskExecutionError(
                f"task is at node {node.index} which cannot serve {self.source_transition!r}"
            )
        self.stats.events_served += 1
        # fire the source edge (the event itself), then continue to the next await node
        node = self.schedule.node(node.edges[self.source_transition])
        steps = 0
        while True:
            steps += 1
            if steps > self.max_steps_per_event:
                raise TaskExecutionError("task exceeded the step budget for one event")
            outgoing = node.edges
            if set(outgoing) & self._uncontrollable:
                break
            if not outgoing:
                raise TaskExecutionError(f"schedule node {node.index} has no outgoing edges")
            if len(outgoing) == 1:
                transition = next(iter(outgoing))
            else:
                transition = self._resolve_choice(node)
                self.stats.data_choices_resolved += 1
            self._execute_transition(transition)
            node = self.schedule.node(outgoing[transition])
        self.current_node = node.index

    def run_events(self, values: Sequence[Any]) -> None:
        for value in values:
            self.react(value)

    # ------------------------------------------------------------------
    # choice resolution
    # ------------------------------------------------------------------
    def _choice_place_of(self, node: ScheduleNode) -> str:
        transitions = list(node.edges)
        shared = None
        for place in self.net.pre[transitions[0]]:
            obj = self.net.places[place]
            if obj.condition is not None and all(
                place in self.net.pre[t] for t in transitions
            ):
                shared = place
                break
        if shared is None:
            raise TaskExecutionError(
                f"cannot determine the choice place for node {node.index} "
                f"(transitions {sorted(transitions)})"
            )
        return shared

    def _resolve_choice(self, node: ScheduleNode) -> str:
        place = self._choice_place_of(node)
        place_obj = self.net.places[place]
        condition = place_obj.condition
        process = place_obj.process
        if process is None:
            raise TaskExecutionError(f"choice place {place!r} has no owning process")
        interpreter = self._interpreter_for(process)
        guards: Dict[str, Optional[object]] = {
            t: self.net.transitions[t].guard for t in node.edges
        }
        if isinstance(condition, SelectCondition):
            index = interpreter.evaluate(condition.select)
            for transition, guard in guards.items():
                if guard == index:
                    return transition
            raise TaskExecutionError(
                f"SELECT resolved to branch {index} which is not part of the schedule "
                f"at node {node.index}"
            )
        value = interpreter.evaluate(condition)
        boolean_guards = set(guards.values()) <= {True, False, None}
        if boolean_guards:
            wanted = bool(value)
            for transition, guard in guards.items():
                if guard == wanted:
                    return transition
            raise TaskExecutionError(
                f"no branch for condition value {wanted!r} at node {node.index}"
            )
        # data switch: match the case value, falling back to 'default'
        for transition, guard in guards.items():
            if guard == value:
                return transition
        for transition, guard in guards.items():
            if guard == "default":
                return transition
        raise TaskExecutionError(
            f"no case matches value {value!r} at node {node.index}"
        )

    # ------------------------------------------------------------------
    # transition execution
    # ------------------------------------------------------------------
    def _execute_transition(self, transition: str) -> None:
        obj: Transition = self.net.transitions[transition]
        self.stats.transitions_executed += 1
        self.stats.state_updates += 1
        if obj.is_source or obj.is_sink:
            # environment interactions are realised by the port latches and
            # sinks; the transition itself carries no code
            return
        if not obj.code:
            return
        process = obj.process
        if process is None:
            return
        interpreter = self._interpreter_for(process)
        try:
            interpreter.run(list(obj.code))
        except WouldBlock as error:
            raise TaskExecutionError(
                f"synthesized task blocked on port {error.port!r}: the schedule "
                "guarantees this cannot happen, so the binding is inconsistent"
            ) from error

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def communication_stats(self) -> CommunicationStats:
        return self.binding.stats

    def describe_state(self) -> str:
        node = self.schedule.node(self.current_node)
        return f"await node {node.index} [{node.marking.pretty()}]"
