"""Code generation: from schedules to software tasks (Section 6).

* :mod:`repro.codegen.segments` -- threads and code segments: loop cutting
  and the traverse / compare algorithm (Section 6.2).
* :mod:`repro.codegen.synthesis` -- C source synthesis: declarations,
  initialisation and the ISR with execution / update / jump sections
  (Section 6.4).
* :mod:`repro.codegen.task` -- an executable (interpreted) form of the
  synthesized task, used by the simulation substrate in place of the paper's
  VCC / R3000 execution environment.
"""

from repro.codegen.segments import (
    CodeSegment,
    CodeSegmentNode,
    SegmentSet,
    Thread,
    extract_code_segments,
    extract_threads,
)
from repro.codegen.synthesis import SynthesisOptions, SynthesizedTask, synthesize_task
from repro.codegen.task import ExecutableTask, TaskExecutionError

__all__ = [
    "CodeSegment",
    "CodeSegmentNode",
    "ExecutableTask",
    "SegmentSet",
    "SynthesisOptions",
    "SynthesizedTask",
    "TaskExecutionError",
    "Thread",
    "extract_code_segments",
    "extract_threads",
    "synthesize_task",
]
