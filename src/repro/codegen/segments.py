"""Threads and code segments (Sections 6.1 and 6.2).

A *thread* is the portion of a schedule between an await node and the next
await nodes: the reaction to one environment event.  A *code segment* is the
unit of generated code: a tree of ECSs shared by one or more threads, so that
the code of each ECS is emitted exactly once no matter how many schedule nodes
carry it.

The construction below is an equivalent reformulation of the paper's
traverse / compare algorithm.  Schedule nodes are grouped by their ECS (node
equivalence of Section 6.1); for every ECS and outgoing transition we record
whether the successor ECS is the same for all corresponding schedule nodes:

* if it is, and the successor ECS has no other predecessor, the successor is
  inlined as a child inside the same code segment;
* otherwise the branch ends with a *jump*: deterministic (``goto`` /
  ``return``) when the successor ECS is unique, or a state-indexed switch when
  different schedule nodes continue differently (the "jump" section of
  Section 6.4.3).

The result satisfies the two properties stated at the end of Section 6.2: the
whole schedule is covered, and the executable code of each ECS is emitted
exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.petrinet.analysis import StructuralAnalysis
from repro.petrinet.marking import Marking
from repro.scheduling.schedule import Schedule, ScheduleNode

ECS = FrozenSet[str]


# ---------------------------------------------------------------------------
# Threads (Section 6.1)
# ---------------------------------------------------------------------------


@dataclass
class Thread:
    """The reaction starting at one await node of the schedule."""

    start_node: int
    nodes: Set[int] = field(default_factory=set)
    end_nodes: Set[int] = field(default_factory=set)

    def __len__(self) -> int:
        return len(self.nodes)


def extract_threads(schedule: Schedule) -> List[Thread]:
    """One thread per await node whose outgoing edge is the schedule's source."""
    await_indices = {node.index for node in schedule.await_nodes()}
    threads: List[Thread] = []
    for start in sorted(await_indices):
        node = schedule.node(start)
        if schedule.source_transition not in node.edges:
            continue
        thread = Thread(start_node=start)
        thread.nodes.add(start)
        stack = [node.edges[schedule.source_transition]]
        while stack:
            current = stack.pop()
            if current in thread.nodes and current != start:
                continue
            thread.nodes.add(current)
            if current in await_indices:
                thread.end_nodes.add(current)
                continue
            for target in schedule.node(current).edges.values():
                stack.append(target)
        threads.append(thread)
    return threads


def threads_are_equivalent(schedule: Schedule, first: Thread, second: Thread) -> bool:
    """Thread equivalence of Section 6.1: identical graphs of ECS labels."""

    def signature(thread: Thread) -> Tuple:
        items = []
        mapping = {}

        def canonical(index: int) -> int:
            if index not in mapping:
                mapping[index] = len(mapping)
            return mapping[index]

        stack = [thread.start_node]
        seen = set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            node = schedule.node(current)
            edges = []
            for transition, target in sorted(node.edges.items()):
                if target in thread.nodes:
                    edges.append((transition, canonical(target)))
                    if target not in seen and current not in thread.end_nodes:
                        stack.append(target)
            items.append((canonical(current), tuple(edges)))
        return tuple(sorted(items))

    return signature(first) == signature(second)


# ---------------------------------------------------------------------------
# Code segments (Section 6.2)
# ---------------------------------------------------------------------------


@dataclass
class JumpCase:
    """One alternative of a non-deterministic jump."""

    marking: Marking
    target_ecs: ECS
    is_return: bool


@dataclass
class JumpSpec:
    """Continuation of a branch that is not inlined in the segment."""

    deterministic: bool
    target_ecs: Optional[ECS] = None  # for deterministic jumps
    is_return: bool = False  # deterministic jump to an await node
    cases: List[JumpCase] = field(default_factory=list)

    def target_labels(self) -> Set[ECS]:
        if self.deterministic:
            return set() if self.target_ecs is None else {self.target_ecs}
        return {case.target_ecs for case in self.cases if not case.is_return}


@dataclass
class CodeSegmentNode:
    """One ECS inside a code segment."""

    ecs: ECS
    label: str
    # (marking, ECS) pairs of the schedule nodes represented by this node
    states: List[Tuple[Marking, ECS]] = field(default_factory=list)
    # inlined continuations: transition -> child node (same segment)
    children: Dict[str, "CodeSegmentNode"] = field(default_factory=dict)
    # non-inlined continuations: transition -> jump specification
    jumps: Dict[str, JumpSpec] = field(default_factory=dict)

    def schedule_nodes(self) -> List[Marking]:
        return [marking for marking, _ecs in self.states]

    def subtree(self) -> List["CodeSegmentNode"]:
        nodes = [self]
        for child in self.children.values():
            nodes.extend(child.subtree())
        return nodes


@dataclass
class CodeSegment:
    """A tree of code-segment nodes with a label for goto targets."""

    root: CodeSegmentNode

    @property
    def label(self) -> str:
        return self.root.label

    def nodes(self) -> List[CodeSegmentNode]:
        return self.root.subtree()

    def __len__(self) -> int:
        return len(self.nodes())


@dataclass
class SegmentSet:
    """All code segments of one task plus lookup tables."""

    schedule: Schedule
    source_ecs: ECS
    segments: List[CodeSegment] = field(default_factory=list)
    node_by_ecs: Dict[ECS, CodeSegmentNode] = field(default_factory=dict)

    def segment_for(self, ecs: ECS) -> CodeSegment:
        for segment in self.segments:
            if any(node.ecs == ecs for node in segment.nodes()):
                return segment
        raise KeyError(f"no segment contains ECS {sorted(ecs)}")

    @property
    def entry_segment(self) -> CodeSegment:
        """The segment containing the uncontrollable source (cs1)."""
        return self.segment_for(self.source_ecs)

    def distinct_ecss(self) -> List[ECS]:
        return list(self.node_by_ecs)

    def state_places(self) -> List[str]:
        """Places needed as state variables (Section 6.4.1).

        The intersection of the places whose count is modified by involved
        transitions with the places needed to discriminate the jump switches
        and the thread selection.
        """
        net = self.schedule.net
        updated: Set[str] = set()
        for transition in self.schedule.involved_transitions():
            pre = net.pre[transition]
            post = net.post[transition]
            for place in set(pre) | set(post):
                if post.get(place, 0) != pre.get(place, 0):
                    updated.add(place)
        needed: Set[str] = set()
        for node in self.node_by_ecs.values():
            for jump in node.jumps.values():
                if jump.deterministic or len(jump.cases) < 2:
                    continue
                markings = [case.marking for case in jump.cases]
                for place in net.places:
                    counts = {marking[place] for marking in markings}
                    if len(counts) > 1:
                        needed.add(place)
        return sorted(updated & needed) if needed else []


def ecs_label(ecs: ECS) -> str:
    return "_".join(sorted(ecs))


def extract_code_segments(
    schedule: Schedule,
    analysis: Optional[StructuralAnalysis] = None,
) -> SegmentSet:
    """Build the code segments of a schedule."""
    if analysis is None:
        analysis = StructuralAnalysis.of(schedule.net)

    # ECS of each schedule node (label of its outgoing edges)
    ecs_of_node: Dict[int, ECS] = {}
    for node in schedule.nodes:
        transitions = frozenset(node.edges)
        ecs_of_node[node.index] = transitions

    source_ecs = ecs_of_node[schedule.root]

    # one code node per distinct ECS
    node_by_ecs: Dict[ECS, CodeSegmentNode] = {}
    for node in schedule.nodes:
        ecs = ecs_of_node[node.index]
        code_node = node_by_ecs.get(ecs)
        if code_node is None:
            code_node = CodeSegmentNode(ecs=ecs, label=ecs_label(ecs))
            node_by_ecs[ecs] = code_node
        code_node.states.append((node.marking, ecs))

    # successor analysis: for each (ECS, transition), the set of successor
    # (marking, ECS) pairs over all schedule nodes carrying that ECS
    successors: Dict[Tuple[ECS, str], List[Tuple[Marking, ECS]]] = {}
    for node in schedule.nodes:
        ecs = ecs_of_node[node.index]
        for transition, target in node.edges.items():
            target_node = schedule.node(target)
            successors.setdefault((ecs, transition), []).append(
                (target_node.marking, ecs_of_node[target])
            )

    await_ecss = {ecs_of_node[node.index] for node in schedule.await_nodes()}

    # deterministic successor ECS per (ECS, transition)
    deterministic_next: Dict[Tuple[ECS, str], Optional[ECS]] = {}
    for key, targets in successors.items():
        target_ecss = {target_ecs for _marking, target_ecs in targets}
        deterministic_next[key] = next(iter(target_ecss)) if len(target_ecss) == 1 else None

    # choose inlined children: an ECS can be inlined under (parent, transition)
    # when that is its only deterministic predecessor edge, it is not the
    # source ECS, and inlining does not create a cycle.
    predecessor_edges: Dict[ECS, List[Tuple[ECS, str]]] = {ecs: [] for ecs in node_by_ecs}
    for (ecs, transition), target_ecs in deterministic_next.items():
        if target_ecs is not None:
            predecessor_edges[target_ecs].append((ecs, transition))

    parent_of: Dict[ECS, Tuple[ECS, str]] = {}
    for ecs, edges in predecessor_edges.items():
        if ecs == source_ecs or ecs in await_ecss:
            continue
        if len(edges) != 1:
            continue
        parent_ecs, transition = edges[0]
        if parent_ecs == ecs:
            continue
        parent_of[ecs] = (parent_ecs, transition)

    # break cycles in the parent assignment (each node has at most one parent,
    # so cycles are simple loops)
    def creates_cycle(child: ECS) -> bool:
        seen = {child}
        current = parent_of.get(child)
        while current is not None:
            parent = current[0]
            if parent in seen:
                return True
            seen.add(parent)
            current = parent_of.get(parent)
        return False

    for ecs in list(parent_of):
        if ecs in parent_of and creates_cycle(ecs):
            del parent_of[ecs]

    # attach children / jumps to the code nodes
    for ecs, code_node in node_by_ecs.items():
        for transition in ecs:
            key = (ecs, transition)
            if key not in successors:
                continue
            child_assignment = None
            for child_ecs, (parent_ecs, via) in parent_of.items():
                if parent_ecs == ecs and via == transition:
                    child_assignment = child_ecs
                    break
            if child_assignment is not None:
                code_node.children[transition] = node_by_ecs[child_assignment]
                continue
            targets = successors[key]
            unique_target = deterministic_next[key]
            if unique_target is not None:
                code_node.jumps[transition] = JumpSpec(
                    deterministic=True,
                    target_ecs=unique_target,
                    is_return=unique_target in await_ecss,
                )
            else:
                cases = [
                    JumpCase(
                        marking=marking,
                        target_ecs=target_ecs,
                        is_return=target_ecs in await_ecss,
                    )
                    for marking, target_ecs in targets
                ]
                code_node.jumps[transition] = JumpSpec(deterministic=False, cases=cases)

    # segments: one per ECS without a parent assignment
    segments: List[CodeSegment] = []
    inlined = set(parent_of)
    ordered_roots = [source_ecs] + sorted(
        (ecs for ecs in node_by_ecs if ecs not in inlined and ecs != source_ecs),
        key=lambda e: ecs_label(e),
    )
    for root_ecs in ordered_roots:
        segments.append(CodeSegment(root=node_by_ecs[root_ecs]))

    return SegmentSet(
        schedule=schedule,
        source_ecs=source_ecs,
        segments=segments,
        node_by_ecs=node_by_ecs,
    )
