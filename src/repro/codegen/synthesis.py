"""C code synthesis for a scheduled task (Section 6.4).

The synthesized source has three parts:

* **declarations** -- state variables (one per place retained as state),
  the variables of the collapsed processes, and intra-task channel buffers;
* **initialisation** -- initial marking values for the state variables and
  buffer pointers (Section 6.4.2);
* **run** -- the ISR: one labelled block per code segment, each with an
  execution section (the FlowC code of the transitions, with data-dependent
  choices turned into ``if``/``else``), an update section (state variable
  increments) and a jump section (``goto`` / ``return`` / ``switch``)
  (Section 6.4.3, Figure 16).

The output is compilable-looking C; it is not executed by the test-suite (the
interpreted :class:`~repro.codegen.task.ExecutableTask` is used for that) but
it is measured by the code-size model and compared structurally in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.codegen.segments import (
    CodeSegment,
    CodeSegmentNode,
    JumpSpec,
    SegmentSet,
    ecs_label,
    extract_code_segments,
)
from repro.flowc.ast_nodes import (
    Assignment,
    BinaryOp,
    Block,
    Break,
    Call,
    Conditional,
    Continue,
    Declaration,
    Expression,
    ExprStatement,
    FloatLiteral,
    For,
    Identifier,
    If,
    Index,
    IntLiteral,
    PostfixOp,
    ReadData,
    Return,
    SelectExpr,
    Statement,
    StringLiteral,
    Switch,
    UnaryOp,
    While,
    WriteData,
    walk_expressions,
    walk_statements,
)
from repro.flowc.compiler import SelectCondition
from repro.flowc.linker import LinkedSystem
from repro.petrinet.analysis import StructuralAnalysis
from repro.runtime.cost_model import CodeSizeCosts, CodeSizeModel, CompilerProfile, PROFILES
from repro.scheduling.schedule import Schedule

ECS = FrozenSet[str]


# ---------------------------------------------------------------------------
# Expression / statement rendering
# ---------------------------------------------------------------------------


def render_expression(expr: Expression) -> str:
    """Render an expression as C source text."""
    if isinstance(expr, IntLiteral):
        return str(expr.value)
    if isinstance(expr, FloatLiteral):
        return repr(expr.value)
    if isinstance(expr, StringLiteral):
        return f'"{expr.value}"'
    if isinstance(expr, Identifier):
        return expr.name
    if isinstance(expr, UnaryOp):
        return f"{expr.op}{render_expression(expr.operand)}"
    if isinstance(expr, PostfixOp):
        return f"{render_expression(expr.operand)}{expr.op}"
    if isinstance(expr, BinaryOp):
        return f"({render_expression(expr.left)} {expr.op} {render_expression(expr.right)})"
    if isinstance(expr, Assignment):
        return f"{render_expression(expr.target)} {expr.op} {render_expression(expr.value)}"
    if isinstance(expr, Conditional):
        return (
            f"({render_expression(expr.condition)} ? {render_expression(expr.then)}"
            f" : {render_expression(expr.other)})"
        )
    if isinstance(expr, Call):
        args = ", ".join(render_expression(a) for a in expr.args)
        return f"{expr.name}({args})"
    if isinstance(expr, Index):
        return f"{render_expression(expr.base)}[{render_expression(expr.index)}]"
    if isinstance(expr, SelectExpr):
        inner = ", ".join(f"{port}, {render_expression(count)}" for port, count in expr.entries)
        return f"SELECT({inner})"
    raise TypeError(f"cannot render expression {expr!r}")


def render_statement(statement: Statement, indent: int = 0, *, comm_macros: bool = True) -> List[str]:
    """Render a statement as C source lines."""
    pad = "    " * indent
    if isinstance(statement, Declaration):
        return [pad + str(statement)]
    if isinstance(statement, ExprStatement):
        return [pad + render_expression(statement.expr) + ";"]
    if isinstance(statement, Block):
        lines = [pad + "{"]
        for inner in statement.statements:
            lines.extend(render_statement(inner, indent + 1, comm_macros=comm_macros))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, If):
        lines = [pad + f"if ({render_expression(statement.condition)}) {{"]
        for inner in statement.then_body:
            lines.extend(render_statement(inner, indent + 1, comm_macros=comm_macros))
        if statement.else_body:
            lines.append(pad + "} else {")
            for inner in statement.else_body:
                lines.extend(render_statement(inner, indent + 1, comm_macros=comm_macros))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, While):
        lines = [pad + f"while ({render_expression(statement.condition)}) {{"]
        for inner in statement.body:
            lines.extend(render_statement(inner, indent + 1, comm_macros=comm_macros))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, For):
        init = render_expression(statement.init) if statement.init is not None else ""
        cond = render_expression(statement.condition) if statement.condition is not None else ""
        update = render_expression(statement.update) if statement.update is not None else ""
        lines = [pad + f"for ({init}; {cond}; {update}) {{"]
        for inner in statement.body:
            lines.extend(render_statement(inner, indent + 1, comm_macros=comm_macros))
        lines.append(pad + "}")
        return lines
    if isinstance(statement, Switch):
        lines = [pad + f"switch ({render_expression(statement.subject)}) {{"]
        for case in statement.cases:
            if case.value is None:
                lines.append(pad + "default:")
            else:
                lines.append(pad + f"case {render_expression(case.value)}:")
            for inner in case.body:
                lines.extend(render_statement(inner, indent + 1, comm_macros=comm_macros))
            lines.append(pad + "    break;")
        lines.append(pad + "}")
        return lines
    if isinstance(statement, Break):
        return [pad + "break;"]
    if isinstance(statement, Continue):
        return [pad + "continue;"]
    if isinstance(statement, Return):
        if statement.value is None:
            return [pad + "return;"]
        return [pad + f"return {render_expression(statement.value)};"]
    if isinstance(statement, ReadData):
        target = render_expression(statement.target)
        nitems = render_expression(statement.nitems)
        return [pad + f"READ_DATA({statement.port}, {target}, {nitems});"]
    if isinstance(statement, WriteData):
        value = render_expression(statement.value)
        nitems = render_expression(statement.nitems)
        return [pad + f"WRITE_DATA({statement.port}, {value}, {nitems});"]
    raise TypeError(f"cannot render statement {statement!r}")


# ---------------------------------------------------------------------------
# Synthesis
# ---------------------------------------------------------------------------


@dataclass
class SynthesisOptions:
    """Options of the code generator."""

    task_name: str = "task"
    share_code_segments: bool = True  # ablation knob: emit per-thread copies when False
    inline_communication: bool = True
    # Quasi-static fusion (off by default so golden outputs are untouched):
    # a segment reached only by deterministic gotos is duplicated inline at
    # every one of those goto sites, fusing maximal await-free runs into
    # straight-line code (code size traded for control transfers).  Await
    # nodes always stay dynamic dispatch points (their continuations are
    # returns, never gotos), so only the control transfers *within* one
    # reaction are flattened.
    fuse_straightline: bool = False


@dataclass
class SynthesizedTask:
    """The C source of one synthesized task plus size accounting inputs."""

    name: str
    source_transition: str
    segments: SegmentSet
    state_places: List[str]
    declarations_section: str
    initialisation_section: str
    run_section: str
    intra_task_channels: List[str] = field(default_factory=list)
    external_input_ports: List[str] = field(default_factory=list)
    external_output_ports: List[str] = field(default_factory=list)
    # labels of segments duplicated inline at their goto sites (empty unless
    # the fuse_straightline option was on)
    fused_segments: List[str] = field(default_factory=list)

    @property
    def full_source(self) -> str:
        return "\n".join(
            [
                self.declarations_section,
                "",
                self.initialisation_section,
                "",
                self.run_section,
                "",
            ]
        )

    def count_construct(self, kind: str) -> int:
        """Rough construct counts on the generated text (used by tests)."""
        if kind == "labels":
            return sum(1 for line in self.run_section.splitlines() if line.rstrip().endswith(":") and not line.strip().startswith("case"))
        if kind == "gotos":
            return self.run_section.count("goto ")
        if kind == "returns":
            return self.run_section.count("return;")
        if kind == "switches":
            return self.run_section.count("switch (")
        raise KeyError(kind)


def _state_variable_name(place: str) -> str:
    return "st_" + place.replace(".", "_")


class _TaskSynthesizer:
    def __init__(
        self,
        system: LinkedSystem,
        schedule: Schedule,
        options: SynthesisOptions,
        analysis: Optional[StructuralAnalysis] = None,
    ):
        self.system = system
        self.schedule = schedule
        self.options = options
        self.net = schedule.net
        self.analysis = analysis or StructuralAnalysis.of(self.net)
        self.segments = extract_code_segments(schedule, self.analysis)
        self.state_places = self.segments.state_places()
        self.involved = schedule.involved_transitions()
        self._classify_channels()
        self.fused_segments = self._fusable_segments() if options.fuse_straightline else set()

    # -- quasi-static fusion --------------------------------------------------
    def _fusable_segments(self) -> Set[ECS]:
        """Segment roots emitted inline at *every* goto site targeting them.

        A root qualifies when only deterministic gotos reach it (a jump
        switch case needs the label to exist), it is not the entry segment,
        and it is not on a goto cycle -- a self-recursive run must keep its
        back-edge as a real ``goto``.  Multiply-referenced segments are
        *duplicated* into each site: quasi-static fusion deliberately trades
        code size for straight-line reactions, the inverse trade of the
        Section 6.2 code-segment sharing (which stays the default emission).
        """
        roots = {segment.root.ecs for segment in self.segments.segments}
        goto_targets: Set[ECS] = set()
        switch_targets: Set[ECS] = set()
        for node in self.segments.node_by_ecs.values():
            for jump in node.jumps.values():
                if jump.deterministic:
                    if jump.target_ecs is not None and not jump.is_return:
                        goto_targets.add(jump.target_ecs)
                else:
                    for case in jump.cases:
                        if not case.is_return:
                            switch_targets.add(case.target_ecs)
        candidates = {
            ecs
            for ecs in goto_targets
            if ecs in roots
            and ecs != self.segments.source_ecs
            and ecs not in switch_targets
        }

        # inlining recurses through fused goto targets, so any candidate that
        # can reach itself along candidate gotos must keep its label; removing
        # every cycle participant at once leaves an acyclic fusion relation
        def goto_successors(ecs: ECS) -> Set[ECS]:
            out: Set[ECS] = set()
            for node in self.segments.node_by_ecs[ecs].subtree():
                for jump in node.jumps.values():
                    if (
                        jump.deterministic
                        and not jump.is_return
                        and jump.target_ecs in candidates
                    ):
                        out.add(jump.target_ecs)
            return out

        def reaches_itself(start: ECS) -> bool:
            stack = list(goto_successors(start))
            seen: Set[ECS] = set()
            while stack:
                current = stack.pop()
                if current == start:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(goto_successors(current))
            return False

        return {ecs for ecs in candidates if not reaches_itself(ecs)}

    # -- channel classification (Section 6.3) --------------------------------
    def _classify_channels(self) -> None:
        involved_processes = {
            self.net.transitions[t].process
            for t in self.involved
            if self.net.transitions[t].process is not None
        }
        self.intra_task_channels: List[str] = []
        self.external_channels: List[str] = []
        for channel in self.system.network.channels:
            if channel.source.process in involved_processes and channel.target.process in involved_processes:
                self.intra_task_channels.append(channel.name)
            else:
                self.external_channels.append(channel.name)
        self.external_inputs = [ref.port for ref in self.system.network.environment_inputs]
        self.external_outputs = [ref.port for ref in self.system.network.environment_outputs]

    # -- declarations ------------------------------------------------------------
    def _declarations(self) -> str:
        lines: List[str] = [f'#include "{self.system.network.name}.data.h"', ""]
        lines.append("/* state variables (places of the Petri net, Section 6.4.1) */")
        for place in self.state_places:
            lines.append(f"int {_state_variable_name(place)};")
        if not self.state_places:
            lines.append("/* no state variables are needed for this schedule */")
        lines.append("")
        lines.append("/* variables of the collapsed processes (made unique by linking) */")
        for process, statements in sorted(self.system.declarations.items()):
            for statement in statements:
                if not isinstance(statement, Declaration):
                    continue
                for declarator in statement.declarators:
                    lines.append(f"{statement.type_name} {process}_{declarator};")
        lines.append("")
        if self.intra_task_channels:
            lines.append("/* intra-task channels become circular buffers (Section 6.3) */")
            for channel in self.intra_task_channels:
                bound = self._channel_bound(channel)
                lines.append(f"int buf_{channel}[{max(bound, 1)}];")
                lines.append(f"int buf_{channel}_head, buf_{channel}_count;")
        return "\n".join(lines)

    def _channel_bound(self, channel: str) -> int:
        place = self.system.channel_places.get(channel)
        if place is None:
            return 1
        return max(self.schedule.place_bounds().get(place, 1), 1)

    # -- initialisation ------------------------------------------------------------
    def _initialisation(self) -> str:
        lines = [f"void {self.options.task_name}_init(void)", "{"]
        initial = self.net.initial_marking
        for place in self.state_places:
            lines.append(f"    {_state_variable_name(place)} = {initial[place]};")
        for channel in self.intra_task_channels:
            lines.append(f"    buf_{channel}_head = 0;")
            lines.append(f"    buf_{channel}_count = 0;")
        # hoisted per-process initialisation statements (Section 6.4.2)
        for process, statements in sorted(self.system.declarations.items()):
            for statement in statements:
                if isinstance(statement, Declaration):
                    continue
                for line in render_statement(statement, 1):
                    lines.append(f"    /* {process} */ " + line.strip())
        lines.append("}")
        return "\n".join(lines)

    # -- run section ------------------------------------------------------------
    def _run(self) -> str:
        lines = [f"void {self.options.task_name}_ISR(void)", "{"]
        emitted: Set[str] = set()
        ordered = [self.segments.entry_segment] + [
            segment
            for segment in self.segments.segments
            if segment is not self.segments.entry_segment
        ]
        for segment in ordered:
            if segment.label in emitted:
                continue
            if segment.root.ecs in self.fused_segments:
                continue  # duplicated inline at its goto sites
            emitted.add(segment.label)
            lines.extend(self._emit_segment(segment))
        lines.append("}")
        return "\n".join(lines)

    def _emit_segment(self, segment: CodeSegment) -> List[str]:
        lines = [f"{segment.label}:"]
        lines.extend(self._emit_node(segment.root, indent=1))
        return lines

    def _emit_node(self, node: CodeSegmentNode, indent: int) -> List[str]:
        pad = "    " * indent
        lines: List[str] = []
        transitions = sorted(node.ecs)
        if len(transitions) == 1:
            transition = transitions[0]
            lines.extend(self._emit_transition_code(transition, indent))
            lines.extend(self._emit_continuation(node, transition, indent))
            return lines
        # data-dependent choice: an if/else (or switch) over the condition of
        # the shared choice place
        condition = self._choice_condition(node.ecs)
        guards = {t: self.net.transitions[t].guard for t in transitions}
        if set(guards.values()) <= {True, False, None}:
            true_t = next((t for t, g in guards.items() if g is True), transitions[0])
            false_t = next((t for t, g in guards.items() if g is False), transitions[-1])
            lines.append(pad + f"if ({condition}) {{")
            lines.extend(self._emit_transition_code(true_t, indent + 1))
            lines.extend(self._emit_continuation(node, true_t, indent + 1))
            lines.append(pad + "} else {")
            lines.extend(self._emit_transition_code(false_t, indent + 1))
            lines.extend(self._emit_continuation(node, false_t, indent + 1))
            lines.append(pad + "}")
            return lines
        lines.append(pad + f"switch ({condition}) {{")
        for transition in transitions:
            guard = guards[transition]
            label = "default" if guard == "default" else f"case {guard}"
            lines.append(pad + f"{label}:")
            lines.extend(self._emit_transition_code(transition, indent + 1))
            lines.extend(self._emit_continuation(node, transition, indent + 1))
            lines.append(pad + "    break;")
        lines.append(pad + "}")
        return lines

    def _choice_condition(self, ecs: ECS) -> str:
        transitions = sorted(ecs)
        for place in self.net.pre[transitions[0]]:
            obj = self.net.places[place]
            if obj.condition is None:
                continue
            if all(place in self.net.pre[t] for t in transitions):
                if isinstance(obj.condition, SelectCondition):
                    return render_expression(obj.condition.select)
                return render_expression(obj.condition)
        return "1 /* unresolved choice condition */"

    def _emit_transition_code(self, transition: str, indent: int) -> List[str]:
        pad = "    " * indent
        obj = self.net.transitions[transition]
        lines: List[str] = [pad + f"/* transition {transition} */"]
        if obj.is_source:
            lines.append(pad + "/* triggering input latched by the framework */")
        elif obj.is_sink:
            lines.append(pad + "/* primary output accepted by the environment */")
        elif obj.code:
            prefix = (obj.process + "_") if obj.process else ""
            for statement in obj.code:
                for line in render_statement(statement, indent):
                    lines.append(self._rewrite_identifiers(line, prefix))
        # update section: state variable deltas caused by this transition
        for place in self.state_places:
            delta = self.net.post[transition].get(place, 0) - self.net.pre[transition].get(place, 0)
            if delta > 0:
                lines.append(pad + f"{_state_variable_name(place)} += {delta};")
            elif delta < 0:
                lines.append(pad + f"{_state_variable_name(place)} -= {-delta};")
        return lines

    def _rewrite_identifiers(self, line: str, prefix: str) -> str:
        # Process-local variables were made unique during linking by
        # prefixing the process name; the rendered code keeps the original
        # names, so this is a purely cosmetic note in a comment.
        return line

    def _emit_continuation(self, node: CodeSegmentNode, transition: str, indent: int) -> List[str]:
        pad = "    " * indent
        if transition in node.children:
            return self._emit_node(node.children[transition], indent)
        jump = node.jumps.get(transition)
        if jump is None:
            return [pad + "return;"]
        if jump.deterministic:
            if jump.is_return:
                return [pad + "return;"]
            assert jump.target_ecs is not None
            if jump.target_ecs in self.fused_segments:
                # quasi-static fusion: this is the target's only entry, so
                # its body continues here as straight-line code
                lines = [pad + f"/* fused segment {ecs_label(jump.target_ecs)} */"]
                lines.extend(
                    self._emit_node(self.segments.node_by_ecs[jump.target_ecs], indent)
                )
                return lines
            return [pad + f"goto {ecs_label(jump.target_ecs)};"]
        lines: List[str] = []
        discriminating = self._discriminating_places(jump)
        if not discriminating:
            # all cases behave identically
            first = jump.cases[0]
            if first.is_return:
                return [pad + "return;"]
            return [pad + f"goto {ecs_label(first.target_ecs)};"]
        place = discriminating[0]
        lines.append(pad + f"switch ({_state_variable_name(place)}) {{")
        seen_values: Set[int] = set()
        for case in jump.cases:
            value = case.marking[place]
            if value in seen_values:
                continue
            seen_values.add(value)
            lines.append(pad + f"case {value}:")
            if case.is_return:
                lines.append(pad + "    return;")
            else:
                lines.append(pad + f"    goto {ecs_label(case.target_ecs)};")
        lines.append(pad + "}")
        lines.append(pad + "return;")
        return lines

    def _discriminating_places(self, jump: JumpSpec) -> List[str]:
        result = []
        for place in self.state_places:
            values = {case.marking[place] for case in jump.cases}
            if len(values) > 1:
                result.append(place)
        return result

    # -- entry point ------------------------------------------------------------
    def synthesize(self) -> SynthesizedTask:
        return SynthesizedTask(
            name=self.options.task_name,
            source_transition=self.schedule.source_transition,
            segments=self.segments,
            state_places=self.state_places,
            declarations_section=self._declarations(),
            initialisation_section=self._initialisation(),
            run_section=self._run(),
            intra_task_channels=list(self.intra_task_channels),
            external_input_ports=list(self.external_inputs),
            external_output_ports=list(self.external_outputs),
            fused_segments=sorted(ecs_label(ecs) for ecs in self.fused_segments),
        )


def synthesize_task(
    system: LinkedSystem,
    schedule: Schedule,
    *,
    options: Optional[SynthesisOptions] = None,
    analysis: Optional[StructuralAnalysis] = None,
) -> SynthesizedTask:
    """Generate the C source of the task implementing ``schedule``."""
    options = options or SynthesisOptions(
        task_name=schedule.source_transition.replace(".", "_")
    )
    return _TaskSynthesizer(system, schedule, options, analysis).synthesize()


# ---------------------------------------------------------------------------
# Code size estimation
# ---------------------------------------------------------------------------


def _expression_operator_count(expr: Expression) -> int:
    count = 0
    for sub in walk_expressions(expr):
        if isinstance(sub, (BinaryOp, UnaryOp, PostfixOp, Assignment, Conditional)):
            count += 1
        elif isinstance(sub, Index):
            count += 1
    return count


def statement_code_size(statement: Statement, costs: CodeSizeCosts, *, comm_site_bytes: int) -> int:
    """Approximate object size in bytes of one statement."""
    total = 0
    for sub in walk_statements([statement]):
        if isinstance(sub, (ReadData, WriteData)):
            total += comm_site_bytes
        elif isinstance(sub, Declaration):
            total += costs.per_declaration * len(sub.declarators)
        elif isinstance(sub, ExprStatement):
            total += costs.per_statement + costs.per_operator * _expression_operator_count(sub.expr)
            if isinstance(sub.expr, Call):
                total += costs.per_call
            if isinstance(sub.expr, SelectExpr):
                total += costs.per_branch
        elif isinstance(sub, If):
            total += costs.per_branch + costs.per_operator * _expression_operator_count(sub.condition)
        elif isinstance(sub, (While, For)):
            total += costs.per_loop
        elif isinstance(sub, Switch):
            total += costs.per_branch + costs.per_switch_case * len(sub.cases)
        elif isinstance(sub, (Break, Continue, Return)):
            total += costs.per_statement
    return total


def process_code_size(
    system: LinkedSystem,
    process: str,
    *,
    costs: Optional[CodeSizeCosts] = None,
    inline_communication: bool = True,
    profile: CompilerProfile | str = "pfc",
) -> int:
    """Code size of one process compiled as a separate task (the baseline)."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    costs = costs or CodeSizeCosts()
    comm_site = costs.inlined_comm_site if inline_communication else costs.called_comm_site
    total = costs.process_prologue
    body = system.network.processes[process].body
    for statement in body:
        total += statement_code_size(statement, costs, comm_site_bytes=comm_site)
    if not inline_communication:
        total += 0  # the shared communication function body is counted once globally
    return CodeSizeModel(costs).scaled(total, profile)


def baseline_code_size(
    system: LinkedSystem,
    *,
    costs: Optional[CodeSizeCosts] = None,
    inline_communication: bool = True,
    profile: CompilerProfile | str = "pfc",
) -> Dict[str, int]:
    """Per-process and total code size of the multi-task implementation."""
    costs = costs or CodeSizeCosts()
    sizes = {
        process: process_code_size(
            system,
            process,
            costs=costs,
            inline_communication=inline_communication,
            profile=profile,
        )
        for process in system.network.processes
    }
    total = sum(sizes.values())
    if not inline_communication:
        if isinstance(profile, str):
            profile = PROFILES[profile]
        total += CodeSizeModel(costs).scaled(costs.comm_function_body, profile)
    sizes["total"] = total
    return sizes


def synthesized_code_size(
    task: SynthesizedTask,
    system: LinkedSystem,
    *,
    costs: Optional[CodeSizeCosts] = None,
    profile: CompilerProfile | str = "pfc",
    share_code_segments: bool = True,
) -> int:
    """Code size of the synthesized single task.

    Each distinct ECS contributes its transition code once (that is the point
    of code segments); intra-task communication uses buffer accesses instead
    of communication primitives; labels, gotos and jump switches add a small
    structural overhead.  With ``share_code_segments=False`` the code of an
    ECS is counted once per schedule node carrying it (the ablation of the
    sharing optimisation).
    """
    if isinstance(profile, str):
        profile = PROFILES[profile]
    costs = costs or CodeSizeCosts()
    net = task.segments.schedule.net
    intra_ports: Set[str] = set()
    for channel_name in task.intra_task_channels:
        for channel in system.network.channels:
            if channel.name == channel_name:
                intra_ports.add(channel.source.port)
                intra_ports.add(channel.target.port)
    total = costs.task_prologue

    multiplicity: Dict[FrozenSet[str], int] = {}
    for node in task.segments.schedule.nodes:
        ecs = frozenset(node.edges)
        multiplicity[ecs] = multiplicity.get(ecs, 0) + 1

    def transition_code_size(transition: str) -> int:
        obj = net.transitions[transition]
        if not obj.code:
            return costs.per_statement
        size = 0
        for statement in obj.code:
            comm_ports = set()
            for sub in walk_statements([statement]):
                if isinstance(sub, ReadData):
                    comm_ports.add(sub.port)
                elif isinstance(sub, WriteData):
                    comm_ports.add(sub.port)
            if comm_ports and comm_ports <= intra_ports:
                site_bytes = costs.intratask_comm_site
            elif comm_ports:
                site_bytes = costs.environment_comm_site
            else:
                site_bytes = costs.inlined_comm_site
            size += statement_code_size(statement, costs, comm_site_bytes=site_bytes)
        return size

    # Equivalent code is emitted once: transitions with identical code bodies
    # (the unrolled iterations of a constant loop, equivalent threads...)
    # share their execution section, which is the purpose of the code-segment
    # sharing analysis of Section 6.2.  The jump / label / state-update
    # overhead is still paid per structural position.
    emitted_bodies: Dict[Tuple, int] = {}

    def shared_body_size(transition: str) -> int:
        obj = net.transitions[transition]
        key = (
            obj.process,
            tuple(str(s) for s in (obj.code or ())),
            obj.guard,
        )
        if key in emitted_bodies:
            return 0
        size = transition_code_size(transition)
        emitted_bodies[key] = size
        return size

    # one label per code segment (goto targets of the jump sections)
    total += len(task.segments.segments) * costs.per_label

    for ecs, code_node in task.segments.node_by_ecs.items():
        copies = 1 if share_code_segments else multiplicity.get(ecs, 1)
        structural = 0
        body = 0
        for transition in ecs:
            if share_code_segments:
                body += shared_body_size(transition)
            else:
                body += transition_code_size(transition)
        if len(ecs) > 1:
            structural += costs.per_branch
        for jump in code_node.jumps.values():
            if jump.deterministic:
                structural += costs.per_goto
            else:
                distinct = {case.marking.pretty() for case in jump.cases}
                structural += costs.per_switch_case * max(len(distinct), 1) + costs.per_goto
                structural += costs.per_state_update
        total += body * copies + (structural if share_code_segments else structural * copies)
    total += len(task.intra_task_channels) * costs.per_declaration * 3
    total += len(task.state_places) * costs.per_declaration
    return CodeSizeModel(costs).scaled(total, profile)
