"""Network (netlist) description: processes, channels, environment ports.

A system function is a network of FlowC processes.  Channels are
point-to-point and uni-directional: each connects an output port of one
process to an input port of another, optionally with a user-defined bound
(Section 3).  Ports left unconnected communicate with the environment; input
environment ports are declared *controllable* or *uncontrollable*
(Section 3.2), output environment ports are always accepted by the
environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.flowc.ast_nodes import Process
from repro.flowc.parser import parse_program


class NetworkError(Exception):
    """Raised for inconsistent netlists (unknown ports, double connections...)."""


@dataclass(frozen=True)
class PortRef:
    """Reference to a port of a process: ``process.port``."""

    process: str
    port: str

    def __str__(self) -> str:
        return f"{self.process}.{self.port}"


@dataclass(frozen=True)
class Channel:
    """A point-to-point FIFO channel between two ports."""

    name: str
    source: PortRef
    target: PortRef
    bound: Optional[int] = None

    def __str__(self) -> str:
        suffix = f" [bound={self.bound}]" if self.bound is not None else ""
        return f"{self.name}: {self.source} -> {self.target}{suffix}"


@dataclass(frozen=True)
class EnvironmentPort:
    """A primary (environment) port of the system.

    ``rate`` is the number of tokens produced/consumed by one environment
    interaction (the weight of the source/sink arc).  ``controllable`` is
    only meaningful for inputs.
    """

    ref: PortRef
    direction: str  # "input" or "output"
    controllable: bool = False
    rate: int = 1


@dataclass
class Network:
    """A network of FlowC processes with channels and environment ports."""

    name: str = "system"
    processes: Dict[str, Process] = field(default_factory=dict)
    channels: List[Channel] = field(default_factory=list)
    environment_inputs: Dict[PortRef, EnvironmentPort] = field(default_factory=dict)
    environment_outputs: Dict[PortRef, EnvironmentPort] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_process(self, process: Process) -> None:
        if process.name in self.processes:
            raise NetworkError(f"duplicate process {process.name!r}")
        self.processes[process.name] = process

    def add_processes_from_source(self, source: str) -> List[Process]:
        processes = parse_program(source)
        for process in processes:
            self.add_process(process)
        return processes

    def _resolve(self, process: str, port: str, direction: str) -> PortRef:
        if process not in self.processes:
            raise NetworkError(f"unknown process {process!r}")
        declaration = None
        for candidate in self.processes[process].ports:
            if candidate.name == port:
                declaration = candidate
                break
        if declaration is None:
            raise NetworkError(f"process {process!r} has no port {port!r}")
        if direction == "output" and not declaration.is_output:
            raise NetworkError(f"{process}.{port} is not an output port")
        if direction == "input" and not declaration.is_input:
            raise NetworkError(f"{process}.{port} is not an input port")
        return PortRef(process, port)

    def connect(
        self,
        source_process: str,
        source_port: str,
        target_process: str,
        target_port: str,
        *,
        name: Optional[str] = None,
        bound: Optional[int] = None,
    ) -> Channel:
        """Add a channel from an output port to an input port."""
        source = self._resolve(source_process, source_port, "output")
        target = self._resolve(target_process, target_port, "input")
        for channel in self.channels:
            if channel.source == source:
                raise NetworkError(f"output port {source} is already connected")
            if channel.target == target:
                raise NetworkError(f"input port {target} is already connected")
        channel = Channel(
            name=name or f"{source_process}_{source_port}__{target_process}_{target_port}",
            source=source,
            target=target,
            bound=bound,
        )
        self.channels.append(channel)
        return channel

    def declare_input(
        self,
        process: str,
        port: str,
        *,
        controllable: bool = False,
        rate: int = 1,
    ) -> EnvironmentPort:
        """Declare an unconnected input port as a primary input."""
        ref = self._resolve(process, port, "input")
        env = EnvironmentPort(ref=ref, direction="input", controllable=controllable, rate=rate)
        self.environment_inputs[ref] = env
        return env

    def declare_output(self, process: str, port: str, *, rate: int = 1) -> EnvironmentPort:
        """Declare an unconnected output port as a primary output."""
        ref = self._resolve(process, port, "output")
        env = EnvironmentPort(ref=ref, direction="output", controllable=False, rate=rate)
        self.environment_outputs[ref] = env
        return env

    # ------------------------------------------------------------------
    # queries / checks
    # ------------------------------------------------------------------
    def connected_ports(self) -> Dict[PortRef, Channel]:
        mapping: Dict[PortRef, Channel] = {}
        for channel in self.channels:
            mapping[channel.source] = channel
            mapping[channel.target] = channel
        return mapping

    def unconnected_ports(self) -> List[Tuple[PortRef, str]]:
        """Ports of all processes that have no channel, with their direction."""
        connected = set(self.connected_ports())
        result: List[Tuple[PortRef, str]] = []
        for process in self.processes.values():
            for port in process.ports:
                ref = PortRef(process.name, port.name)
                if ref not in connected:
                    result.append((ref, "input" if port.is_input else "output"))
        return result

    def channel_for(self, process: str, port: str) -> Optional[Channel]:
        ref = PortRef(process, port)
        return self.connected_ports().get(ref)

    def validate(self) -> None:
        """Check that every unconnected port has an environment declaration
        and that every declared environment port is indeed unconnected."""
        connected = set(self.connected_ports())
        for ref in list(self.environment_inputs) + list(self.environment_outputs):
            if ref in connected:
                raise NetworkError(f"environment port {ref} is also connected by a channel")
        for ref, direction in self.unconnected_ports():
            if direction == "input" and ref not in self.environment_inputs:
                raise NetworkError(
                    f"unconnected input port {ref} has no environment declaration "
                    "(declare_input with controllable=True/False)"
                )
            if direction == "output" and ref not in self.environment_outputs:
                raise NetworkError(
                    f"unconnected output port {ref} has no environment declaration (declare_output)"
                )

    def uncontrollable_inputs(self) -> List[EnvironmentPort]:
        return [env for env in self.environment_inputs.values() if not env.controllable]

    def controllable_inputs(self) -> List[EnvironmentPort]:
        return [env for env in self.environment_inputs.values() if env.controllable]

    def describe(self) -> str:
        """Human-readable summary of the network."""
        lines = [f"network {self.name}"]
        for process in self.processes.values():
            lines.append(f"  process {process.name} ({len(process.ports)} ports)")
        for channel in self.channels:
            lines.append(f"  channel {channel}")
        for env in self.environment_inputs.values():
            kind = "controllable" if env.controllable else "uncontrollable"
            lines.append(f"  input {env.ref} ({kind}, rate={env.rate})")
        for env in self.environment_outputs.values():
            lines.append(f"  output {env.ref} (rate={env.rate})")
        return "\n".join(lines)
