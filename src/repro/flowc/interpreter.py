"""Interpreter for FlowC statements and expressions.

The interpreter executes the code fragments attached to Petri net transitions
and evaluates the condition expressions attached to choice places.  It is used
by both execution substrates:

* the baseline multi-task simulator (one task per process, round-robin), and
* the synthesized single-task executor produced by code generation.

Communication is delegated to a :class:`CommunicationHandler`, so the same
interpreter works against real FIFO channels (baseline), intra-task circular
buffers (synthesized task) and latched environment arrays (Section 8.1).

The interpreter also counts abstract operations so the cost model can convert
an execution into clock cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.flowc.ast_nodes import (
    Assignment,
    BinaryOp,
    Block,
    Break,
    Call,
    Conditional,
    Continue,
    Declaration,
    Expression,
    ExprStatement,
    FloatLiteral,
    For,
    Identifier,
    If,
    Index,
    IntLiteral,
    PostfixOp,
    ReadData,
    Return,
    SelectExpr,
    Statement,
    StringLiteral,
    Switch,
    UnaryOp,
    While,
    WriteData,
)


class InterpreterError(Exception):
    """Raised on run-time errors (unknown variable, bad operand...)."""


class WouldBlock(Exception):
    """Raised by a communication handler when a port operation cannot proceed."""

    def __init__(self, port: str, needed: int, available: int):
        super().__init__(f"port {port!r}: needed {needed}, available {available}")
        self.port = port
        self.needed = needed
        self.available = available


@dataclass
class OperationCounter:
    """Counts of abstract operations executed, consumed by the cost model."""

    arithmetic: int = 0
    comparisons: int = 0
    assignments: int = 0
    memory: int = 0  # array index accesses
    branches: int = 0  # control-flow decisions taken
    calls: int = 0
    reads: int = 0  # port read operations
    writes: int = 0  # port write operations
    items_read: int = 0
    items_written: int = 0
    selects: int = 0

    def merge(self, other: "OperationCounter") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def total(self) -> int:
        return (
            self.arithmetic
            + self.comparisons
            + self.assignments
            + self.memory
            + self.branches
            + self.calls
            + self.reads
            + self.writes
            + self.selects
        )

    def copy(self) -> "OperationCounter":
        clone = OperationCounter()
        clone.merge(self)
        return clone


class Environment:
    """Variable environment of one process (flat scope, like the generated C)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.variables: Dict[str, Any] = {}

    def declare(self, name: str, value: Any = 0) -> None:
        self.variables[name] = value

    def declare_array(self, name: str, size: int, fill: Any = 0) -> None:
        self.variables[name] = [fill] * size

    def get(self, name: str) -> Any:
        if name not in self.variables:
            # C semantics for our purposes: uninitialised variables read as 0.
            self.variables[name] = 0
        return self.variables[name]

    def set(self, name: str, value: Any) -> None:
        self.variables[name] = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            key: list(value) if isinstance(value, list) else value
            for key, value in self.variables.items()
        }


class CommunicationHandler:
    """Interface between the interpreter and the communication substrate."""

    def read(self, port: str, nitems: int) -> List[Any]:
        """Return ``nitems`` data items from ``port`` or raise :class:`WouldBlock`."""
        raise NotImplementedError

    def write(self, port: str, values: List[Any], nitems: int) -> None:
        """Write ``nitems`` data items to ``port`` or raise :class:`WouldBlock`."""
        raise NotImplementedError

    def available(self, port: str) -> int:
        """Number of items currently readable on ``port``."""
        raise NotImplementedError

    def space(self, port: str) -> Optional[int]:
        """Free positions on ``port`` (``None`` when unbounded)."""
        raise NotImplementedError

    def select(self, entries: Sequence[Tuple[str, int]]) -> int:
        """Resolve a SELECT: return the index of a ready entry.

        The default implementation picks the first ready entry (priority =
        textual order), matching the deterministic priority semantics of
        Section 7.1; it raises :class:`WouldBlock` when none is ready.
        """
        for index, (port, needed) in enumerate(entries):
            if self.available(port) >= needed:
                return index
        port, needed = entries[0]
        raise WouldBlock(port, needed, self.available(port))


class NullCommunicationHandler(CommunicationHandler):
    """Handler for code fragments that perform no communication."""

    def read(self, port: str, nitems: int) -> List[Any]:
        raise InterpreterError(f"unexpected READ_DATA on port {port!r}")

    def write(self, port: str, values: List[Any], nitems: int) -> None:
        raise InterpreterError(f"unexpected WRITE_DATA on port {port!r}")

    def available(self, port: str) -> int:
        return 0

    def space(self, port: str) -> Optional[int]:
        return None


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


class _ReturnSignal(Exception):
    def __init__(self, value: Any = None):
        self.value = value


# Built-in pure functions available to FlowC programs.  They model the opaque
# computations of the industrial example (filtering, image generation...).
BUILTIN_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "abs": abs,
    "min": min,
    "max": max,
    "clip255": lambda x: max(0, min(255, int(x))),
}


class Interpreter:
    """Executes FlowC statements against an :class:`Environment`."""

    def __init__(
        self,
        environment: Environment,
        communication: Optional[CommunicationHandler] = None,
        *,
        counter: Optional[OperationCounter] = None,
        max_loop_iterations: int = 1_000_000,
        functions: Optional[Dict[str, Callable[..., Any]]] = None,
        trace: Optional[List[str]] = None,
    ):
        self.env = environment
        self.comm = communication or NullCommunicationHandler()
        self.counter = counter if counter is not None else OperationCounter()
        self.max_loop_iterations = max_loop_iterations
        self.functions = dict(BUILTIN_FUNCTIONS)
        if functions:
            self.functions.update(functions)
        self.trace = trace

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def execute_block(self, statements: Sequence[Statement]) -> None:
        for statement in statements:
            self.execute(statement)

    def execute(self, statement: Statement) -> None:
        if isinstance(statement, Declaration):
            self._execute_declaration(statement)
        elif isinstance(statement, ExprStatement):
            self.evaluate(statement.expr)
        elif isinstance(statement, Block):
            self.execute_block(statement.statements)
        elif isinstance(statement, If):
            self.counter.branches += 1
            if self._truth(self.evaluate(statement.condition)):
                self.execute_block(statement.then_body)
            elif statement.else_body is not None:
                self.execute_block(statement.else_body)
        elif isinstance(statement, While):
            self._execute_while(statement)
        elif isinstance(statement, For):
            self._execute_for(statement)
        elif isinstance(statement, Switch):
            self._execute_switch(statement)
        elif isinstance(statement, Break):
            raise _BreakSignal()
        elif isinstance(statement, Continue):
            raise _ContinueSignal()
        elif isinstance(statement, Return):
            value = self.evaluate(statement.value) if statement.value is not None else None
            raise _ReturnSignal(value)
        elif isinstance(statement, ReadData):
            self._execute_read(statement)
        elif isinstance(statement, WriteData):
            self._execute_write(statement)
        else:
            raise InterpreterError(f"unsupported statement: {statement!r}")

    def run(self, statements: Sequence[Statement]) -> None:
        """Execute a code fragment, swallowing a top-level return."""
        try:
            self.execute_block(statements)
        except _ReturnSignal:
            pass
        except (_BreakSignal, _ContinueSignal):
            raise InterpreterError("break/continue outside of a loop")

    def _execute_declaration(self, statement: Declaration) -> None:
        for declarator in statement.declarators:
            if declarator.array_size is not None:
                size = int(self.evaluate(declarator.array_size))
                self.env.declare_array(declarator.name, size)
            elif declarator.init is not None:
                self.env.declare(declarator.name, self.evaluate(declarator.init))
                self.counter.assignments += 1
            else:
                self.env.declare(declarator.name, 0)

    def _execute_while(self, statement: While) -> None:
        iterations = 0
        while True:
            self.counter.branches += 1
            if not self._truth(self.evaluate(statement.condition)):
                break
            iterations += 1
            if iterations > self.max_loop_iterations:
                raise InterpreterError("while loop exceeded the iteration limit")
            try:
                self.execute_block(statement.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                continue

    def _execute_for(self, statement: For) -> None:
        if statement.init is not None:
            self.evaluate(statement.init)
        iterations = 0
        while True:
            if statement.condition is not None:
                self.counter.branches += 1
                if not self._truth(self.evaluate(statement.condition)):
                    break
            iterations += 1
            if iterations > self.max_loop_iterations:
                raise InterpreterError("for loop exceeded the iteration limit")
            try:
                self.execute_block(statement.body)
            except _BreakSignal:
                break
            except _ContinueSignal:
                pass
            if statement.update is not None:
                self.evaluate(statement.update)

    def _execute_switch(self, statement: Switch) -> None:
        subject = self.evaluate(statement.subject)
        self.counter.branches += 1
        default_case = None
        for case in statement.cases:
            if case.value is None:
                default_case = case
                continue
            if self.evaluate(case.value) == subject:
                self._run_case(case.body)
                return
        if default_case is not None:
            self._run_case(default_case.body)

    def _run_case(self, body: Sequence[Statement]) -> None:
        try:
            self.execute_block(body)
        except _BreakSignal:
            pass

    def _execute_read(self, statement: ReadData) -> None:
        nitems = int(self.evaluate(statement.nitems))
        values = self.comm.read(statement.port, nitems)
        self.counter.reads += 1
        self.counter.items_read += nitems
        self._store_read_values(statement.target, values, nitems)

    def _store_read_values(self, target: Expression, values: List[Any], nitems: int) -> None:
        # `&x` and `x` both denote the destination variable; `buf` receives a
        # block of items; `buf[i]` receives a single item.
        if isinstance(target, UnaryOp) and target.op == "&":
            target = target.operand
        if isinstance(target, Identifier):
            current = self.env.get(target.name)
            if isinstance(current, list) and nitems >= 1:
                for offset in range(min(nitems, len(current))):
                    current[offset] = values[offset] if offset < len(values) else 0
                self.counter.memory += nitems
            else:
                self.env.set(target.name, values[0] if values else 0)
            self.counter.assignments += 1
            return
        if isinstance(target, Index):
            if nitems != 1:
                # write a block starting at the given index
                base, start = self._resolve_index(target)
                for offset in range(nitems):
                    base[start + offset] = values[offset]
                self.counter.memory += nitems
                return
            base, index = self._resolve_index(target)
            base[index] = values[0]
            self.counter.assignments += 1
            self.counter.memory += 1
            return
        raise InterpreterError(f"unsupported READ_DATA target: {target}")

    def _execute_write(self, statement: WriteData) -> None:
        nitems = int(self.evaluate(statement.nitems))
        value = self.evaluate(statement.value)
        if isinstance(value, list):
            values = list(value[:nitems])
            while len(values) < nitems:
                values.append(0)
        elif nitems == 1:
            values = [value]
        else:
            values = [value] * nitems
        self.comm.write(statement.port, values, nitems)
        self.counter.writes += 1
        self.counter.items_written += nitems

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def evaluate(self, expr: Expression) -> Any:
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, FloatLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, Identifier):
            return self.env.get(expr.name)
        if isinstance(expr, Index):
            base, index = self._resolve_index(expr)
            self.counter.memory += 1
            return base[index]
        if isinstance(expr, UnaryOp):
            return self._evaluate_unary(expr)
        if isinstance(expr, PostfixOp):
            return self._evaluate_postfix(expr)
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr)
        if isinstance(expr, Assignment):
            return self._evaluate_assignment(expr)
        if isinstance(expr, Conditional):
            self.counter.branches += 1
            if self._truth(self.evaluate(expr.condition)):
                return self.evaluate(expr.then)
            return self.evaluate(expr.other)
        if isinstance(expr, Call):
            return self._evaluate_call(expr)
        if isinstance(expr, SelectExpr):
            return self._evaluate_select(expr)
        raise InterpreterError(f"unsupported expression: {expr!r}")

    def evaluate_condition(self, expr: Expression) -> bool:
        """Evaluate a choice-place condition to a boolean."""
        self.counter.comparisons += 1
        return self._truth(self.evaluate(expr))

    def _truth(self, value: Any) -> bool:
        if isinstance(value, list):
            return bool(value)
        return bool(value)

    def _resolve_index(self, expr: Index) -> Tuple[List[Any], int]:
        base = self.evaluate(expr.base)
        index = int(self.evaluate(expr.index))
        if not isinstance(base, list):
            raise InterpreterError(f"indexing a non-array value in {expr}")
        if index < 0 or index >= len(base):
            raise InterpreterError(f"index {index} out of bounds for {expr}")
        return base, index

    def _evaluate_unary(self, expr: UnaryOp) -> Any:
        if expr.op == "&":
            # address-of: the interpreter treats it as the variable itself
            return self.evaluate(expr.operand)
        if expr.op in ("++", "--"):
            delta = 1 if expr.op == "++" else -1
            value = self.evaluate(expr.operand) + delta
            self._assign_to(expr.operand, value)
            self.counter.arithmetic += 1
            self.counter.assignments += 1
            return value
        operand = self.evaluate(expr.operand)
        self.counter.arithmetic += 1
        if expr.op == "-":
            return -operand
        if expr.op == "+":
            return operand
        if expr.op == "!":
            return 0 if self._truth(operand) else 1
        if expr.op == "~":
            return ~int(operand)
        if expr.op == "*":
            # pointer dereference degenerates to the value itself
            return operand
        raise InterpreterError(f"unsupported unary operator {expr.op!r}")

    def _evaluate_postfix(self, expr: PostfixOp) -> Any:
        value = self.evaluate(expr.operand)
        delta = 1 if expr.op == "++" else -1
        self._assign_to(expr.operand, value + delta)
        self.counter.arithmetic += 1
        self.counter.assignments += 1
        return value

    def _evaluate_binary(self, expr: BinaryOp) -> Any:
        left = self.evaluate(expr.left)
        # short-circuit logical operators
        if expr.op == "&&":
            self.counter.comparisons += 1
            if not self._truth(left):
                return 0
            return 1 if self._truth(self.evaluate(expr.right)) else 0
        if expr.op == "||":
            self.counter.comparisons += 1
            if self._truth(left):
                return 1
            return 1 if self._truth(self.evaluate(expr.right)) else 0
        right = self.evaluate(expr.right)
        op = expr.op
        if op in ("==", "!=", "<", ">", "<=", ">="):
            self.counter.comparisons += 1
            result = {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                ">": left > right,
                "<=": left <= right,
                ">=": left >= right,
            }[op]
            return 1 if result else 0
        self.counter.arithmetic += 1
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpreterError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right) if (left < 0) != (right < 0) else left // right
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            return left - right * int(left / right) if isinstance(left, int) else left % right
        if op == "&":
            return int(left) & int(right)
        if op == "|":
            return int(left) | int(right)
        if op == "^":
            return int(left) ^ int(right)
        if op == "<<":
            return int(left) << int(right)
        if op == ">>":
            return int(left) >> int(right)
        raise InterpreterError(f"unsupported binary operator {op!r}")

    def _evaluate_assignment(self, expr: Assignment) -> Any:
        value = self.evaluate(expr.value)
        if expr.op != "=":
            current = self.evaluate(expr.target)
            value = self._apply_binary_value(expr.op[0], current, value)
        self._assign_to(expr.target, value)
        self.counter.assignments += 1
        return value

    def _apply_binary_value(self, op: str, left: Any, right: Any) -> Any:
        self.counter.arithmetic += 1
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise InterpreterError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return int(left / right) if (left < 0) != (right < 0) else left // right
            return left / right
        if op == "%":
            if right == 0:
                raise InterpreterError("modulo by zero")
            return left % right
        raise InterpreterError(f"unsupported compound assignment operator {op!r}=")

    def _assign_to(self, target: Expression, value: Any) -> None:
        if isinstance(target, UnaryOp) and target.op in ("&", "*"):
            target = target.operand
        if isinstance(target, Identifier):
            self.env.set(target.name, value)
            return
        if isinstance(target, Index):
            base, index = self._resolve_index(target)
            base[index] = value
            self.counter.memory += 1
            return
        raise InterpreterError(f"invalid assignment target: {target}")

    def _evaluate_call(self, expr: Call) -> Any:
        args = [self.evaluate(arg) for arg in expr.args]
        self.counter.calls += 1
        function = self.functions.get(expr.name)
        if function is None:
            raise InterpreterError(f"unknown function {expr.name!r}")
        return function(*args)

    def _evaluate_select(self, expr: SelectExpr) -> int:
        entries = [(port, int(self.evaluate(count))) for port, count in expr.entries]
        self.counter.selects += 1
        return self.comm.select(entries)
