"""Leader computation (Section 3.1 of the paper).

The granularity at which FlowC statements are mapped to Petri net transitions
is determined by *leaders*:

1. the first statement of the process is a leader;
2. a ``READ_DATA`` statement is a leader;
3. any statement immediately following a ``WRITE_DATA`` statement is a leader;
4. the first statement of a control flow statement that contains a leader
   (equivalently: that contains a port statement) is a leader;
5. any statement that immediately follows such a control flow statement is a
   leader.

Every portion of code consists of a leader and all statements up to the next
leader (or the end of the process); each portion becomes one transition.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.flowc.ast_nodes import (
    ExprStatement,
    ReadData,
    SelectExpr,
    Statement,
    Switch,
    WriteData,
    statement_children,
)


def is_port_statement(statement: Statement) -> bool:
    """True for READ_DATA / WRITE_DATA and SELECT-based switches."""
    if isinstance(statement, (ReadData, WriteData)):
        return True
    if isinstance(statement, Switch) and isinstance(statement.subject, SelectExpr):
        return True
    if isinstance(statement, ExprStatement) and isinstance(statement.expr, SelectExpr):
        return True
    return False


def contains_port_statement(statement: Statement) -> bool:
    """True if the statement is, or transitively contains, a port statement."""
    if is_port_statement(statement):
        return True
    for child_seq in statement_children(statement):
        for child in child_seq:
            if contains_port_statement(child):
                return True
    return False


def compute_leaders(body: Sequence[Statement]) -> Set[int]:
    """Compute the set of leader statements of a process body.

    Returns the set of ``id()`` values of the leader statement objects (AST
    nodes are frozen dataclasses whose value-equality would conflate repeated
    statements, so identity is used).
    """
    leaders: Set[int] = set()

    def mark(statement: Statement) -> None:
        leaders.add(id(statement))

    def visit_sequence(statements: Sequence[Statement], first_is_leader: bool) -> None:
        previous: Statement | None = None
        for index, statement in enumerate(statements):
            if index == 0 and first_is_leader and statements:
                mark(statement)
            if isinstance(statement, ReadData):
                mark(statement)  # rule 2
            if previous is not None:
                if isinstance(previous, WriteData):
                    mark(statement)  # rule 3
                if contains_port_statement(previous) and statement_children(previous):
                    mark(statement)  # rule 5 (previous is a control statement)
            if contains_port_statement(statement) and statement_children(statement):
                # rule 4: first statement of each nested sequence is a leader
                for child_seq in statement_children(statement):
                    visit_sequence(child_seq, first_is_leader=True)
            else:
                for child_seq in statement_children(statement):
                    visit_sequence(child_seq, first_is_leader=False)
            previous = statement

    visit_sequence(list(body), first_is_leader=True)
    return leaders


def leader_statements(body: Sequence[Statement]) -> List[Statement]:
    """The leader statements themselves, in source order."""
    leader_ids = compute_leaders(body)
    result: List[Statement] = []

    def visit(statements: Sequence[Statement]) -> None:
        for statement in statements:
            if id(statement) in leader_ids:
                result.append(statement)
            for child_seq in statement_children(statement):
                visit(child_seq)

    visit(list(body))
    return result


def split_into_portions(statements: Sequence[Statement]) -> List[List[Statement]]:
    """Split a flat statement sequence into leader-delimited portions.

    Only meaningful for sequences without port-containing control statements
    (those are refined structurally by the compiler); used by tests to check
    that portions align with the transitions the compiler creates.
    """
    portions: List[List[Statement]] = []
    current: List[Statement] = []
    for statement in statements:
        starts_new = isinstance(statement, ReadData) or (
            current and isinstance(current[-1], WriteData)
        )
        if starts_new and current:
            portions.append(current)
            current = []
        current.append(statement)
    if current:
        portions.append(current)
    return portions
