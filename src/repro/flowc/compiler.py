"""Compilation of a FlowC process into a sequential Petri net (Section 3.1).

Each process becomes a Petri net with:

* exactly one *control place* marked at any reachable marking (the "program
  counter" token);
* one dangling *port place* per declared port, connected by weighted arcs to
  the transitions performing READ_DATA / WRITE_DATA on that port;
* *equal choice* places for data-dependent control (``if``, ``while``,
  ``for``, data ``switch``), annotated with the condition expression and
  resolved by transitions carrying ``True`` / ``False`` / case guards;
* non-equal choice places for ``switch (SELECT(...))`` constructs
  (Section 7.1), whose branch transitions test the availability of the
  involved port places.

The granularity follows the leader rules: consecutive statements without port
operations collapse into a single transition whose ``code`` attribute carries
the statement list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.flowc.ast_nodes import (
    Assignment,
    BinaryOp,
    Block,
    Break,
    Continue,
    Declaration,
    Expression,
    ExprStatement,
    For,
    Identifier,
    If,
    IntLiteral,
    PortDecl,
    PostfixOp,
    Process,
    ReadData,
    Return,
    SelectExpr,
    Statement,
    Switch,
    UnaryOp,
    While,
    WriteData,
)
from repro.flowc.leaders import contains_port_statement, is_port_statement
from repro.petrinet.net import PetriNet, SourceKind


class CompilationError(Exception):
    """Raised when a FlowC construct cannot be compiled to a Petri net."""


# marker stored in Place.condition for SELECT choice places
@dataclass(frozen=True)
class SelectCondition:
    """Condition attached to a place created for ``switch (SELECT(...))``."""

    select: SelectExpr


@dataclass
class CompiledProcess:
    """Result of compiling one FlowC process.

    ``declarations`` holds the hoisted initialisation sequence: the leading
    statements of the process (declarations and plain assignments) that
    perform no port operation.  They are executed once at start-up and are not
    part of the cyclic Petri net.
    """

    process: Process
    net: PetriNet
    initial_place: str
    port_places: Dict[str, str] = field(default_factory=dict)
    declarations: List[Statement] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.process.name


def evaluate_constant(expr: Expression) -> Optional[int]:
    """Best-effort constant folding for arc weights (rates must be constants)."""
    if isinstance(expr, IntLiteral):
        return expr.value
    if isinstance(expr, UnaryOp) and expr.op == "-":
        inner = evaluate_constant(expr.operand)
        return None if inner is None else -inner
    if isinstance(expr, UnaryOp) and expr.op == "+":
        return evaluate_constant(expr.operand)
    if isinstance(expr, BinaryOp):
        left = evaluate_constant(expr.left)
        right = evaluate_constant(expr.right)
        if left is None or right is None:
            return None
        try:
            if expr.op == "+":
                return left + right
            if expr.op == "-":
                return left - right
            if expr.op == "*":
                return left * right
            if expr.op == "/":
                return left // right
            if expr.op == "%":
                return left % right
        except ZeroDivisionError:
            return None
    return None


def _constant_truth(expr: Expression) -> Optional[bool]:
    """``True``/``False`` when the condition is a compile-time constant."""
    value = evaluate_constant(expr)
    if value is None:
        return None
    return bool(value)


def constant_trip_count(statement: For) -> Optional[int]:
    """Trip count of a ``for`` loop when it is a compile-time constant.

    Recognises the canonical shape ``for (i = a; i < b; i += c)`` (also
    ``<=``, ``i++``, ``i--``, ``i -= c``) with constant ``a``, ``b``, ``c``.
    Returns ``None`` when the count cannot be determined statically.
    """
    if statement.init is None or statement.condition is None or statement.update is None:
        return None
    init = statement.init
    if not (isinstance(init, Assignment) and init.op == "=" and isinstance(init.target, Identifier)):
        return None
    variable = init.target.name
    start = evaluate_constant(init.value)
    if start is None:
        return None
    condition = statement.condition
    if not (
        isinstance(condition, BinaryOp)
        and isinstance(condition.left, Identifier)
        and condition.left.name == variable
        and condition.op in ("<", "<=", ">", ">=")
    ):
        return None
    limit = evaluate_constant(condition.right)
    if limit is None:
        return None
    update = statement.update
    step: Optional[int] = None
    if isinstance(update, (PostfixOp, UnaryOp)) and getattr(update, "op", None) in ("++", "--"):
        operand = update.operand
        if isinstance(operand, Identifier) and operand.name == variable:
            step = 1 if update.op == "++" else -1
    elif isinstance(update, Assignment) and isinstance(update.target, Identifier) and update.target.name == variable:
        delta = evaluate_constant(update.value)
        if update.op == "+=" and delta is not None:
            step = delta
        elif update.op == "-=" and delta is not None:
            step = -delta
        elif update.op == "=":
            # i = i + c / i = i - c
            value = update.value
            if (
                isinstance(value, BinaryOp)
                and isinstance(value.left, Identifier)
                and value.left.name == variable
            ):
                delta = evaluate_constant(value.right)
                if delta is not None and value.op == "+":
                    step = delta
                elif delta is not None and value.op == "-":
                    step = -delta
    if step is None or step == 0:
        return None
    count = 0
    current = start
    comparisons = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    compare = comparisons[condition.op]
    while compare(current, limit):
        count += 1
        current += step
        if count > 1_000_000:
            return None
    return count


class _ProcessCompiler:
    """Stateful helper building the Petri net of one process."""

    DEFAULT_MAX_UNROLL = 1024

    def __init__(self, process: Process, *, simplify: bool = True, max_unroll: int = DEFAULT_MAX_UNROLL):
        self.process = process
        self.simplify_enabled = simplify
        self.max_unroll = max_unroll
        self.net = PetriNet(name=process.name)
        self.port_places: Dict[str, str] = {}
        self.declarations: List[Declaration] = []
        self._place_counter = 0
        self._transition_counter = 0
        self.initial_place = self._new_place(tokens=1)

    # -- naming -------------------------------------------------------------
    def _new_place(self, tokens: int = 0, condition: Optional[object] = None) -> str:
        name = f"{self.process.name}.p{self._place_counter}"
        self._place_counter += 1
        self.net.add_place(name, tokens, process=self.process.name, condition=condition)
        return name

    def _new_transition(
        self,
        code: Optional[List[Statement]] = None,
        guard: Optional[object] = None,
        select_priority: Optional[int] = None,
    ) -> str:
        name = f"{self.process.name}.t{self._transition_counter}"
        self._transition_counter += 1
        self.net.add_transition(
            name,
            code=tuple(code) if code else (),
            process=self.process.name,
            guard=guard,
            select_priority=select_priority,
        )
        return name

    def _port_place(self, port: str) -> str:
        if port not in {p.name for p in self.process.ports}:
            raise CompilationError(
                f"process {self.process.name!r} uses undeclared port {port!r}"
            )
        if port not in self.port_places:
            name = f"{self.process.name}.{port}"
            self.net.add_place(name, 0, is_port=True, process=self.process.name)
            self.port_places[port] = name
        return self.port_places[port]

    def _rate(self, expr: Expression, context: str) -> int:
        value = evaluate_constant(expr)
        if value is None or value <= 0:
            raise CompilationError(
                f"{context}: transfer rate must be a positive compile-time constant, got {expr}"
            )
        return value

    # -- top level -----------------------------------------------------------
    def compile(self) -> CompiledProcess:
        body = list(self.process.body)
        # Hoist the initialisation sequence: leading statements that perform
        # no port operation are executed once at start-up (Section 6.4.2) and
        # are not part of the cyclic schedule (footnote in Section 4.1), so
        # the net starts directly with the reactive loop, matching Figure 3.
        while body and not contains_port_statement(body[0]):
            self.declarations.append(body[0])
            body.pop(0)
        exit_place = self._compile_sequence(body, self.initial_place)
        if exit_place != self.initial_place:
            # Implicit restart: processes describe cyclic behaviour executed
            # repeatedly in response to the environment (Section 4.1 footnote).
            if self.net.postset_of_place(exit_place) or self._place_is_reachable(exit_place):
                loop = self._new_transition(code=[], guard=None)
                self.net.add_arc(exit_place, loop)
                self.net.add_arc(loop, self.initial_place)
        if self.simplify_enabled:
            self._simplify()
        self.net.validate()
        return CompiledProcess(
            process=self.process,
            net=self.net,
            initial_place=self.initial_place,
            port_places=dict(self.port_places),
            declarations=list(self.declarations),
        )

    def _place_is_reachable(self, place: str) -> bool:
        """A place is considered reachable if it has any predecessor or tokens."""
        return bool(self.net.preset_of_place(place)) or bool(
            self.net.initial_tokens.get(place, 0)
        )

    # -- sequences -----------------------------------------------------------
    def _compile_sequence(self, statements: Sequence[Statement], entry: str) -> str:
        """Compile a statement sequence starting at control place ``entry``.

        Returns the control place reached after the sequence.
        """
        flat: List[Statement] = []
        for statement in statements:
            if isinstance(statement, Block):
                flat.extend(statement.statements)
            else:
                flat.append(statement)
        statements = flat
        current_place = entry
        pending: List[Statement] = []

        def flush() -> None:
            nonlocal current_place, pending
            if not pending:
                return
            current_place = self._emit_segment(pending, current_place)
            pending = []

        for statement in statements:
            if isinstance(statement, ReadData):
                flush()
                pending = [statement]
                continue
            if isinstance(statement, WriteData):
                if pending and isinstance(pending[-1], WriteData):
                    flush()
                pending.append(statement)
                continue
            if contains_port_statement(statement):
                flush()
                current_place = self._compile_control(statement, current_place)
                continue
            # plain computation: the statement following a WRITE_DATA is a
            # leader (rule 3), so a segment never continues past a write.
            if pending and isinstance(pending[-1], WriteData):
                flush()
            pending.append(statement)
        flush()
        return current_place

    def _emit_segment(self, statements: List[Statement], entry: str) -> str:
        """Emit one transition for a leader-delimited portion of code."""
        transition = self._new_transition(code=list(statements))
        self.net.add_arc(entry, transition)
        exit_place = self._new_place()
        self.net.add_arc(transition, exit_place)
        for statement in statements:
            if isinstance(statement, ReadData):
                port_place = self._port_place(statement.port)
                rate = self._rate(statement.nitems, f"READ_DATA on {statement.port}")
                self.net.add_arc(port_place, transition, rate)
            elif isinstance(statement, WriteData):
                port_place = self._port_place(statement.port)
                rate = self._rate(statement.nitems, f"WRITE_DATA on {statement.port}")
                self.net.add_arc(transition, port_place, rate)
        return exit_place

    # -- control statements ----------------------------------------------------
    def _compile_control(self, statement: Statement, entry: str) -> str:
        if isinstance(statement, While):
            return self._compile_while(statement.condition, statement.body, entry)
        if isinstance(statement, For):
            return self._compile_for(statement, entry)
        if isinstance(statement, If):
            return self._compile_if(statement, entry)
        if isinstance(statement, Switch):
            if isinstance(statement.subject, SelectExpr):
                return self._compile_select_switch(statement, entry)
            return self._compile_data_switch(statement, entry)
        if isinstance(statement, (Break, Continue, Return)):
            raise CompilationError(
                f"{statement} is not supported inside port-containing control flow"
            )
        raise CompilationError(f"unsupported port-containing statement: {statement}")

    def _attach_condition(self, place: str, condition: object) -> None:
        existing = self.net.places[place].condition
        if existing is not None and existing != condition:
            # Two control statements would share the same choice place; insert
            # an epsilon transition to separate them.
            raise CompilationError(
                f"place {place} already carries condition {existing}; cannot attach {condition}"
            )
        self.net.places[place].condition = condition

    def _compile_while(self, condition: Expression, body: Sequence[Statement], entry: str) -> str:
        constant = _constant_truth(condition)
        if constant is True:
            # Infinite reactive loop: body cycles back to the entry place.
            body_exit = self._compile_sequence(body, entry)
            if body_exit != entry:
                loop = self._new_transition(code=[])
                self.net.add_arc(body_exit, loop)
                self.net.add_arc(loop, entry)
            # Code after `while (1)` is unreachable; give it a fresh place.
            return self._new_place()
        if constant is False:
            return entry
        choice = self._ensure_choice_place(entry, condition)
        exit_place = self._new_place()
        # True branch: execute the body then return to the choice place.
        t_true = self._new_transition(code=[], guard=True)
        self.net.add_arc(choice, t_true)
        body_entry = self._new_place()
        self.net.add_arc(t_true, body_entry)
        body_exit = self._compile_sequence(body, body_entry)
        t_loop = self._new_transition(code=[])
        self.net.add_arc(body_exit, t_loop)
        self.net.add_arc(t_loop, choice)
        # False branch: leave the loop.
        t_false = self._new_transition(code=[], guard=False)
        self.net.add_arc(choice, t_false)
        self.net.add_arc(t_false, exit_place)
        return exit_place

    def _ensure_choice_place(self, entry: str, condition: object) -> str:
        """Attach ``condition`` to ``entry``, inserting an epsilon step if the
        place already resolves another condition or is a port place."""
        place = self.net.places[entry]
        if place.condition is None and not place.is_port and not self.net.postset_of_place(entry):
            place.condition = condition
            return entry
        epsilon = self._new_transition(code=[])
        self.net.add_arc(entry, epsilon)
        fresh = self._new_place(condition=condition)
        self.net.add_arc(epsilon, fresh)
        return fresh

    def _compile_for(self, statement: For, entry: str) -> str:
        """Compile a ``for`` loop containing port operations.

        Loops whose trip count is a compile-time constant are unrolled (the
        static schedule then needs no data-dependent choice for them, which is
        what makes fixed-length pixel/line loops over channels quasi-statically
        schedulable); other loops are desugared into
        ``init; while (cond) { body; update; }``.
        """
        trip_count = constant_trip_count(statement)
        if trip_count is not None and trip_count <= self.max_unroll:
            unrolled: List[Statement] = []
            if statement.init is not None:
                unrolled.append(ExprStatement(statement.init))
            for _ in range(trip_count):
                unrolled.extend(statement.body)
                if statement.update is not None:
                    unrolled.append(ExprStatement(statement.update))
            return self._compile_sequence(unrolled, entry)
        prologue: List[Statement] = []
        if statement.init is not None:
            prologue.append(ExprStatement(statement.init))
        body: List[Statement] = list(statement.body)
        if statement.update is not None:
            body.append(ExprStatement(statement.update))
        condition = statement.condition if statement.condition is not None else IntLiteral(1)
        current = entry
        if prologue:
            current = self._compile_sequence(prologue, current)
        return self._compile_while(condition, body, current)

    def _compile_if(self, statement: If, entry: str) -> str:
        choice = self._ensure_choice_place(entry, statement.condition)
        exit_place = self._new_place()
        t_true = self._new_transition(code=[], guard=True)
        self.net.add_arc(choice, t_true)
        then_entry = self._new_place()
        self.net.add_arc(t_true, then_entry)
        then_exit = self._compile_sequence(statement.then_body, then_entry)
        t_join_then = self._new_transition(code=[])
        self.net.add_arc(then_exit, t_join_then)
        self.net.add_arc(t_join_then, exit_place)

        t_false = self._new_transition(code=[], guard=False)
        self.net.add_arc(choice, t_false)
        if statement.else_body:
            else_entry = self._new_place()
            self.net.add_arc(t_false, else_entry)
            else_exit = self._compile_sequence(statement.else_body, else_entry)
            t_join_else = self._new_transition(code=[])
            self.net.add_arc(else_exit, t_join_else)
            self.net.add_arc(t_join_else, exit_place)
        else:
            self.net.add_arc(t_false, exit_place)
        return exit_place

    def _compile_data_switch(self, statement: Switch, entry: str) -> str:
        choice = self._ensure_choice_place(entry, statement.subject)
        exit_place = self._new_place()
        for case in statement.cases:
            guard: object = "default" if case.value is None else evaluate_constant(case.value)
            if guard is None:
                raise CompilationError("switch case labels must be constant expressions")
            t_case = self._new_transition(code=[], guard=guard)
            self.net.add_arc(choice, t_case)
            case_entry = self._new_place()
            self.net.add_arc(t_case, case_entry)
            body = _strip_trailing_break(case.body)
            case_exit = self._compile_sequence(body, case_entry)
            t_join = self._new_transition(code=[])
            self.net.add_arc(case_exit, t_join)
            self.net.add_arc(t_join, exit_place)
        return exit_place

    def _compile_select_switch(self, statement: Switch, entry: str) -> str:
        """Compile ``switch (SELECT(...))`` (Section 7.1).

        Each case transition tests the availability of its port: input ports
        contribute a read (test) arc of the required weight, so the branch is
        enabled only when the channel holds enough tokens.  Availability of
        free space on bounded output channels is left to the scheduler /
        run-time, matching the conservative treatment in the paper.
        """
        select = statement.subject
        assert isinstance(select, SelectExpr)
        choice = self._ensure_choice_place(entry, SelectCondition(select))
        exit_place = self._new_place()
        cases_by_index: Dict[int, Tuple[Statement, ...]] = {}
        default_body: Optional[Tuple[Statement, ...]] = None
        for case in statement.cases:
            if case.value is None:
                default_body = case.body
                continue
            index = evaluate_constant(case.value)
            if index is None:
                raise CompilationError("SELECT case labels must be constant expressions")
            cases_by_index[index] = case.body
        for priority, (port, count_expr) in enumerate(select.entries):
            body = cases_by_index.get(priority, default_body or ())
            t_case = self._new_transition(code=[], guard=priority, select_priority=priority)
            self.net.add_arc(choice, t_case)
            port_decl = self.process.port(port)
            if port_decl.is_input:
                port_place = self._port_place(port)
                rate = self._rate(count_expr, f"SELECT on {port}")
                # test arc: requires the tokens but does not consume them
                self.net.add_arc(port_place, t_case, rate)
                self.net.add_arc(t_case, port_place, rate)
            case_entry = self._new_place()
            self.net.add_arc(t_case, case_entry)
            case_exit = self._compile_sequence(_strip_trailing_break(body), case_entry)
            t_join = self._new_transition(code=[])
            self.net.add_arc(case_exit, t_join)
            self.net.add_arc(t_join, exit_place)
        return exit_place

    # -- simplification --------------------------------------------------------
    def _simplify(self) -> None:
        """Collapse epsilon transitions to obtain the compact net of Figure 3.

        A transition ``t1 -> p -> t2`` chain is merged when ``p`` is an
        internal unmarked control place with exactly one predecessor and one
        successor and at least one of the two transitions is a silent
        (code-free, guard-free for the absorbed one) epsilon.
        """
        changed = True
        while changed:
            changed = False
            for place in list(self.net.places):
                obj = self.net.places[place]
                if obj.is_port or obj.condition is not None:
                    continue
                if place == self.initial_place or self.net.initial_tokens.get(place, 0):
                    continue
                predecessors = self.net.preset_of_place(place)
                successors = self.net.postset_of_place(place)
                if len(predecessors) != 1 or len(successors) != 1:
                    continue
                t1 = next(iter(predecessors))
                t2 = next(iter(successors))
                if t1 == t2:
                    continue
                trans1 = self.net.transitions[t1]
                trans2 = self.net.transitions[t2]
                # t2 must consume only from the merged place so the preset of
                # the merged transition stays equal to t1's preset; this keeps
                # every choice place Equal Choice (the merge never changes the
                # ECS structure seen by t1's predecessors).
                if set(self.net.pre[t2]) != {place}:
                    continue
                t2_silent = (
                    not trans2.code
                    and trans2.guard is None
                    and trans2.select_priority is None
                )
                t1_absorbable = (
                    not trans1.code
                    and set(self.net.post[t1]) == {place}
                    and not (trans1.guard is not None and trans2.guard is not None)
                    and not (
                        trans1.select_priority is not None
                        and trans2.select_priority is not None
                    )
                )
                if not (t2_silent or t1_absorbable):
                    continue
                self._merge_transitions(t1, place, t2)
                changed = True
                break
        self._remove_dangling_places()

    def _remove_dangling_places(self) -> None:
        """Drop unmarked internal places with no arcs (unreachable exits)."""
        removed = False
        for place in list(self.net.places):
            obj = self.net.places[place]
            if obj.is_port or place == self.initial_place:
                continue
            if self.net.initial_tokens.get(place, 0):
                continue
            if self.net.preset_of_place(place) or self.net.postset_of_place(place):
                continue
            # a dangling place has no arcs, so removing it cannot change any
            # other place's adjacency; one invalidation after the loop suffices
            del self.net.places[place]
            removed = True
        if removed:
            self.net.invalidate_caches()

    def _merge_transitions(self, t1: str, place: str, t2: str) -> None:
        trans1 = self.net.transitions[t1]
        trans2 = self.net.transitions[t2]
        merged_code = tuple(trans1.code or ()) + tuple(trans2.code or ())
        merged_guard = trans1.guard if trans1.guard is not None else trans2.guard
        merged_priority = (
            trans1.select_priority if trans1.select_priority is not None else trans2.select_priority
        )
        new_pre: Dict[str, int] = dict(self.net.pre[t1])
        for p, w in self.net.pre[t2].items():
            if p == place:
                continue
            new_pre[p] = new_pre.get(p, 0) + w
        new_post: Dict[str, int] = {}
        for p, w in self.net.post[t1].items():
            if p == place:
                continue
            new_post[p] = new_post.get(p, 0) + w
        for p, w in self.net.post[t2].items():
            new_post[p] = new_post.get(p, 0) + w
        # reuse t1's identity for the merged transition
        self.net.transitions[t1] = type(trans1)(
            name=t1,
            code=merged_code,
            process=trans1.process,
            source_kind=trans1.source_kind,
            is_sink=trans1.is_sink,
            guard=merged_guard,
            select_priority=merged_priority,
        )
        self.net.pre[t1] = new_pre
        self.net.post[t1] = new_post
        del self.net.transitions[t2]
        del self.net.pre[t2]
        del self.net.post[t2]
        del self.net.places[place]
        self.net.initial_tokens.pop(place, None)
        self.net.invalidate_caches()


def _strip_trailing_break(body: Sequence[Statement]) -> Tuple[Statement, ...]:
    statements = list(body)
    while statements and isinstance(statements[-1], Break):
        statements.pop()
    return tuple(statements)


def compile_process(
    process: Process,
    *,
    simplify: bool = True,
    max_unroll: int = _ProcessCompiler.DEFAULT_MAX_UNROLL,
) -> CompiledProcess:
    """Compile a FlowC process into its sequential Petri net.

    Parameters
    ----------
    simplify:
        Collapse epsilon transitions to obtain the compact net of Figure 3.
    max_unroll:
        Maximum constant trip count for which port-containing ``for`` loops
        are unrolled instead of being turned into data-dependent choices.
    """
    return _ProcessCompiler(process, simplify=simplify, max_unroll=max_unroll).compile()
