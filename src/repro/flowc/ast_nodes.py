"""Abstract syntax tree for the FlowC language.

FlowC is a C subset extended with the port primitives ``READ_DATA``,
``WRITE_DATA`` and ``SELECT`` (Sections 3 and 7.1 of the paper).  The AST is
shared by the leader computation, the process compiler (which attaches lists
of statements to Petri net transitions), the interpreter, and the code-size
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expression:
    """Base class for expressions."""


@dataclass(frozen=True)
class IntLiteral(Expression):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class FloatLiteral(Expression):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class StringLiteral(Expression):
    value: str

    def __str__(self) -> str:
        return f'"{self.value}"'


@dataclass(frozen=True)
class Identifier(Expression):
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Prefix unary operator: ``-``, ``+``, ``!``, ``~``, ``&``, ``*``, ``++``, ``--``."""

    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class PostfixOp(Expression):
    """Postfix ``++`` / ``--``."""

    op: str
    operand: Expression

    def __str__(self) -> str:
        return f"{self.operand}{self.op}"


@dataclass(frozen=True)
class BinaryOp(Expression):
    op: str
    left: Expression
    right: Expression

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Assignment(Expression):
    """Assignment expression ``target op value`` with op in {=, +=, -=, *=, /=, %=}."""

    target: Expression
    op: str
    value: Expression

    def __str__(self) -> str:
        return f"{self.target} {self.op} {self.value}"


@dataclass(frozen=True)
class Conditional(Expression):
    """Ternary conditional ``cond ? then : other``."""

    condition: Expression
    then: Expression
    other: Expression

    def __str__(self) -> str:
        return f"({self.condition} ? {self.then} : {self.other})"


@dataclass(frozen=True)
class Call(Expression):
    """Ordinary function call (treated as an opaque computation)."""

    name: str
    args: Tuple[Expression, ...] = ()

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class Index(Expression):
    """Array subscript ``base[index]``."""

    base: Expression
    index: Expression

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class SelectExpr(Expression):
    """``SELECT(p0, n0, p1, n1, ...)`` -- non-deterministic port readiness choice.

    Each entry is a pair (port name, required item count).  Evaluates to the
    index of the chosen entry (Section 7.1).
    """

    entries: Tuple[Tuple[str, Expression], ...]

    def __str__(self) -> str:
        inner = ", ".join(f"{port}, {count}" for port, count in self.entries)
        return f"SELECT({inner})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Statement:
    """Base class for statements."""


@dataclass(frozen=True)
class Declarator:
    """One declared name: ``name``, ``name[size]`` or ``name = init``."""

    name: str
    array_size: Optional[Expression] = None
    init: Optional[Expression] = None

    def __str__(self) -> str:
        text = self.name
        if self.array_size is not None:
            text += f"[{self.array_size}]"
        if self.init is not None:
            text += f" = {self.init}"
        return text


@dataclass(frozen=True)
class Declaration(Statement):
    """Variable declaration such as ``int n, i;`` or ``int buf[10];``."""

    type_name: str
    declarators: Tuple[Declarator, ...]

    def __str__(self) -> str:
        return f"{self.type_name} {', '.join(str(d) for d in self.declarators)};"


@dataclass(frozen=True)
class ExprStatement(Statement):
    expr: Expression

    def __str__(self) -> str:
        return f"{self.expr};"


@dataclass(frozen=True)
class Block(Statement):
    statements: Tuple[Statement, ...]

    def __str__(self) -> str:
        return "{ " + " ".join(str(s) for s in self.statements) + " }"


@dataclass(frozen=True)
class If(Statement):
    condition: Expression
    then_body: Tuple[Statement, ...]
    else_body: Optional[Tuple[Statement, ...]] = None

    def __str__(self) -> str:
        text = f"if ({self.condition}) {{ ... }}"
        if self.else_body is not None:
            text += " else { ... }"
        return text


@dataclass(frozen=True)
class While(Statement):
    condition: Expression
    body: Tuple[Statement, ...]

    def __str__(self) -> str:
        return f"while ({self.condition}) {{ ... }}"


@dataclass(frozen=True)
class For(Statement):
    init: Optional[Expression]
    condition: Optional[Expression]
    update: Optional[Expression]
    body: Tuple[Statement, ...]

    def __str__(self) -> str:
        return f"for ({self.init}; {self.condition}; {self.update}) {{ ... }}"


@dataclass(frozen=True)
class CaseClause:
    """One ``case value:`` clause of a switch (``value is None`` for default)."""

    value: Optional[Expression]
    body: Tuple[Statement, ...]


@dataclass(frozen=True)
class Switch(Statement):
    """``switch`` statement; with a :class:`SelectExpr` subject it models the
    synchronization-dependent choice of Section 7.1."""

    subject: Expression
    cases: Tuple[CaseClause, ...]

    def __str__(self) -> str:
        return f"switch ({self.subject}) {{ ... }}"

    @property
    def is_select(self) -> bool:
        return isinstance(self.subject, SelectExpr)


@dataclass(frozen=True)
class Break(Statement):
    def __str__(self) -> str:
        return "break;"


@dataclass(frozen=True)
class Continue(Statement):
    def __str__(self) -> str:
        return "continue;"


@dataclass(frozen=True)
class Return(Statement):
    value: Optional[Expression] = None

    def __str__(self) -> str:
        return f"return {self.value};" if self.value is not None else "return;"


@dataclass(frozen=True)
class ReadData(Statement):
    """``READ_DATA(port, target, nitems)`` -- blocking multi-rate read."""

    port: str
    target: Expression
    nitems: Expression

    def __str__(self) -> str:
        return f"READ_DATA({self.port}, {self.target}, {self.nitems});"


@dataclass(frozen=True)
class WriteData(Statement):
    """``WRITE_DATA(port, value, nitems)`` -- blocking multi-rate write."""

    port: str
    value: Expression
    nitems: Expression

    def __str__(self) -> str:
        return f"WRITE_DATA({self.port}, {self.value}, {self.nitems});"


# ---------------------------------------------------------------------------
# Processes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PortDecl:
    """Port declaration in a PROCESS header, e.g. ``In DPORT in``."""

    direction: str  # "In" or "Out"
    port_type: str  # e.g. "DPORT", "CPORT"
    name: str
    data_type: str = "int"

    @property
    def is_input(self) -> bool:
        return self.direction == "In"

    @property
    def is_output(self) -> bool:
        return self.direction == "Out"

    def __str__(self) -> str:
        return f"{self.direction} {self.port_type} {self.name}"


@dataclass(frozen=True)
class Process:
    """A FlowC process: header ports and a sequential statement body.

    ``wcet`` is the optional per-process worst-case execution time
    annotation (``PROCESS name (ports) WCET(n) { ... }``), in abstract
    cycles per transition of the process.  It is ignored by the search
    itself but feeds the latency/jitter terms of the cost objective
    (:mod:`repro.scheduling.objective`).
    """

    name: str
    ports: Tuple[PortDecl, ...]
    body: Tuple[Statement, ...]
    wcet: Optional[int] = None

    def port(self, name: str) -> PortDecl:
        for port in self.ports:
            if port.name == name:
                return port
        raise KeyError(f"process {self.name!r} has no port {name!r}")

    def input_ports(self) -> Tuple[PortDecl, ...]:
        return tuple(p for p in self.ports if p.is_input)

    def output_ports(self) -> Tuple[PortDecl, ...]:
        return tuple(p for p in self.ports if p.is_output)

    def __str__(self) -> str:
        ports = ", ".join(str(p) for p in self.ports)
        return f"PROCESS {self.name}({ports}) {{ {len(self.body)} statements }}"


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------


StatementSeq = Sequence[Statement]


def iter_statements(statements: StatementSeq) -> List[Statement]:
    """Flatten nested blocks one level (compiler convenience)."""
    result: List[Statement] = []
    for statement in statements:
        if isinstance(statement, Block):
            result.extend(iter_statements(statement.statements))
        else:
            result.append(statement)
    return result


def walk_expressions(expr: Expression) -> List[Expression]:
    """All sub-expressions of ``expr`` including itself (pre-order)."""
    result: List[Expression] = [expr]
    if isinstance(expr, (UnaryOp, PostfixOp)):
        result.extend(walk_expressions(expr.operand))
    elif isinstance(expr, BinaryOp):
        result.extend(walk_expressions(expr.left))
        result.extend(walk_expressions(expr.right))
    elif isinstance(expr, Assignment):
        result.extend(walk_expressions(expr.target))
        result.extend(walk_expressions(expr.value))
    elif isinstance(expr, Conditional):
        result.extend(walk_expressions(expr.condition))
        result.extend(walk_expressions(expr.then))
        result.extend(walk_expressions(expr.other))
    elif isinstance(expr, Call):
        for arg in expr.args:
            result.extend(walk_expressions(arg))
    elif isinstance(expr, Index):
        result.extend(walk_expressions(expr.base))
        result.extend(walk_expressions(expr.index))
    elif isinstance(expr, SelectExpr):
        for _port, count in expr.entries:
            result.extend(walk_expressions(count))
    return result


def statement_children(statement: Statement) -> List[Tuple[Statement, ...]]:
    """The nested statement sequences of a compound statement."""
    if isinstance(statement, Block):
        return [statement.statements]
    if isinstance(statement, If):
        children = [statement.then_body]
        if statement.else_body is not None:
            children.append(statement.else_body)
        return children
    if isinstance(statement, While):
        return [statement.body]
    if isinstance(statement, For):
        return [statement.body]
    if isinstance(statement, Switch):
        return [case.body for case in statement.cases]
    return []


def walk_statements(statements: StatementSeq) -> List[Statement]:
    """All statements in a sequence, recursively (pre-order)."""
    result: List[Statement] = []
    for statement in statements:
        result.append(statement)
        for child_seq in statement_children(statement):
            result.extend(walk_statements(child_seq))
    return result


def ports_referenced(statements: StatementSeq) -> List[str]:
    """All port names referenced by READ_DATA / WRITE_DATA / SELECT."""
    names: List[str] = []
    for statement in walk_statements(statements):
        if isinstance(statement, ReadData):
            names.append(statement.port)
        elif isinstance(statement, WriteData):
            names.append(statement.port)
        elif isinstance(statement, Switch) and isinstance(statement.subject, SelectExpr):
            names.extend(port for port, _count in statement.subject.entries)
        elif isinstance(statement, ExprStatement) and isinstance(statement.expr, SelectExpr):
            names.extend(port for port, _count in statement.expr.entries)
    return names
