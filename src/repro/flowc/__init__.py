"""FlowC front-end: language, compiler, linker, interpreter.

FlowC (Section 3 of the paper) is a C-based language extended with port
communication primitives.  A system function is a network of FlowC processes
connected by point-to-point channels.  This package provides:

* :mod:`repro.flowc.ast_nodes` -- the abstract syntax tree.
* :mod:`repro.flowc.lexer` / :mod:`repro.flowc.parser` -- FlowC parsing.
* :mod:`repro.flowc.leaders` -- leader computation (granularity selection).
* :mod:`repro.flowc.compiler` -- per-process compilation to a Petri net.
* :mod:`repro.flowc.netlist` / :mod:`repro.flowc.linker` -- channel
  definitions and linking into a single net.
* :mod:`repro.flowc.interpreter` -- execution of transition code fragments.
"""

from repro.flowc.ast_nodes import (
    Assignment,
    BinaryOp,
    Block,
    Break,
    Call,
    CaseClause,
    Continue,
    Declaration,
    Declarator,
    ExprStatement,
    FloatLiteral,
    For,
    Identifier,
    If,
    Index,
    IntLiteral,
    PortDecl,
    PostfixOp,
    Process,
    ReadData,
    Return,
    SelectExpr,
    StringLiteral,
    Switch,
    UnaryOp,
    While,
    WriteData,
)
from repro.flowc.lexer import FlowCLexError, Token, tokenize
from repro.flowc.parser import FlowCParseError, parse_process, parse_program
from repro.flowc.leaders import compute_leaders, contains_port_statement
from repro.flowc.compiler import CompilationError, compile_process
from repro.flowc.netlist import Channel, EnvironmentPort, Network, PortRef
from repro.flowc.linker import LinkError, link
from repro.flowc.interpreter import (
    CommunicationHandler,
    Environment,
    Interpreter,
    InterpreterError,
    WouldBlock,
)

__all__ = [
    "Assignment",
    "BinaryOp",
    "Block",
    "Break",
    "Call",
    "CaseClause",
    "Channel",
    "CommunicationHandler",
    "CompilationError",
    "Continue",
    "Declaration",
    "Declarator",
    "Environment",
    "EnvironmentPort",
    "ExprStatement",
    "FloatLiteral",
    "FlowCLexError",
    "FlowCParseError",
    "For",
    "Identifier",
    "If",
    "Index",
    "IntLiteral",
    "Interpreter",
    "InterpreterError",
    "LinkError",
    "Network",
    "PortDecl",
    "PortRef",
    "PostfixOp",
    "Process",
    "ReadData",
    "Return",
    "SelectExpr",
    "StringLiteral",
    "Switch",
    "Token",
    "UnaryOp",
    "While",
    "WouldBlock",
    "WriteData",
    "compile_process",
    "compute_leaders",
    "contains_port_statement",
    "link",
    "parse_process",
    "parse_program",
    "tokenize",
]
