"""Recursive-descent parser for FlowC.

The grammar is the C subset used by the paper's examples plus the port
primitives:

``PROCESS name(In DPORT p, Out DPORT q) { ... }`` with bodies made of
declarations, expression statements, ``if``/``else``, ``while``, ``for``,
``switch``/``case`` (including ``switch (SELECT(...))``), ``break``,
``continue``, ``return``, ``READ_DATA(port, target, nitems);`` and
``WRITE_DATA(port, value, nitems);``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.flowc.ast_nodes import (
    Assignment,
    BinaryOp,
    Block,
    Break,
    Call,
    CaseClause,
    Conditional,
    Continue,
    Declaration,
    Declarator,
    Expression,
    ExprStatement,
    FloatLiteral,
    For,
    Identifier,
    If,
    Index,
    IntLiteral,
    PortDecl,
    PostfixOp,
    Process,
    ReadData,
    Return,
    SelectExpr,
    Statement,
    StringLiteral,
    Switch,
    UnaryOp,
    While,
    WriteData,
)
from repro.flowc.lexer import Token, tokenize


class FlowCParseError(Exception):
    """Raised on a syntax error, with the offending token position."""

    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} (line {token.line}, column {token.column}, got {token.value!r})")
        self.token = token


TYPE_NAMES = {"int", "float", "double", "char", "void"}

# binary operator precedence (higher binds tighter)
BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "<<": 8,
    ">>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

ASSIGNMENT_OPS = {"=", "+=", "-=", "*=", "/=", "%="}


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.position = 0

    # -- token helpers -----------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def peek(self, offset: int = 1) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def check(self, kind: str, value: Optional[str] = None) -> bool:
        token = self.current
        if token.kind != kind:
            return False
        return value is None or token.value == value

    def match(self, kind: str, value: Optional[str] = None) -> Optional[Token]:
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: Optional[str] = None) -> Token:
        if not self.check(kind, value):
            expectation = value if value is not None else kind
            raise FlowCParseError(f"expected {expectation!r}", self.current)
        return self.advance()

    def error(self, message: str) -> FlowCParseError:
        return FlowCParseError(message, self.current)

    # -- program / process -------------------------------------------------
    def parse_program(self) -> List[Process]:
        processes: List[Process] = []
        while not self.check("eof"):
            processes.append(self.parse_process())
        return processes

    def parse_process(self) -> Process:
        self.expect("keyword", "PROCESS")
        name = self.expect("ident").value
        self.expect("op", "(")
        ports: List[PortDecl] = []
        if not self.check("op", ")"):
            ports.append(self.parse_port_decl())
            while self.match("op", ","):
                ports.append(self.parse_port_decl())
        self.expect("op", ")")
        wcet: Optional[int] = None
        if self.check("ident", "WCET") or self.check("keyword", "WCET"):
            # optional timing annotation between the port list and the body:
            # PROCESS name (ports) WCET(n) { ... }
            self.advance()
            self.expect("op", "(")
            wcet_token = self.expect("int")
            try:
                wcet = int(wcet_token.value)
            except ValueError:
                raise FlowCParseError("WCET must be an integer", wcet_token)
            if wcet < 0:
                raise FlowCParseError("WCET must be non-negative", wcet_token)
            self.expect("op", ")")
        self.expect("op", "{")
        body = self.parse_statement_list_until("}")
        self.expect("op", "}")
        return Process(name=name, ports=tuple(ports), body=tuple(body), wcet=wcet)

    def parse_port_decl(self) -> PortDecl:
        direction_token = self.current
        if direction_token.value not in ("In", "Out"):
            raise self.error("expected 'In' or 'Out' in port declaration")
        self.advance()
        port_type = self.expect("ident").value if self.check("ident") else self.expect("keyword").value
        name = self.expect("ident").value
        return PortDecl(direction=direction_token.value, port_type=port_type, name=name)

    # -- statements ----------------------------------------------------------
    def parse_statement_list_until(self, closer: str) -> List[Statement]:
        statements: List[Statement] = []
        while not self.check("op", closer) and not self.check("eof"):
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        token = self.current
        if token.kind == "op" and token.value == "{":
            self.advance()
            body = self.parse_statement_list_until("}")
            self.expect("op", "}")
            return Block(tuple(body))
        if token.kind == "keyword":
            if token.value in TYPE_NAMES:
                return self.parse_declaration()
            if token.value == "if":
                return self.parse_if()
            if token.value == "while":
                return self.parse_while()
            if token.value == "for":
                return self.parse_for()
            if token.value == "switch":
                return self.parse_switch()
            if token.value == "break":
                self.advance()
                self.expect("op", ";")
                return Break()
            if token.value == "continue":
                self.advance()
                self.expect("op", ";")
                return Continue()
            if token.value == "return":
                self.advance()
                value = None if self.check("op", ";") else self.parse_expression()
                self.expect("op", ";")
                return Return(value)
            if token.value == "READ_DATA":
                return self.parse_read_data()
            if token.value == "WRITE_DATA":
                return self.parse_write_data()
        if token.kind == "op" and token.value == ";":
            self.advance()
            return Block(())
        expr = self.parse_expression()
        self.expect("op", ";")
        return ExprStatement(expr)

    def parse_declaration(self) -> Declaration:
        type_name = self.advance().value
        declarators: List[Declarator] = [self.parse_declarator()]
        while self.match("op", ","):
            declarators.append(self.parse_declarator())
        self.expect("op", ";")
        return Declaration(type_name=type_name, declarators=tuple(declarators))

    def parse_declarator(self) -> Declarator:
        name = self.expect("ident").value
        array_size: Optional[Expression] = None
        init: Optional[Expression] = None
        if self.match("op", "["):
            array_size = self.parse_expression()
            self.expect("op", "]")
        if self.match("op", "="):
            init = self.parse_assignment_expression()
        return Declarator(name=name, array_size=array_size, init=init)

    def parse_if(self) -> If:
        self.expect("keyword", "if")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        then_body = self._parse_branch_body()
        else_body: Optional[Tuple[Statement, ...]] = None
        if self.match("keyword", "else"):
            else_body = self._parse_branch_body()
        return If(condition=condition, then_body=then_body, else_body=else_body)

    def _parse_branch_body(self) -> Tuple[Statement, ...]:
        statement = self.parse_statement()
        if isinstance(statement, Block):
            return statement.statements
        return (statement,)

    def parse_while(self) -> While:
        self.expect("keyword", "while")
        self.expect("op", "(")
        condition = self.parse_expression()
        self.expect("op", ")")
        body = self._parse_branch_body()
        return While(condition=condition, body=body)

    def parse_for(self) -> For:
        self.expect("keyword", "for")
        self.expect("op", "(")
        init = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        condition = None if self.check("op", ";") else self.parse_expression()
        self.expect("op", ";")
        update = None if self.check("op", ")") else self.parse_expression()
        self.expect("op", ")")
        body = self._parse_branch_body()
        return For(init=init, condition=condition, update=update, body=body)

    def parse_switch(self) -> Switch:
        self.expect("keyword", "switch")
        self.expect("op", "(")
        subject = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", "{")
        cases: List[CaseClause] = []
        while not self.check("op", "}"):
            if self.match("keyword", "case"):
                value = self.parse_expression()
                self.expect("op", ":")
            elif self.match("keyword", "default"):
                value = None
                self.expect("op", ":")
            else:
                raise self.error("expected 'case' or 'default' inside switch")
            body: List[Statement] = []
            while not self.check("keyword", "case") and not self.check("keyword", "default") and not self.check("op", "}"):
                statement = self.parse_statement()
                body.append(statement)
            # a trailing `break;` just terminates the case; keep it in the body
            cases.append(CaseClause(value=value, body=tuple(body)))
        self.expect("op", "}")
        return Switch(subject=subject, cases=tuple(cases))

    def parse_read_data(self) -> ReadData:
        self.expect("keyword", "READ_DATA")
        self.expect("op", "(")
        port = self.expect("ident").value
        self.expect("op", ",")
        target = self.parse_assignment_expression()
        self.expect("op", ",")
        nitems = self.parse_assignment_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ReadData(port=port, target=target, nitems=nitems)

    def parse_write_data(self) -> WriteData:
        self.expect("keyword", "WRITE_DATA")
        self.expect("op", "(")
        port = self.expect("ident").value
        self.expect("op", ",")
        value = self.parse_assignment_expression()
        self.expect("op", ",")
        nitems = self.parse_assignment_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return WriteData(port=port, value=value, nitems=nitems)

    # -- expressions ---------------------------------------------------------
    def parse_expression(self) -> Expression:
        return self.parse_assignment_expression()

    def parse_assignment_expression(self) -> Expression:
        left = self.parse_conditional()
        if self.current.kind == "op" and self.current.value in ASSIGNMENT_OPS:
            op = self.advance().value
            value = self.parse_assignment_expression()
            return Assignment(target=left, op=op, value=value)
        return left

    def parse_conditional(self) -> Expression:
        condition = self.parse_binary(0)
        if self.match("op", "?"):
            then = self.parse_assignment_expression()
            self.expect("op", ":")
            other = self.parse_assignment_expression()
            return Conditional(condition=condition, then=then, other=other)
        return condition

    def parse_binary(self, min_precedence: int) -> Expression:
        left = self.parse_unary()
        while True:
            token = self.current
            if token.kind != "op" or token.value not in BINARY_PRECEDENCE:
                return left
            precedence = BINARY_PRECEDENCE[token.value]
            if precedence < min_precedence:
                return left
            op = self.advance().value
            right = self.parse_binary(precedence + 1)
            left = BinaryOp(op=op, left=left, right=right)

    def parse_unary(self) -> Expression:
        token = self.current
        if token.kind == "op" and token.value in ("-", "+", "!", "~", "&", "*"):
            self.advance()
            operand = self.parse_unary()
            return UnaryOp(op=token.value, operand=operand)
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            operand = self.parse_unary()
            return UnaryOp(op=token.value, operand=operand)
        return self.parse_postfix()

    def parse_postfix(self) -> Expression:
        expr = self.parse_primary()
        while True:
            if self.check("op", "["):
                self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = Index(base=expr, index=index)
                continue
            if self.check("op", "++") or self.check("op", "--"):
                op = self.advance().value
                expr = PostfixOp(op=op, operand=expr)
                continue
            return expr

    def parse_primary(self) -> Expression:
        token = self.current
        if token.kind == "int":
            self.advance()
            return IntLiteral(int(token.value))
        if token.kind == "float":
            self.advance()
            return FloatLiteral(float(token.value))
        if token.kind == "string":
            self.advance()
            return StringLiteral(token.value)
        if token.kind == "keyword" and token.value == "SELECT":
            return self.parse_select()
        if token.kind == "ident":
            self.advance()
            if self.check("op", "("):
                self.advance()
                args: List[Expression] = []
                if not self.check("op", ")"):
                    args.append(self.parse_assignment_expression())
                    while self.match("op", ","):
                        args.append(self.parse_assignment_expression())
                self.expect("op", ")")
                return Call(name=token.value, args=tuple(args))
            return Identifier(token.value)
        if token.kind == "op" and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        raise self.error("expected an expression")

    def parse_select(self) -> SelectExpr:
        self.expect("keyword", "SELECT")
        self.expect("op", "(")
        entries: List[Tuple[str, Expression]] = []
        port = self.expect("ident").value
        self.expect("op", ",")
        count = self.parse_assignment_expression()
        entries.append((port, count))
        while self.match("op", ","):
            port = self.expect("ident").value
            self.expect("op", ",")
            count = self.parse_assignment_expression()
            entries.append((port, count))
        self.expect("op", ")")
        return SelectExpr(entries=tuple(entries))


def parse_program(source: str) -> List[Process]:
    """Parse FlowC source containing one or more PROCESS definitions."""
    return _Parser(tokenize(source)).parse_program()


def parse_process(source: str) -> Process:
    """Parse FlowC source containing exactly one PROCESS definition."""
    processes = parse_program(source)
    if len(processes) != 1:
        raise FlowCParseError(
            f"expected exactly one process, found {len(processes)}",
            Token("eof", "", 0, 0),
        )
    return processes[0]


def parse_expression(source: str) -> Expression:
    """Parse a single FlowC expression (used by tests and the builder API)."""
    parser = _Parser(tokenize(source))
    expr = parser.parse_expression()
    parser.expect("eof")
    return expr


def parse_statements(source: str) -> Tuple[Statement, ...]:
    """Parse a sequence of FlowC statements (no surrounding process)."""
    parser = _Parser(tokenize(source))
    statements = parser.parse_statement_list_until("\0")
    parser.expect("eof")
    return tuple(statements)
