"""Tokenizer for the FlowC language.

FlowC syntax is a C subset; the lexer is a small hand-rolled scanner that
produces a flat token stream with line/column information for error messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional


class FlowCLexError(Exception):
    """Raised on an unrecognised character or malformed literal."""

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} at line {line}, column {column}")
        self.line = line
        self.column = column


KEYWORDS = {
    "PROCESS",
    "In",
    "Out",
    "if",
    "else",
    "while",
    "for",
    "do",
    "switch",
    "case",
    "default",
    "break",
    "continue",
    "return",
    "int",
    "float",
    "double",
    "char",
    "void",
    "READ_DATA",
    "WRITE_DATA",
    "SELECT",
}

# Port type keywords are open-ended (DPORT, CPORT, ...), recognised contextually
# by the parser rather than the lexer.

MULTI_CHAR_OPERATORS = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "<<",
    ">>",
]

SINGLE_CHAR_TOKENS = set("+-*/%<>=!&|^~(){}[];,?:.")


@dataclass(frozen=True)
class Token:
    """A lexical token."""

    kind: str  # 'ident', 'keyword', 'int', 'float', 'string', 'op', 'eof'
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> List[Token]:
    """Tokenize FlowC source text into a list of tokens ending with ``eof``."""
    tokens: List[Token] = []
    line = 1
    column = 1
    i = 0
    length = len(source)

    def error(message: str) -> FlowCLexError:
        return FlowCLexError(message, line, column)

    while i < length:
        ch = source[i]

        # whitespace
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue

        # comments
        if ch == "/" and i + 1 < length and source[i + 1] == "/":
            while i < length and source[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < length and source[i + 1] == "*":
            i += 2
            column += 2
            while i + 1 < length and not (source[i] == "*" and source[i + 1] == "/"):
                if source[i] == "\n":
                    line += 1
                    column = 1
                else:
                    column += 1
                i += 1
            if i + 1 >= length:
                raise error("unterminated block comment")
            i += 2
            column += 2
            continue

        # identifiers / keywords
        if _is_ident_start(ch):
            start = i
            start_col = column
            while i < length and _is_ident_char(source[i]):
                i += 1
                column += 1
            text = source[start:i]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, start_col))
            continue

        # numbers
        if ch.isdigit():
            start = i
            start_col = column
            is_float = False
            while i < length and (source[i].isdigit() or source[i] == "."):
                if source[i] == ".":
                    if is_float:
                        raise error("malformed number")
                    is_float = True
                i += 1
                column += 1
            if i < length and source[i] in "eE":
                is_float = True
                i += 1
                column += 1
                if i < length and source[i] in "+-":
                    i += 1
                    column += 1
                if i >= length or not source[i].isdigit():
                    raise error("malformed exponent")
                while i < length and source[i].isdigit():
                    i += 1
                    column += 1
            text = source[start:i]
            tokens.append(Token("float" if is_float else "int", text, line, start_col))
            continue

        # string literals
        if ch == '"':
            start_col = column
            i += 1
            column += 1
            chars: List[str] = []
            while i < length and source[i] != '"':
                if source[i] == "\\" and i + 1 < length:
                    escape = source[i + 1]
                    mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\", "0": "\0"}
                    chars.append(mapping.get(escape, escape))
                    i += 2
                    column += 2
                    continue
                if source[i] == "\n":
                    raise error("unterminated string literal")
                chars.append(source[i])
                i += 1
                column += 1
            if i >= length:
                raise error("unterminated string literal")
            i += 1
            column += 1
            tokens.append(Token("string", "".join(chars), line, start_col))
            continue

        # character literals are treated as int tokens with their ordinal value
        if ch == "'":
            start_col = column
            if i + 2 < length and source[i + 2] == "'":
                tokens.append(Token("int", str(ord(source[i + 1])), line, start_col))
                i += 3
                column += 3
                continue
            raise error("malformed character literal")

        # operators / punctuation
        matched: Optional[str] = None
        for operator in MULTI_CHAR_OPERATORS:
            if source.startswith(operator, i):
                matched = operator
                break
        if matched is not None:
            tokens.append(Token("op", matched, line, column))
            i += len(matched)
            column += len(matched)
            continue
        if ch in SINGLE_CHAR_TOKENS:
            tokens.append(Token("op", ch, line, column))
            i += 1
            column += 1
            continue

        raise error(f"unexpected character {ch!r}")

    tokens.append(Token("eof", "", line, column))
    return tokens


def token_stream(source: str) -> Iterator[Token]:
    """Generator form of :func:`tokenize` (convenience for tests)."""
    yield from tokenize(source)
