"""Linking: build a single Petri net from the per-process nets (Section 3.2).

Linking merges each pair of port places connected by a channel into a single
place (the channel place), records channel bounds as place attributes, and
attaches environment source / sink transitions to unconnected ports:

* an unconnected input port receives a *source* transition, marked
  controllable or uncontrollable per the netlist declaration;
* an unconnected output port receives a *sink* transition.

The resulting net, for FlowC specifications without SELECT, is unique-choice
(Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.flowc.ast_nodes import Declaration, Process
from repro.flowc.compiler import CompiledProcess, compile_process
from repro.flowc.netlist import Channel, EnvironmentPort, Network, PortRef
from repro.petrinet.net import PetriNet, SourceKind, merge_nets


class LinkError(Exception):
    """Raised when linking fails (type mismatch, missing declarations...)."""


@dataclass
class LinkedSystem:
    """The output of linking: one Petri net plus the symbol tables needed by
    scheduling, code generation and simulation."""

    network: Network
    net: PetriNet
    compiled: Dict[str, CompiledProcess] = field(default_factory=dict)
    # channel name -> place name in the linked net
    channel_places: Dict[str, str] = field(default_factory=dict)
    # environment port ref -> (place name, source/sink transition name)
    environment_places: Dict[PortRef, str] = field(default_factory=dict)
    environment_transitions: Dict[PortRef, str] = field(default_factory=dict)
    # process name -> initial control place
    initial_places: Dict[str, str] = field(default_factory=dict)
    # process name -> hoisted declarations
    declarations: Dict[str, List[Declaration]] = field(default_factory=dict)
    # (process, port) -> place name in the linked net
    port_place_of: Dict[Tuple[str, str], str] = field(default_factory=dict)

    @property
    def uncontrollable_source_transitions(self) -> List[str]:
        return self.net.uncontrollable_sources()

    def place_of_channel(self, channel: str) -> str:
        return self.channel_places[channel]

    def channel_of_place(self, place: str) -> Optional[str]:
        for channel, name in self.channel_places.items():
            if name == place:
                return channel
        return None

    def source_transition_for_input(self, process: str, port: str) -> str:
        return self.environment_transitions[PortRef(process, port)]


def _merge_port_places(
    net: PetriNet,
    keep: str,
    remove: str,
    *,
    channel: str,
    bound: Optional[int],
) -> None:
    """Merge place ``remove`` into ``keep`` (arcs and tokens)."""
    # Snapshot both adjacency views before mutating the raw arc dicts.
    preset = net.preset_of_place(remove)
    postset = net.postset_of_place(remove)
    for transition, weight in preset.items():
        net.post[transition].pop(remove, None)
        net.post[transition][keep] = net.post[transition].get(keep, 0) + weight
    for transition, weight in postset.items():
        net.pre[transition].pop(remove, None)
        net.pre[transition][keep] = net.pre[transition].get(keep, 0) + weight
    tokens = net.initial_tokens.pop(remove, 0)
    if tokens:
        net.initial_tokens[keep] = net.initial_tokens.get(keep, 0) + tokens
    del net.places[remove]
    net.invalidate_caches()
    place = net.places[keep]
    place.is_port = True
    place.channel = channel
    place.bound = bound
    place.process = None


def link(
    network: Network,
    *,
    simplify: bool = True,
    compiled: Optional[Mapping[str, CompiledProcess]] = None,
) -> LinkedSystem:
    """Compile every process of ``network`` and link them into one net.

    ``compiled`` may supply pre-compiled processes (keyed by process name);
    missing ones are compiled on the fly.
    """
    network.validate()

    compiled_processes: Dict[str, CompiledProcess] = {}
    for name, process in network.processes.items():
        if compiled and name in compiled:
            compiled_processes[name] = compiled[name]
        else:
            compiled_processes[name] = compile_process(process, simplify=simplify)

    net = merge_nets((cp.net for cp in compiled_processes.values()), name=network.name)
    # thread the per-process WCET annotations through to the net, where the
    # cost objective's latency/jitter terms read them; unannotated processes
    # stay absent, so an annotation-free program yields an empty dict (and an
    # unchanged structural fingerprint)
    for name, process in network.processes.items():
        if process.wcet is not None:
            net.process_wcet[name] = int(process.wcet)

    system = LinkedSystem(network=network, net=net, compiled=compiled_processes)
    for name, cp in compiled_processes.items():
        system.initial_places[name] = cp.initial_place
        system.declarations[name] = list(cp.declarations)
        for port, place in cp.port_places.items():
            system.port_place_of[(name, port)] = place

    # -- merge channel port places -----------------------------------------
    for channel in network.channels:
        source_key = (channel.source.process, channel.source.port)
        target_key = (channel.target.process, channel.target.port)
        source_place = system.port_place_of.get(source_key)
        target_place = system.port_place_of.get(target_key)
        if source_place is None and target_place is None:
            # Neither side ever touches the port: the channel is dead but we
            # still materialise a place so bounds/diagnostics can refer to it.
            place_name = f"ch.{channel.name}"
            net.add_place(place_name, 0, is_port=True, channel=channel.name, bound=channel.bound)
            system.channel_places[channel.name] = place_name
            continue
        if source_place is None or target_place is None:
            present = source_place or target_place
            assert present is not None
            place = net.places[present]
            place.channel = channel.name
            place.bound = channel.bound
            place.process = None
            system.channel_places[channel.name] = present
            system.port_place_of[source_key] = present
            system.port_place_of[target_key] = present
            continue
        _merge_port_places(
            net, source_place, target_place, channel=channel.name, bound=channel.bound
        )
        system.channel_places[channel.name] = source_place
        system.port_place_of[source_key] = source_place
        system.port_place_of[target_key] = source_place

    # -- environment ports ----------------------------------------------------
    for ref, env in network.environment_inputs.items():
        place = system.port_place_of.get((ref.process, ref.port))
        if place is None:
            # the process never reads this port; create the place anyway
            place = f"env.{ref.process}.{ref.port}"
            net.add_place(place, 0, is_port=True, channel=None, process=ref.process)
            system.port_place_of[(ref.process, ref.port)] = place
        source_kind = (
            SourceKind.CONTROLLABLE if env.controllable else SourceKind.UNCONTROLLABLE
        )
        transition = f"src.{ref.process}.{ref.port}"
        net.add_transition(transition, source_kind=source_kind, process=None)
        net.add_arc(transition, place, env.rate)
        system.environment_places[ref] = place
        system.environment_transitions[ref] = transition

    for ref, env in network.environment_outputs.items():
        place = system.port_place_of.get((ref.process, ref.port))
        if place is None:
            place = f"env.{ref.process}.{ref.port}"
            net.add_place(place, 0, is_port=True, channel=None, process=ref.process)
            system.port_place_of[(ref.process, ref.port)] = place
        transition = f"sink.{ref.process}.{ref.port}"
        net.add_transition(transition, is_sink=True, process=None)
        net.add_arc(place, transition, env.rate)
        system.environment_places[ref] = place
        system.environment_transitions[ref] = transition

    net.validate()
    return system
