"""Persistent cross-process cache of compile-time scheduling artifacts.

The paper's pitch is *compile-time* scheduling: the expensive EP search runs
once and its quasi-static schedule is reused at runtime.  The in-memory
warm-start caches (:mod:`repro.scheduling.warmstart`, the T-invariant basis
store of :mod:`repro.petrinet.invariants`) already amortize that cost within
one process; this package extends them across processes with a disk store
under ``.cache/repro/`` (override with ``REPRO_CACHE_DIR``), so repeated CLI,
benchmark and experiment invocations replay schedules instead of
re-searching.

What is persisted, and under which key:

* canonical schedule records (``scheduling/serialize.result_to_record``,
  which embed the original :class:`~repro.scheduling.ep.SearchCounters`)
  under ``(schema_version, structural_fingerprint, options_fingerprint,
  source_transition)`` -- the options fingerprint covers every
  :class:`~repro.scheduling.ep.SchedulerOptions` field that can change the
  outcome or its accounting, including the EP backend;
* T-invariant bases under ``(schema_version, incidence_fingerprint,
  max_rows)``.

Integrity contract (see ``docs/architecture.md``):

* every entry is schema-version-stamped and checksummed
  (:mod:`repro.cache.stores`); anything that fails decoding is
  **quarantined** and reported as a miss -- a bad cache can cost a
  recomputation, never an exception and never a wrong schedule;
* loaded schedule records are **replay-validated** against the live net
  (rebuild + ``Schedule.validate``) before being trusted; loaded invariant
  bases are re-checked against ``C x = 0``.  A stale entry whose key
  collides with a different net is therefore caught even past the
  fingerprint check.

Activation: the cache is opt-in.  Call :func:`activate` (or pass
``--cache`` to ``benchmarks/bench_scheduler.py``), or set ``REPRO_CACHE=1``
in the environment; ``REPRO_CACHE_DIR`` moves the store, and
``REPRO_CACHE_BACKEND`` picks ``sqlite`` (default) or ``json``.
``python -m repro.cache {stats,clear,verify}`` inspects and maintains the
store on disk.

Example -- schedule once, replay from disk in any later process::

    >>> import repro.cache as cache
    >>> from repro.scheduling.warmstart import cached_find_schedule
    >>> store = cache.activate(path="/tmp/repro-cache-demo")   # doctest: +SKIP
    >>> # first process searches and persists; every later process replays:
    >>> result = cached_find_schedule(net, "src.divisors.in")  # doctest: +SKIP
    >>> result.from_cache                                      # doctest: +SKIP
    True
"""

from __future__ import annotations

import hashlib
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cache.stores import (
    SCHEMA_VERSION,
    CacheStore,
    EntryInfo,
    JsonDirStore,
    NullStore,
    SqliteStore,
    StoreStats,
)

__all__ = [
    "SCHEMA_VERSION",
    "CacheStore",
    "EntryInfo",
    "JsonDirStore",
    "NullStore",
    "SqliteStore",
    "StoreStats",
    "cache_root",
    "open_store",
    "activate",
    "deactivate",
    "active_store",
    "disable_in_subprocess",
    "suspended",
    "reset_active_store",
    "options_fingerprint",
    "schedule_cache_key",
    "load_schedule_record",
    "store_schedule_record",
    "basis_cache_key",
    "load_invariant_basis",
    "store_invariant_basis",
]

#: Default on-disk location, relative to the current working directory.
DEFAULT_CACHE_DIR = os.path.join(".cache", "repro")

#: Environment knobs (documented in the README and docs/user_guide.md).
ENV_ENABLE = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"
ENV_BACKEND = "REPRO_CACHE_BACKEND"


def cache_root(path: Optional[os.PathLike] = None) -> Path:
    """Resolve the cache directory: explicit ``path`` > ``$REPRO_CACHE_DIR`` > default."""
    if path is not None:
        return Path(path)
    env = os.environ.get(ENV_DIR)
    if env:
        return Path(env)
    return Path(DEFAULT_CACHE_DIR)


def open_store(
    path: Optional[os.PathLike] = None, backend: Optional[str] = None
) -> CacheStore:
    """Open (creating if needed) a disk store; never raises.

    ``backend`` is ``"sqlite"`` (default) or ``"json"``, overridable via
    ``$REPRO_CACHE_BACKEND``.  When the preferred backend cannot come up
    (unwritable directory, broken sqlite) the JSON-dir backend is tried, and
    when nothing on disk is usable a :class:`NullStore` is returned so
    callers degrade to cache misses instead of crashing.
    """
    root = cache_root(path)
    requested = (backend or os.environ.get(ENV_BACKEND) or "sqlite").lower()
    attempts = ("sqlite", "json") if requested != "json" else ("json",)
    last_error = "unknown"
    for name in attempts:
        try:
            if name == "sqlite":
                return SqliteStore(root)
            return JsonDirStore(root)
        except Exception as error:  # unusable location / broken backend
            last_error = f"{name}: {error}"
    return NullStore(f"no usable cache backend at {root} ({last_error})")


# ---------------------------------------------------------------------------
# process-wide active store
# ---------------------------------------------------------------------------

_UNRESOLVED = object()
_ACTIVE: object = _UNRESOLVED
_ACTIVE_PID: Optional[int] = None


def _env_enabled() -> bool:
    return os.environ.get(ENV_ENABLE, "").strip().lower() in {"1", "true", "on", "yes"}


def active_store() -> Optional[CacheStore]:
    """The process-wide store consulted by the scheduling layers, or ``None``.

    Resolved lazily on first call: an explicit :func:`activate` wins;
    otherwise ``REPRO_CACHE=1`` in the environment activates the default
    store, and anything else leaves the disk cache off (the in-memory
    warm-start caches still apply).

    **Fork safety**: the resolution is per PID.  A forked child (e.g. a
    ``ProcessPoolExecutor`` worker on Linux) never reuses a store inherited
    from its parent -- sqlite connections must not cross ``fork()`` -- and
    re-resolves from the environment instead (the scheduling pool workers
    go further and disable the cache outright, see
    :func:`disable_in_subprocess`).
    """
    global _ACTIVE, _ACTIVE_PID
    if _ACTIVE is _UNRESOLVED or _ACTIVE_PID != os.getpid():
        # first call in this process, or state inherited across fork():
        # abandon (without closing -- closing a forked sqlite connection
        # could checkpoint the parent's WAL) and resolve afresh
        _ACTIVE = open_store() if _env_enabled() else None
        _ACTIVE_PID = os.getpid()
    return _ACTIVE  # type: ignore[return-value]


def activate(
    path: Optional[os.PathLike] = None,
    backend: Optional[str] = None,
    store: Optional[CacheStore] = None,
) -> CacheStore:
    """Turn the process-wide disk cache on and return the store in use.

    Pass an explicit ``store`` (e.g. a test fixture), or let the default
    resolution run (``path`` / ``$REPRO_CACHE_DIR`` / ``.cache/repro``).
    """
    global _ACTIVE, _ACTIVE_PID
    _ACTIVE = store if store is not None else open_store(path, backend)
    _ACTIVE_PID = os.getpid()
    return _ACTIVE


def _close_if_owned() -> None:
    """Close the active store only when this process opened it."""
    if isinstance(_ACTIVE, CacheStore) and _ACTIVE_PID == os.getpid():
        _ACTIVE.close()


def deactivate() -> None:
    """Turn the process-wide disk cache off (ignoring the environment)."""
    global _ACTIVE, _ACTIVE_PID
    _close_if_owned()
    _ACTIVE = None
    _ACTIVE_PID = os.getpid()


def disable_in_subprocess() -> None:
    """Mark the cache off in a worker process, untouched store left behind.

    Called by the scheduling pool workers: the parent does every cache read
    and write itself, so workers must neither use an inherited connection
    (unsafe across ``fork()``) nor open their own (N-way contention on one
    sqlite file).  Unlike :func:`deactivate` this never closes anything --
    the inherited connection object belongs to the parent.
    """
    global _ACTIVE, _ACTIVE_PID
    _ACTIVE = None
    _ACTIVE_PID = os.getpid()


def reset_active_store() -> None:
    """Forget any resolution so the next :func:`active_store` re-reads the env."""
    global _ACTIVE, _ACTIVE_PID
    _close_if_owned()
    _ACTIVE = _UNRESOLVED
    _ACTIVE_PID = None


@contextmanager
def suspended():
    """Temporarily hide the active store (``active_store() -> None``) without
    closing it; the previous state is restored on exit.  Used by the
    benchmark's backend timing loop, which must measure real EP searches
    even when the caller (or ``REPRO_CACHE=1``) has a cache active."""
    global _ACTIVE, _ACTIVE_PID
    saved, saved_pid = _ACTIVE, _ACTIVE_PID
    _ACTIVE, _ACTIVE_PID = None, os.getpid()
    try:
        yield
    finally:
        _ACTIVE, _ACTIVE_PID = saved, saved_pid


# ---------------------------------------------------------------------------
# schedule records
# ---------------------------------------------------------------------------

KIND_SCHEDULE = "schedule"
KIND_BASIS = "t_invariant_basis"


def options_fingerprint(opts_key: Tuple) -> str:
    """Stable digest of a hashable options identity tuple.

    The tuple comes from :func:`repro.scheduling.warmstart.options_cache_key`
    and covers every option that can change the search outcome or its
    accounting (including the EP backend), so two processes running with the
    same knobs hit the same entries.
    """
    return hashlib.sha256(repr(opts_key).encode("utf-8")).hexdigest()


def schedule_cache_key(net_fingerprint: str, source: str, options_fp: str) -> str:
    """The store key of one scheduling outcome (schema version included)."""
    return f"v{SCHEMA_VERSION}.{net_fingerprint}.{options_fp}.{source}"


def _record_fields_sane(record: Mapping[str, object]) -> bool:
    """Shape check of a deserialized result record (pre replay-validation)."""
    required = {"schedule", "tree_nodes", "elapsed_seconds", "failure_reason", "counters"}
    if not isinstance(record, Mapping) or not required <= set(record):
        return False
    counters = record["counters"]
    if not isinstance(counters, Mapping):
        return False
    from dataclasses import fields as dataclass_fields

    from repro.scheduling.ep import SearchCounters

    known = {f.name for f in dataclass_fields(SearchCounters)}
    return set(counters) <= known


def _replay_validates(net, source: str, record: Mapping[str, object], analysis=None) -> bool:
    """True when the record's schedule replays cleanly against the live net.

    Rebuilds the schedule from its canonical dict bound to ``net`` and runs
    the Section 4.1 validation; any exception (unknown places, ECS mismatch,
    disabled transitions...) means the entry does not belong to this net.
    Failure outcomes (``schedule is None``) carry nothing to replay and are
    accepted on the strength of the fingerprint match.
    """
    schedule_data = record.get("schedule")
    if schedule_data is None:
        return True
    try:
        from repro.petrinet.analysis import StructuralAnalysis
        from repro.scheduling.serialize import schedule_from_dict

        schedule = schedule_from_dict(net, schedule_data)
        if schedule.source_transition != source:
            return False
        if analysis is None:
            # memoise on the indexed snapshot: a warm run validating one
            # record per source must not rebuild the structural analysis
            # (ECS partition, degrees) once per record
            snapshot_cache = net.indexed().analysis_cache
            analysis = snapshot_cache.get("structural_analysis")
            if analysis is None:
                analysis = StructuralAnalysis.of(net)
                snapshot_cache["structural_analysis"] = analysis
        schedule.validate(analysis)
    except Exception:
        return False
    return True


def load_schedule_record(
    store: CacheStore,
    net,
    *,
    net_fingerprint: str,
    source: str,
    options_fp: str,
    analysis=None,
) -> Optional[Dict[str, object]]:
    """Fetch + fully validate one scheduling record; ``None`` on any doubt.

    Beyond the store-level wire checks, the payload must carry the exact
    ``(net_fingerprint, source, options_fp)`` identity it is filed under
    (catching key collisions and hand-edited entries) and its schedule must
    replay-validate against the live ``net``.  Entries failing either check
    are quarantined.
    """
    key = schedule_cache_key(net_fingerprint, source, options_fp)
    payload = store.get(KIND_SCHEDULE, key)
    if payload is None:
        return None
    if (
        payload.get("net_fingerprint") != net_fingerprint
        or payload.get("source") != source
        or payload.get("options_fp") != options_fp
    ):
        store.quarantine(KIND_SCHEDULE, key, "identity mismatch (stale key collision)")
        return None
    record = payload.get("record")
    if not _record_fields_sane(record):
        store.quarantine(KIND_SCHEDULE, key, "malformed result record")
        return None
    if not _replay_validates(net, source, record, analysis):
        store.quarantine(KIND_SCHEDULE, key, "schedule failed replay validation")
        return None
    return dict(record)


def store_schedule_record(
    store: CacheStore,
    *,
    net_fingerprint: str,
    source: str,
    options_fp: str,
    record: Mapping[str, object],
) -> None:
    """Persist one scheduling record under its full identity."""
    store.put(
        KIND_SCHEDULE,
        schedule_cache_key(net_fingerprint, source, options_fp),
        {
            "net_fingerprint": net_fingerprint,
            "source": source,
            "options_fp": options_fp,
            "record": dict(record),
        },
    )


# ---------------------------------------------------------------------------
# T-invariant bases
# ---------------------------------------------------------------------------


def basis_cache_key(incidence_fp: str, max_rows: int) -> str:
    """The store key of one T-invariant basis (schema version included)."""
    return f"v{SCHEMA_VERSION}.{incidence_fp}.rows{max_rows}"


def load_invariant_basis(
    store: CacheStore, net, *, incidence_fp: str, max_rows: int
) -> Optional[List[Dict[str, int]]]:
    """Fetch + validate a T-invariant basis; ``None`` on any doubt.

    Every loaded vector is re-checked against ``C x = 0`` on the live net
    before the basis is trusted (the invariant equivalent of schedule
    replay-validation); a basis that fails is quarantined.
    """
    key = basis_cache_key(incidence_fp, max_rows)
    payload = store.get(KIND_BASIS, key)
    if payload is None:
        return None
    if payload.get("incidence_fingerprint") != incidence_fp or payload.get("max_rows") != max_rows:
        store.quarantine(KIND_BASIS, key, "identity mismatch (stale key collision)")
        return None
    basis = payload.get("basis")
    if not isinstance(basis, list):
        store.quarantine(KIND_BASIS, key, "malformed basis payload")
        return None
    try:
        from repro.petrinet.invariants import is_t_invariant

        for invariant in basis:
            if not isinstance(invariant, dict) or not invariant:
                raise ValueError("not a sparse invariant vector")
            if not all(
                isinstance(t, str) and isinstance(c, int) and c > 0
                for t, c in invariant.items()
            ):
                raise ValueError("invariant entries must be positive integers")
            if not is_t_invariant(net, invariant):
                raise ValueError("vector is not a T-invariant of the live net")
    except Exception:
        store.quarantine(KIND_BASIS, key, "basis failed validation against the live net")
        return None
    return [dict(invariant) for invariant in basis]


def store_invariant_basis(
    store: CacheStore,
    *,
    incidence_fp: str,
    max_rows: int,
    basis: List[Dict[str, int]],
) -> None:
    """Persist a computed T-invariant basis under its incidence identity."""
    store.put(
        KIND_BASIS,
        basis_cache_key(incidence_fp, max_rows),
        {
            "incidence_fingerprint": incidence_fp,
            "max_rows": max_rows,
            "basis": [dict(invariant) for invariant in basis],
        },
    )
