"""``python -m repro.cache`` -- inspect and maintain the on-disk cache.

Three subcommands, all honouring ``--dir`` / ``$REPRO_CACHE_DIR`` and
``--backend`` / ``$REPRO_CACHE_BACKEND``:

* ``stats``  -- entry counts and sizes per artifact kind, backend, location,
  quarantine population (``--json`` for machine-readable output);
* ``clear``  -- drop every entry, including the quarantine area;
* ``verify`` -- run every entry through the offline integrity checks: wire
  decode (schema version, checksum), payload identity against the key it is
  filed under, and result-record shape for schedule entries.  Corrupt
  entries are quarantined as they are found, exactly as a live lookup would
  do; exits non-zero when anything had to be quarantined.  (Replay
  validation against a *net* only happens on live lookups -- verify has no
  net to replay against.)
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from repro.cache import KIND_BASIS, KIND_SCHEDULE, _record_fields_sane, open_store
from repro.cache.stores import SCHEMA_VERSION, CacheStore


def _collect_stats(store: CacheStore) -> Dict[str, object]:
    entries = store.entries()
    by_kind: Dict[str, Dict[str, int]] = {}
    for entry in entries:
        bucket = by_kind.setdefault(entry.kind, {"entries": 0, "bytes": 0})
        bucket["entries"] += 1
        bucket["bytes"] += entry.size_bytes
    return {
        "backend": store.backend_name,
        "location": store.describe(),
        "schema_version": SCHEMA_VERSION,
        "entries": len(entries),
        "bytes": sum(e.size_bytes for e in entries),
        "by_kind": by_kind,
        "quarantined": store.quarantined_count(),
    }


def _cmd_stats(store: CacheStore, as_json: bool) -> int:
    stats = _collect_stats(store)
    if as_json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print(f"cache store : {stats['location']}")
    print(f"schema      : v{stats['schema_version']}")
    print(f"entries     : {stats['entries']} ({stats['bytes']} bytes)")
    for kind, bucket in sorted(stats["by_kind"].items()):
        print(f"  {kind:<20} {bucket['entries']:>5} entries  {bucket['bytes']:>9} bytes")
    print(f"quarantined : {stats['quarantined']}")
    return 0


def _cmd_clear(store: CacheStore) -> int:
    before = len(store.entries())
    store.clear()
    print(f"cleared {before} entries from {store.describe()}")
    return 0


def _payload_matches_key(kind: str, key: str, payload: Dict[str, object]) -> bool:
    """Offline identity/shape checks mirroring the live-lookup gates.

    Keys are ``v<schema>.<fingerprint>.<options_fp>.<source>`` for schedules
    and ``v<schema>.<fingerprint>.rows<max_rows>`` for bases; the payload
    must carry the same identity it is filed under.  Unknown kinds pass
    (nothing to cross-check).
    """
    parts = key.split(".", 3)
    if kind == KIND_SCHEDULE:
        if len(parts) != 4:
            return False
        _version, fingerprint, options_fp, source = parts
        return (
            payload.get("net_fingerprint") == fingerprint
            and payload.get("options_fp") == options_fp
            and payload.get("source") == source
            and _record_fields_sane(payload.get("record"))
        )
    if kind == KIND_BASIS:
        if len(parts) != 3 or not parts[2].startswith("rows"):
            return False
        return (
            payload.get("incidence_fingerprint") == parts[1]
            and f"rows{payload.get('max_rows')}" == parts[2]
            and isinstance(payload.get("basis"), list)
        )
    return True


def _cmd_verify(store: CacheStore, as_json: bool) -> int:
    entries = store.entries()
    ok = 0
    bad: List[Dict[str, str]] = []
    for entry in entries:
        # .get runs the wire pipeline (schema, checksum) and quarantines on
        # corruption; the identity/shape gates run on what survives
        payload = store.get(entry.kind, entry.key)
        if payload is not None and _payload_matches_key(entry.kind, entry.key, payload):
            ok += 1
        else:
            if payload is not None:
                store.quarantine(entry.kind, entry.key, "payload does not match its key")
            bad.append({"kind": entry.kind, "key": entry.key})
    report = {
        "checked": len(entries),
        "ok": ok,
        "quarantined": bad,
        "location": store.describe(),
    }
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(f"verified {report['checked']} entries in {report['location']}: "
              f"{ok} ok, {len(bad)} quarantined")
        for item in bad:
            print(f"  quarantined {item['kind']}/{item['key']}")
    return 1 if bad else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.cache``; returns the process exit code."""
    # shared flags, accepted both before and after the subcommand; SUPPRESS
    # keeps an unprovided subparser flag from overwriting a pre-subcommand one
    shared = argparse.ArgumentParser(add_help=False)
    shared.add_argument(
        "--dir",
        default=argparse.SUPPRESS,
        help="cache directory (default: $REPRO_CACHE_DIR or .cache/repro)",
    )
    shared.add_argument(
        "--backend",
        choices=("sqlite", "json"),
        default=argparse.SUPPRESS,
        help="storage backend (default: $REPRO_CACHE_BACKEND or sqlite)",
    )
    shared.add_argument(
        "--json",
        action="store_true",
        default=argparse.SUPPRESS,
        help="machine-readable output",
    )
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect and maintain the persistent scheduling artifact cache.",
        parents=[shared],
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser(
        "stats", help="entry counts and sizes per artifact kind", parents=[shared]
    )
    sub.add_parser(
        "clear", help="drop every entry, including quarantine", parents=[shared]
    )
    sub.add_parser(
        "verify",
        help="integrity-check every entry, quarantining corrupt ones",
        parents=[shared],
    )
    args = parser.parse_args(argv)
    cache_dir = getattr(args, "dir", None)
    backend = getattr(args, "backend", None)
    as_json = getattr(args, "json", False)

    store = open_store(cache_dir, backend)
    try:
        if args.command == "stats":
            return _cmd_stats(store, as_json)
        if args.command == "clear":
            return _cmd_clear(store)
        return _cmd_verify(store, as_json)
    finally:
        store.close()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
