"""Module entry point: ``python -m repro.cache {stats,clear,verify}``."""

import sys

from repro.cache.cli import main

sys.exit(main())
