"""Disk backends of the compile-time artifact cache.

One :class:`CacheStore` contract, three implementations:

* :class:`SqliteStore` -- the default: one ``store.sqlite`` file (stdlib
  ``sqlite3``), WAL journaling, a ``quarantine`` table for entries that
  failed integrity checks.
* :class:`JsonDirStore` -- one JSON file per entry under ``json/<kind>/``,
  atomic writes via ``os.replace``; the fallback when sqlite is unavailable
  or its database file cannot be opened.
* :class:`NullStore` -- the degenerate backend used when no disk location is
  writable at all: every read misses, every write is dropped.

Every entry travels in one *wire record*: the caller's JSON payload wrapped
with the cache schema version and a SHA-256 checksum of the canonical
payload encoding.  Decoding verifies both; anything that fails -- torn
write, truncated file, foreign schema, bit rot -- is quarantined and
reported as a miss.  **No public method of a store ever raises**: a broken
cache must never break the search that consulted it (searches are always
able to recompute what the cache would have replayed).
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple

#: Version of the on-disk entry format.  Stamped into every wire record and
#: into every cache key; entries written under any other version are ignored
#: (and dropped on contact) instead of being interpreted.
SCHEMA_VERSION = 1


@dataclass
class StoreStats:
    """Operation counters of one store instance (process-local, not persisted)."""

    gets: int = 0
    hits: int = 0
    misses: int = 0
    puts: int = 0
    errors: int = 0
    quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict view for JSON reports (``BENCH_scheduler.json``, CLI)."""
        return asdict(self)


@dataclass
class EntryInfo:
    """Metadata of one stored entry, as reported by :meth:`CacheStore.entries`."""

    kind: str
    key: str
    size_bytes: int
    created: float


def encode_wire(payload: Dict[str, object]) -> str:
    """Wrap ``payload`` into the versioned, checksummed wire record."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    checksum = hashlib.sha256(body.encode("utf-8")).hexdigest()
    return json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "checksum": checksum,
            "created": time.time(),
            "payload": payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def decode_wire(blob: str) -> Optional[Dict[str, object]]:
    """Inverse of :func:`encode_wire`; ``None`` for anything not pristine.

    Rejects non-JSON blobs, wire records of a different :data:`SCHEMA_VERSION`
    and records whose payload does not hash to the recorded checksum.
    """
    try:
        wire = json.loads(blob)
    except (ValueError, TypeError):
        return None
    if not isinstance(wire, dict) or wire.get("schema") != SCHEMA_VERSION:
        return None
    payload = wire.get("payload")
    if not isinstance(payload, dict):
        return None
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    if hashlib.sha256(body.encode("utf-8")).hexdigest() != wire.get("checksum"):
        return None
    return payload


class CacheStore:
    """Abstract disk-backed ``(kind, key) -> JSON payload`` store.

    ``kind`` namespaces artifact types (``"schedule"``,
    ``"t_invariant_basis"``); ``key`` is an opaque string the caller derives
    from content fingerprints (see :mod:`repro.cache`).  Subclasses implement
    the raw ``_read`` / ``_write`` / ``_remove`` / ``_scan`` / ``_wipe``
    primitives; this base class supplies the safe public API -- integrity
    decoding, quarantine-on-corruption, and the guarantee that no public
    method raises.
    """

    #: Short name reported by ``python -m repro.cache stats`` and the bench.
    backend_name = "abstract"

    def __init__(self) -> None:
        self.stats = StoreStats()

    # -- primitives supplied by subclasses ---------------------------------
    def _read(self, kind: str, key: str) -> Optional[str]:
        raise NotImplementedError

    def _write(self, kind: str, key: str, blob: str) -> None:
        raise NotImplementedError

    def _remove(self, kind: str, key: str) -> None:
        raise NotImplementedError

    def _move_to_quarantine(self, kind: str, key: str, reason: str) -> None:
        raise NotImplementedError

    def _scan(self) -> Iterator[EntryInfo]:
        raise NotImplementedError

    def _wipe(self) -> None:
        raise NotImplementedError

    def _quarantine_count(self) -> int:
        raise NotImplementedError

    # -- safe public API ----------------------------------------------------
    def get(self, kind: str, key: str) -> Optional[Dict[str, object]]:
        """The stored payload, or ``None`` for a miss.

        A corrupt entry (unreadable, wrong schema, checksum mismatch) is
        moved to the quarantine area and reported as a miss.
        """
        self.stats.gets += 1
        try:
            blob = self._read(kind, key)
        except Exception:
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        if blob is None:
            self.stats.misses += 1
            return None
        payload = decode_wire(blob)
        if payload is None:
            self.quarantine(kind, key, "wire record failed schema/checksum validation")
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return payload

    def put(self, kind: str, key: str, payload: Dict[str, object]) -> None:
        """Store ``payload`` under ``(kind, key)``, replacing any older entry.

        Failures (unwritable directory, locked database, full disk) are
        swallowed and counted in :attr:`stats` -- the entry is simply not
        cached.
        """
        try:
            self._write(kind, key, encode_wire(payload))
            self.stats.puts += 1
        except Exception:
            self.stats.errors += 1

    def delete(self, kind: str, key: str) -> None:
        """Drop one entry (no-op when absent)."""
        try:
            self._remove(kind, key)
        except Exception:
            self.stats.errors += 1

    def quarantine(self, kind: str, key: str, reason: str) -> None:
        """Move a suspect entry out of the lookup path, keeping it for autopsy.

        Quarantined entries never match another ``get``; ``clear`` removes
        them along with everything else.
        """
        try:
            self._move_to_quarantine(kind, key, reason)
            self.stats.quarantined += 1
        except Exception:
            self.stats.errors += 1
            # last resort: make sure the bad entry stops matching lookups
            try:
                self._remove(kind, key)
            except Exception:
                pass

    def entries(self) -> List[EntryInfo]:
        """Metadata of every live (non-quarantined) entry."""
        try:
            return list(self._scan())
        except Exception:
            self.stats.errors += 1
            return []

    def quarantined_count(self) -> int:
        """Number of entries currently sitting in quarantine."""
        try:
            return self._quarantine_count()
        except Exception:
            self.stats.errors += 1
            return 0

    def clear(self) -> None:
        """Remove every entry, including the quarantine area."""
        try:
            self._wipe()
        except Exception:
            self.stats.errors += 1

    def close(self) -> None:
        """Release any held resources (connections); the store stays usable."""

    def describe(self) -> str:
        """One-line human description (backend + location)."""
        return self.backend_name


class NullStore(CacheStore):
    """The always-empty store used when no disk location is usable.

    Keeps the calling code free of ``None`` checks and the degrade-to-miss
    contract intact: gets miss, puts drop, nothing raises.
    """

    backend_name = "disabled"

    def __init__(self, reason: str = "cache disabled"):
        super().__init__()
        self.reason = reason

    def _read(self, kind: str, key: str) -> Optional[str]:
        return None

    def _write(self, kind: str, key: str, blob: str) -> None:
        pass

    def _remove(self, kind: str, key: str) -> None:
        pass

    def _move_to_quarantine(self, kind: str, key: str, reason: str) -> None:
        pass

    def _scan(self) -> Iterator[EntryInfo]:
        return iter(())

    def _wipe(self) -> None:
        pass

    def _quarantine_count(self) -> int:
        return 0

    def describe(self) -> str:
        return f"disabled ({self.reason})"


class SqliteStore(CacheStore):
    """Entries in one sqlite database file (the default backend).

    Layout: an ``entries(kind, key, blob)`` table holding wire records and a
    ``quarantine(kind, key, blob, reason, ts)`` table for entries that failed
    integrity checks.  WAL journaling plus a busy timeout make concurrent
    readers cheap; concurrent writers serialize on sqlite's file lock, and a
    writer that still loses the race simply drops its write (counted in
    ``stats.errors``).  An unreadable / corrupt database file is rotated to
    ``store.sqlite.corrupt-<n>`` and a fresh database is started in its
    place.

    **Thread model**: one connection *per thread* (``threading.local``).  A
    single shared connection can interleave two threads' statement/commit
    pairs into torn transactions or raise ``ProgrammingError``; the serving
    daemon's executor drives one store from many threads at once, so every
    thread lazily opens its own connection against the same database file
    and sqlite's file locking arbitrates between them exactly as it does
    between processes.  :meth:`close` closes every connection the store ever
    opened; a corruption rotation bumps a generation counter so other
    threads' stale connections are replaced on their next use.
    """

    backend_name = "sqlite"
    FILENAME = "store.sqlite"

    def __init__(self, root: Path):
        super().__init__()
        self.root = Path(root)
        self.path = self.root / self.FILENAME
        self.root.mkdir(parents=True, exist_ok=True)
        # _lock guards the connection registry, the generation counter and
        # corrupt-file rotation; it is never held around statement execution
        self._lock = threading.RLock()
        self._local = threading.local()
        self._connections: List[sqlite3.Connection] = []
        self._generation = 0
        self._closed = False
        try:
            self._connection()
        except sqlite3.Error:
            with self._lock:
                self._rotate_corrupt()
                self._generation += 1
            self._connection()  # a fresh file; raises only if the dir is unusable

    def _open(self) -> sqlite3.Connection:
        # check_same_thread=False solely so close() may reap connections
        # owned by finished executor threads; statements always run on the
        # opening thread (sqlite3.threadsafety serializes the rest)
        conn = sqlite3.connect(str(self.path), timeout=5.0, check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA busy_timeout=5000")
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " kind TEXT NOT NULL, key TEXT NOT NULL, blob TEXT NOT NULL,"
            " created REAL NOT NULL, PRIMARY KEY (kind, key))"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS quarantine ("
            " kind TEXT NOT NULL, key TEXT NOT NULL, blob TEXT,"
            " reason TEXT NOT NULL, ts REAL NOT NULL)"
        )
        conn.commit()
        return conn

    def _forget_local(self) -> None:
        """Close and deregister the calling thread's connection, if any."""
        cached = getattr(self._local, "entry", None)
        if cached is None:
            return
        _generation, conn = cached
        self._local.entry = None
        try:
            conn.close()
        except sqlite3.Error:
            pass
        with self._lock:
            if conn in self._connections:
                self._connections.remove(conn)

    def _connection(self) -> sqlite3.Connection:
        """The calling thread's connection, opened (or refreshed) on demand."""
        if self._closed:
            raise sqlite3.OperationalError("store connection is closed")
        cached = getattr(self._local, "entry", None)
        if cached is not None:
            generation, conn = cached
            if generation == self._generation:
                return conn
            self._forget_local()  # the database was rotated under this thread
        with self._lock:
            generation = self._generation
        conn = self._open()
        with self._lock:
            if self._closed:
                try:
                    conn.close()
                except sqlite3.Error:
                    pass
                raise sqlite3.OperationalError("store connection is closed")
            self._connections.append(conn)
        self._local.entry = (generation, conn)
        return conn

    def _rotate_corrupt(self) -> None:
        """Move an unusable database file aside so a fresh one can start."""
        for attempt in range(100):
            target = self.path.with_name(f"{self.FILENAME}.corrupt-{attempt}")
            if not target.exists():
                self.path.replace(target)
                return
        self.path.unlink()

    def _recover_corrupt(self) -> None:
        """Rotate a database that went bad underneath us, exactly once.

        Several threads can observe the same malformed file concurrently;
        only the first (by generation) performs the rotation, the rest just
        drop their stale connections and reconnect to the fresh database.
        """
        cached = getattr(self._local, "entry", None)
        stale_generation = cached[0] if cached is not None else None
        self._forget_local()
        with self._lock:
            if stale_generation is None or stale_generation == self._generation:
                if self.path.exists():
                    self._rotate_corrupt()
                self._generation += 1

    def _execute(self, sql: str, params: Tuple = (), *, commit: bool = False) -> sqlite3.Cursor:
        try:
            conn = self._connection()
            cursor = conn.execute(sql, params)
            if commit:
                conn.commit()
            return cursor
        except sqlite3.DatabaseError as error:
            message = str(error).lower()
            if "malformed" in message or "not a database" in message:
                self._recover_corrupt()
                conn = self._connection()
                cursor = conn.execute(sql, params)
                if commit:
                    conn.commit()
                return cursor
            raise

    def _read(self, kind: str, key: str) -> Optional[str]:
        row = self._execute(
            "SELECT blob FROM entries WHERE kind = ? AND key = ?", (kind, key)
        ).fetchone()
        return row[0] if row else None

    def _write(self, kind: str, key: str, blob: str) -> None:
        self._execute(
            "INSERT OR REPLACE INTO entries (kind, key, blob, created) VALUES (?, ?, ?, ?)",
            (kind, key, blob, time.time()),
            commit=True,
        )

    def _remove(self, kind: str, key: str) -> None:
        self._execute(
            "DELETE FROM entries WHERE kind = ? AND key = ?", (kind, key), commit=True
        )

    def _move_to_quarantine(self, kind: str, key: str, reason: str) -> None:
        row = self._execute(
            "SELECT blob FROM entries WHERE kind = ? AND key = ?", (kind, key)
        ).fetchone()
        self._execute(
            "INSERT INTO quarantine (kind, key, blob, reason, ts) VALUES (?, ?, ?, ?, ?)",
            (kind, key, row[0] if row else None, reason, time.time()),
        )
        self._execute(
            "DELETE FROM entries WHERE kind = ? AND key = ?", (kind, key), commit=True
        )

    def _scan(self) -> Iterator[EntryInfo]:
        for kind, key, blob, created in self._execute(
            "SELECT kind, key, blob, created FROM entries ORDER BY kind, key"
        ):
            yield EntryInfo(kind=kind, key=key, size_bytes=len(blob), created=created)

    def _quarantine_count(self) -> int:
        return int(self._execute("SELECT COUNT(*) FROM quarantine").fetchone()[0])

    def _wipe(self) -> None:
        self._execute("DELETE FROM entries")
        self._execute("DELETE FROM quarantine", commit=True)

    def close(self) -> None:
        with self._lock:
            self._closed = True
            connections, self._connections = self._connections, []
        self._local.entry = None
        for conn in connections:
            try:
                conn.close()
            except sqlite3.Error:
                pass

    def describe(self) -> str:
        return f"sqlite ({self.path})"


class JsonDirStore(CacheStore):
    """One JSON file per entry: ``json/<kind>/<key>.json`` under the root.

    The fallback backend for environments where sqlite cannot open a
    database (exotic filesystems, read-only sqlite builds); also the easier
    backend to inspect by hand.  Writes go through a temporary file and
    ``os.replace`` so readers never observe a half-written entry; corrupt
    files are moved to ``quarantine/``.
    """

    backend_name = "json"

    def __init__(self, root: Path):
        super().__init__()
        self.root = Path(root)
        self.json_root = self.root / "json"
        self.quarantine_root = self.root / "quarantine"
        self.json_root.mkdir(parents=True, exist_ok=True)

    @staticmethod
    def _filename(key: str) -> str:
        # keys are fingerprint-built and already filesystem-safe, but hash
        # anything suspicious rather than trusting it as a path component
        if all(c.isalnum() or c in "._:-" for c in key) and len(key) < 200:
            return key.replace(":", "_") + ".json"
        return hashlib.sha256(key.encode("utf-8")).hexdigest() + ".json"

    def _path(self, kind: str, key: str) -> Path:
        return self.json_root / kind / self._filename(key)

    def _read(self, kind: str, key: str) -> Optional[str]:
        path = self._path(kind, key)
        if not path.exists():
            return None
        return path.read_text(encoding="utf-8")

    @staticmethod
    def _fsync_directory(directory: Path) -> None:
        """Flush a directory entry so a just-renamed file survives a crash.

        Directory fds are a POSIX notion; on platforms (or filesystems) that
        refuse to open or fsync a directory the flush is skipped -- the
        rename is still atomic, we merely lose the durability upgrade.
        """
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def _write(self, kind: str, key: str, blob: str) -> None:
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # pid alone is not unique under the serving daemon's thread pool:
        # two threads of one process writing the same key would share (and
        # corrupt) one temp file, so the thread id joins the suffix
        tmp = path.with_name(
            path.name + f".tmp-{os.getpid()}-{threading.get_ident()}"
        )
        try:
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(blob)
                handle.flush()
                # without the fsync, os.replace can publish a name whose
                # *data* never reached the disk: a crash then leaves a
                # truncated entry that later reads silently quarantine
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        # and the rename itself must be flushed, or the crash loses the
        # entry entirely (acceptable) *or* resurrects a half-gone tmp file
        self._fsync_directory(path.parent)

    def _remove(self, kind: str, key: str) -> None:
        path = self._path(kind, key)
        if path.exists():
            path.unlink()

    def _move_to_quarantine(self, kind: str, key: str, reason: str) -> None:
        path = self._path(kind, key)
        if not path.exists():
            return
        self.quarantine_root.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_root / f"{kind}.{path.name}"
        suffix = 0
        while target.exists():  # never overwrite an earlier quarantined entry
            suffix += 1
            target = self.quarantine_root / f"{kind}.{path.name}.{suffix}"
        os.replace(path, target)

    def _scan(self) -> Iterator[EntryInfo]:
        if not self.json_root.exists():
            return
        for kind_dir in sorted(self.json_root.iterdir()):
            if not kind_dir.is_dir():
                continue
            for path in sorted(kind_dir.glob("*.json")):
                stat = path.stat()
                yield EntryInfo(
                    kind=kind_dir.name,
                    key=path.stem,
                    size_bytes=stat.st_size,
                    created=stat.st_mtime,
                )

    def _quarantine_count(self) -> int:
        if not self.quarantine_root.exists():
            return 0
        return sum(1 for _ in self.quarantine_root.iterdir())

    def _wipe(self) -> None:
        import shutil

        for directory in (self.json_root, self.quarantine_root):
            if directory.exists():
                shutil.rmtree(directory, ignore_errors=True)
        self.json_root.mkdir(parents=True, exist_ok=True)

    def describe(self) -> str:
        return f"json ({self.json_root})"
