"""Figure 20: execution time of the 4-task implementation vs. FIFO size,
compared against the synthesized single task.

The paper plots, for 10 transmitted frames, the clock cycles of the 4-process
round-robin implementation as a function of the channel buffer size (one line
per compiler option), with the single-task implementation appearing as three
points in the lower-left corner (it always uses the one-place buffers computed
by the scheduler).  Larger buffers help the 4-task version (fewer context
switches) but never close the gap; the single task wins by roughly 4-10x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.common import FAST_CONFIG, PfcExperimentSetup, build_pfc_setup
from repro.runtime.cost_model import PROFILES
from repro.apps.video import VideoAppConfig

DEFAULT_BUFFER_SIZES = (1, 2, 5, 10, 20, 50, 100)
DEFAULT_PROFILES = ("pfc", "pfc-O", "pfc-O2")
DEFAULT_FRAMES = 10


@dataclass
class Figure20Point:
    """One point of the figure."""

    implementation: str  # "multi-task" or "single-task"
    profile: str
    buffer_size: int
    frames: int
    cycles: float
    context_switches: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "implementation": self.implementation,
            "profile": self.profile,
            "buffer_size": self.buffer_size,
            "frames": self.frames,
            "cycles": self.cycles,
            "context_switches": self.context_switches,
        }


def run_figure20(
    *,
    config: VideoAppConfig = FAST_CONFIG,
    frames: int = DEFAULT_FRAMES,
    buffer_sizes: Sequence[int] = DEFAULT_BUFFER_SIZES,
    profiles: Sequence[str] = DEFAULT_PROFILES,
    setup: Optional[PfcExperimentSetup] = None,
) -> List[Figure20Point]:
    """Regenerate the data of Figure 20."""
    setup = setup or build_pfc_setup(config)
    points: List[Figure20Point] = []
    for buffer_size in buffer_sizes:
        result = setup.run_multi_task(frames, buffer_size=buffer_size)
        for profile in profiles:
            points.append(
                Figure20Point(
                    implementation="multi-task",
                    profile=profile,
                    buffer_size=buffer_size,
                    frames=frames,
                    cycles=result.cycles(profile),
                    context_switches=result.context_switches,
                )
            )
    single = setup.run_single_task(frames)
    single_buffer = max(single.channel_max_occupancy.values() or [1])
    for profile in profiles:
        points.append(
            Figure20Point(
                implementation="single-task",
                profile=profile,
                buffer_size=single_buffer,
                frames=frames,
                cycles=single.cycles(profile),
                context_switches=0,
            )
        )
    return points


def format_figure20(points: Sequence[Figure20Point]) -> str:
    """Text rendering of the figure data (one series per profile)."""
    lines = ["Figure 20: execution cycles vs. channel buffer size"]
    profiles = sorted({point.profile for point in points})
    for profile in profiles:
        lines.append(f"  series {profile} (4-task implementation):")
        for point in points:
            if point.profile != profile or point.implementation != "multi-task":
                continue
            lines.append(
                f"    buffers={point.buffer_size:>4}  cycles={point.cycles:>12,.0f}  "
                f"ctx-switches={point.context_switches}"
            )
        for point in points:
            if point.profile != profile or point.implementation != "single-task":
                continue
            lines.append(
                f"    single task (buffers={point.buffer_size}): cycles={point.cycles:>12,.0f}"
            )
    multi_best = {
        profile: min(
            point.cycles
            for point in points
            if point.profile == profile and point.implementation == "multi-task"
        )
        for profile in profiles
    }
    for profile in profiles:
        single = next(
            point.cycles
            for point in points
            if point.profile == profile and point.implementation == "single-task"
        )
        lines.append(
            f"  speed-up of the single task over the best 4-task point ({profile}): "
            f"{multi_best[profile] / single:.1f}x"
        )
    return "\n".join(lines)


def speedup_by_profile(points: Sequence[Figure20Point]) -> Dict[str, float]:
    """Single-task speed-up over the *best* multi-task configuration."""
    result: Dict[str, float] = {}
    for profile in {point.profile for point in points}:
        multi = [
            p.cycles
            for p in points
            if p.profile == profile and p.implementation == "multi-task"
        ]
        single = [
            p.cycles
            for p in points
            if p.profile == profile and p.implementation == "single-task"
        ]
        if multi and single:
            result[profile] = min(multi) / single[0]
    return result
