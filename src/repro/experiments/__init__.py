"""Experiment harnesses regenerating the paper's tables and figures.

Each module exposes a ``run_*`` function returning plain data structures and a
``format_*`` helper producing the table the paper prints, so the benchmarks
and the examples can share the same code paths:

* :mod:`repro.experiments.figure20` -- execution time vs. FIFO size.
* :mod:`repro.experiments.table1` -- execution time vs. number of frames.
* :mod:`repro.experiments.table2` -- code size comparison.
* :mod:`repro.experiments.schedule_stats` -- scheduling statistics of the PFC
  example (Section 8.2: single task, unit-size channels, < 1 minute).
* :mod:`repro.experiments.irrelevance_study` -- irrelevance criterion vs.
  fixed place bounds on the Figure 7 family.
"""

from repro.experiments.common import PfcExperimentSetup, build_pfc_setup
from repro.experiments.figure20 import Figure20Point, run_figure20, format_figure20
from repro.experiments.table1 import Table1Row, run_table1, format_table1
from repro.experiments.table2 import Table2Row, run_table2, format_table2
from repro.experiments.schedule_stats import ScheduleStats, run_schedule_stats
from repro.experiments.irrelevance_study import IrrelevanceStudyRow, run_irrelevance_study

__all__ = [
    "Figure20Point",
    "IrrelevanceStudyRow",
    "PfcExperimentSetup",
    "ScheduleStats",
    "Table1Row",
    "Table2Row",
    "build_pfc_setup",
    "format_figure20",
    "format_table1",
    "format_table2",
    "run_figure20",
    "run_irrelevance_study",
    "run_schedule_stats",
    "run_table1",
    "run_table2",
]
