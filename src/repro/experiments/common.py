"""Shared setup for the PFC (producer / filter / consumer / controller)
experiments of Section 8.2.

Scheduling the full 10x10-pixel system takes a few seconds, so the setup is
computed once and cached per configuration; all experiment harnesses and the
benchmarks reuse it.  Three cache levels stack here:

* an ``lru_cache`` over configs (same-process, same net object),
* the structural warm-start L1 inside :func:`cached_find_schedule`
  (same-process, rebuilt net objects),
* the persistent disk store (:mod:`repro.cache`) when activated via
  ``repro.cache.activate()`` or ``REPRO_CACHE=1`` -- then a *new process*
  running the same geometry replays the schedule instead of re-searching,
  which is what makes repeated table1/table2/figure20 CLI runs cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.apps.video import VideoAppConfig, build_video_system
from repro.codegen.synthesis import SynthesizedTask, synthesize_task
from repro.flowc.linker import LinkedSystem
from repro.runtime.simulation import (
    MultiTaskSimulation,
    SimulationResult,
    SingleTaskSimulation,
)
from repro.scheduling.ep import SchedulerOptions
from repro.scheduling.schedule import Schedule
from repro.scheduling.warmstart import cached_find_schedule


# Default frame geometry of the paper's experiment: "Frames were made by 10
# lines of 10 pixels each".  Tests use a smaller geometry to stay fast.
PAPER_CONFIG = VideoAppConfig(lines_per_frame=10, pixels_per_line=10)
FAST_CONFIG = VideoAppConfig(lines_per_frame=4, pixels_per_line=5)


@dataclass
class PfcExperimentSetup:
    """Everything the PFC experiments need, computed once."""

    config: VideoAppConfig
    system: LinkedSystem
    schedule: Schedule
    synthesized: SynthesizedTask
    scheduling_seconds: float
    scheduling_tree_nodes: int

    def stimulus(self, frames: int) -> Dict[str, List[int]]:
        """The init event stream for a run of ``frames`` frames."""
        return {"init": [frame % 2 for frame in range(frames)]}

    def channel_capacities(self, buffer_size: int) -> Dict[str, int]:
        """Per-channel FIFO capacities for a nominal buffer size.

        The pixel channels carry one line per producer/consumer transfer, so
        their FIFO must hold at least one line regardless of the nominal
        size (writing a line into a smaller FIFO would block forever); the
        scalar control channels use the nominal size directly.  This mirrors
        the paper's observation that "a buffer size equal or greater than
        [one line] gives a little boost in performance since an entire line
        fits in it".
        """
        line = self.config.pixels_per_line
        capacities: Dict[str, int] = {}
        for channel in self.system.network.channels:
            if "pix" in channel.name.lower():
                capacities[channel.name] = max(buffer_size, line)
            else:
                capacities[channel.name] = max(buffer_size, 1)
        return capacities

    # -- simulations --------------------------------------------------------
    def run_multi_task(self, frames: int, *, buffer_size: int) -> SimulationResult:
        simulation = MultiTaskSimulation(
            self.system,
            channel_capacity=self.channel_capacities(buffer_size),
            stimulus=self.stimulus(frames),
        )
        result = simulation.run()
        if result.events_served < frames:
            raise RuntimeError(
                f"multi-task simulation deadlocked: served {result.events_served} of {frames} frames "
                f"with buffer size {buffer_size}"
            )
        return result

    def run_single_task(self, frames: int) -> SimulationResult:
        simulation = SingleTaskSimulation(
            self.system,
            schedules={self.schedule.source_transition: self.schedule},
        )
        return simulation.run(self.stimulus(frames))

    def measure(
        self,
        implementation: str,
        frames: int,
        *,
        buffer_size: int = 1,
        max_simulated_frames: Optional[int] = None,
    ) -> Tuple[SimulationResult, float]:
        """Run one implementation and return ``(result, frame_scale)``.

        ``max_simulated_frames`` allows large frame counts to be extrapolated
        linearly from a shorter run (per-frame behaviour is identical from the
        second frame on); the returned scale is the factor by which cycle
        counts must be multiplied.  ``None`` simulates every frame.
        """
        simulated = frames
        scale = 1.0
        if max_simulated_frames is not None and frames > max_simulated_frames:
            simulated = max_simulated_frames
            scale = frames / simulated
        if implementation == "multi-task":
            result = self.run_multi_task(simulated, buffer_size=buffer_size)
        elif implementation == "single-task":
            result = self.run_single_task(simulated)
        else:
            raise ValueError(f"unknown implementation {implementation!r}")
        return result, scale


@lru_cache(maxsize=4)
def _cached_setup(
    config: VideoAppConfig, max_nodes: int, backend: str
) -> PfcExperimentSetup:
    system = build_video_system(config)
    # Warm-start by structural fingerprint: a geometry scheduled once in this
    # process (even on a different net object -- tests, benchmarks and the
    # table1/table2/figure20 sweeps all rebuild the system) replays its
    # schedule instead of re-running the EP search.
    result = cached_find_schedule(
        system.net,
        "src.controller.init",
        options=SchedulerOptions(max_nodes=max_nodes, backend=backend),
        raise_on_failure=True,
    )
    assert result.schedule is not None
    synthesized = synthesize_task(system, result.schedule)
    return PfcExperimentSetup(
        config=config,
        system=system,
        schedule=result.schedule,
        synthesized=synthesized,
        scheduling_seconds=result.elapsed_seconds,
        scheduling_tree_nodes=result.tree_nodes,
    )


def build_pfc_setup(
    config: VideoAppConfig = FAST_CONFIG,
    *,
    max_nodes: int = 100_000,
    backend: str = "auto",
) -> PfcExperimentSetup:
    """Build (or fetch the cached) experiment setup for a frame geometry.

    ``backend`` selects the EP-search hot-loop implementation (scalar /
    batched / auto); the resulting schedule is backend-independent, so the
    knob only matters for the recorded ``scheduling_seconds``.  With the
    persistent cache active (``REPRO_CACHE=1`` or ``repro.cache.activate()``)
    the scheduling step replays from disk across processes; the recorded
    ``scheduling_seconds`` then still reports the *original* search cost.
    """
    return _cached_setup(config, max_nodes, backend)
