"""Irrelevance criterion vs. fixed place bounds (the Figure 7 argument).

Section 4.4 argues that pruning the scheduling search with pre-defined place
bounds (the approach of [13]) fails on the divider/multiplier family of
Figure 7 for any constant bound, while the irrelevance criterion (based on
place degrees and the marking history) finds the schedule.  This experiment
runs both termination conditions on the family for several values of ``k``
and several candidate bounds and reports which succeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.apps.paper_nets import figure_7
from repro.petrinet.reachability import reachable_marking_matrix
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.termination import (
    CompositeCondition,
    IrrelevanceCriterion,
    NodeBudget,
    PlaceBoundCondition,
)


@dataclass
class IrrelevanceStudyRow:
    """Outcome of one (k, termination condition) combination."""

    k: int
    condition: str  # "irrelevance" or "bound=<n>"
    success: bool
    schedule_nodes: int
    tree_nodes: int
    elapsed_seconds: float


def run_irrelevance_study(
    *,
    ks: Sequence[int] = (3, 4, 5),
    bounds: Sequence[int] = (2, 3, 4),
    max_nodes: int = 20_000,
) -> List[IrrelevanceStudyRow]:
    """Schedule the Figure 7 net under both pruning strategies."""
    rows: List[IrrelevanceStudyRow] = []
    for k in ks:
        net = figure_7(k)
        # irrelevance criterion (the paper's proposal)
        irrelevance = CompositeCondition(
            conditions=[IrrelevanceCriterion.for_net(net), NodeBudget(max_nodes=max_nodes)]
        )
        result = find_schedule(
            net,
            "a",
            options=SchedulerOptions(termination=irrelevance, max_nodes=max_nodes),
        )
        rows.append(
            IrrelevanceStudyRow(
                k=k,
                condition="irrelevance",
                success=result.success,
                schedule_nodes=len(result.schedule) if result.schedule else 0,
                tree_nodes=result.tree_nodes,
                elapsed_seconds=result.elapsed_seconds,
            )
        )
        # pre-defined uniform place bounds (the approach the paper argues against)
        for bound in bounds:
            condition = CompositeCondition(
                conditions=[
                    PlaceBoundCondition.uniform(net, bound),
                    NodeBudget(max_nodes=max_nodes),
                ]
            )
            result = find_schedule(
                net,
                "a",
                options=SchedulerOptions(termination=condition, max_nodes=max_nodes),
            )
            rows.append(
                IrrelevanceStudyRow(
                    k=k,
                    condition=f"bound={bound}",
                    success=result.success,
                    schedule_nodes=len(result.schedule) if result.schedule else 0,
                    tree_nodes=result.tree_nodes,
                    elapsed_seconds=result.elapsed_seconds,
                )
            )
    return rows


@dataclass
class PruningSweepRow:
    """Batched pruning statistics of the Figure 7 reachable set for one ``k``."""

    k: int
    markings: int
    # markings irrelevant (Definition 4.5 (b)+(c)) w.r.t. some marking
    # discovered earlier in the BFS -- an upper bound on what the
    # history-based criterion can prune, since BFS discovery order
    # over-approximates ancestry
    irrelevant_wrt_earlier: int
    # per-bound count of markings violating the uniform place bound
    bound_violations: Dict[int, int]


def run_pruning_sweep(
    *,
    ks: Sequence[int] = (3, 4, 5),
    bounds: Sequence[int] = (2, 3, 4),
    max_nodes: int = 4000,
) -> List[PruningSweepRow]:
    """Evaluate the pruning conditions over whole reachable sets at once.

    This is the batched-backend counterpart of :func:`run_irrelevance_study`:
    instead of replaying the scheduling search per condition, it materialises
    a bounded reachable set as one marking matrix (one row per marking) and
    answers every termination query with vectorized row reductions -- each
    uniform place bound is one masked comparison over the full sweep, and the
    irrelevance test runs once per candidate ancestor against *all* later
    rows simultaneously instead of once per (marking, ancestor) pair.
    """
    rows: List[PruningSweepRow] = []
    for k in ks:
        net = figure_7(k)
        inet = net.indexed()
        matrix = reachable_marking_matrix(net, max_nodes=max_nodes)
        criterion = IrrelevanceCriterion.for_net(net)
        irrelevant = np.zeros(matrix.shape[0], dtype=bool)
        for ancestor_index in range(matrix.shape[0] - 1):
            later = matrix[ancestor_index + 1 :]
            mask = criterion.irrelevant_rows(inet, later, matrix[ancestor_index])
            irrelevant[ancestor_index + 1 :] |= mask
        violations: Dict[int, int] = {}
        for bound in bounds:
            condition = PlaceBoundCondition.uniform(net, bound)
            violations[bound] = int(condition.violation_rows(inet, matrix).sum())
        rows.append(
            PruningSweepRow(
                k=k,
                markings=int(matrix.shape[0]),
                irrelevant_wrt_earlier=int(irrelevant.sum()),
                bound_violations=violations,
            )
        )
    return rows


def format_pruning_sweep(rows: Sequence[PruningSweepRow]) -> str:
    lines = ["Batched pruning sweep over the Figure 7 reachable sets"]
    for row in rows:
        bounds = ", ".join(
            f"bound={bound}: {count}" for bound, count in sorted(row.bound_violations.items())
        )
        lines.append(
            f"  k={row.k:<2} markings={row.markings:<6} "
            f"irrelevant(earlier)={row.irrelevant_wrt_earlier:<6} {bounds}"
        )
    return "\n".join(lines)


def format_irrelevance_study(rows: Sequence[IrrelevanceStudyRow]) -> str:
    lines = ["Irrelevance criterion vs. fixed place bounds (Figure 7 family)"]
    for row in rows:
        status = "schedule found" if row.success else "no schedule"
        lines.append(
            f"  k={row.k:<2} {row.condition:<12} {status:<16} "
            f"schedule={row.schedule_nodes:<4} tree={row.tree_nodes}"
        )
    return "\n".join(lines)
