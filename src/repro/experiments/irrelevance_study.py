"""Irrelevance criterion vs. fixed place bounds (the Figure 7 argument).

Section 4.4 argues that pruning the scheduling search with pre-defined place
bounds (the approach of [13]) fails on the divider/multiplier family of
Figure 7 for any constant bound, while the irrelevance criterion (based on
place degrees and the marking history) finds the schedule.  This experiment
runs both termination conditions on the family for several values of ``k``
and several candidate bounds and reports which succeed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.paper_nets import figure_7
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.termination import (
    CompositeCondition,
    IrrelevanceCriterion,
    NodeBudget,
    PlaceBoundCondition,
)


@dataclass
class IrrelevanceStudyRow:
    """Outcome of one (k, termination condition) combination."""

    k: int
    condition: str  # "irrelevance" or "bound=<n>"
    success: bool
    schedule_nodes: int
    tree_nodes: int
    elapsed_seconds: float


def run_irrelevance_study(
    *,
    ks: Sequence[int] = (3, 4, 5),
    bounds: Sequence[int] = (2, 3, 4),
    max_nodes: int = 20_000,
) -> List[IrrelevanceStudyRow]:
    """Schedule the Figure 7 net under both pruning strategies."""
    rows: List[IrrelevanceStudyRow] = []
    for k in ks:
        net = figure_7(k)
        # irrelevance criterion (the paper's proposal)
        irrelevance = CompositeCondition(
            conditions=[IrrelevanceCriterion.for_net(net), NodeBudget(max_nodes=max_nodes)]
        )
        result = find_schedule(
            net,
            "a",
            options=SchedulerOptions(termination=irrelevance, max_nodes=max_nodes),
        )
        rows.append(
            IrrelevanceStudyRow(
                k=k,
                condition="irrelevance",
                success=result.success,
                schedule_nodes=len(result.schedule) if result.schedule else 0,
                tree_nodes=result.tree_nodes,
                elapsed_seconds=result.elapsed_seconds,
            )
        )
        # pre-defined uniform place bounds (the approach the paper argues against)
        for bound in bounds:
            condition = CompositeCondition(
                conditions=[
                    PlaceBoundCondition.uniform(net, bound),
                    NodeBudget(max_nodes=max_nodes),
                ]
            )
            result = find_schedule(
                net,
                "a",
                options=SchedulerOptions(termination=condition, max_nodes=max_nodes),
            )
            rows.append(
                IrrelevanceStudyRow(
                    k=k,
                    condition=f"bound={bound}",
                    success=result.success,
                    schedule_nodes=len(result.schedule) if result.schedule else 0,
                    tree_nodes=result.tree_nodes,
                    elapsed_seconds=result.elapsed_seconds,
                )
            )
    return rows


def format_irrelevance_study(rows: Sequence[IrrelevanceStudyRow]) -> str:
    lines = ["Irrelevance criterion vs. fixed place bounds (Figure 7 family)"]
    for row in rows:
        status = "schedule found" if row.success else "no schedule"
        lines.append(
            f"  k={row.k:<2} {row.condition:<12} {status:<16} "
            f"schedule={row.schedule_nodes:<4} tree={row.tree_nodes}"
        )
    return "\n".join(lines)
