"""Table 2: code size of the single task vs. the four per-process tasks.

The paper reports object sizes in bytes (excluding the RTOS and static data)
for the controller, producer, filter, consumer, their total, the single
synthesized task, and the total/single ratio, under the three compiler
options, with inlined communication primitives (ratios 7.2 - 8.7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.video import VideoAppConfig
from repro.codegen.synthesis import baseline_code_size, synthesized_code_size
from repro.experiments.common import FAST_CONFIG, PfcExperimentSetup, build_pfc_setup
from repro.runtime.cost_model import PROFILES, CodeSizeModel

DEFAULT_PROFILES = ("pfc", "pfc-O", "pfc-O2")


@dataclass
class Table2Row:
    """One row of Table 2: code sizes under one compiler profile."""

    profile: str
    single_task_bytes: int
    per_process_bytes: Dict[str, int]
    inline_communication: bool = True
    share_code_segments: bool = True
    # bytes of the single task's control glue (labels / gotos / jump
    # switches), estimated via CodeSizeModel.estimate -- the part of the
    # single-task size that is scheduling structure rather than process code
    control_glue_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.per_process_bytes["total"]

    @property
    def ratio(self) -> float:
        if self.single_task_bytes == 0:
            return float("inf")
        return self.total_bytes / self.single_task_bytes

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {"profile": self.profile, "1 task": self.single_task_bytes}
        data.update(self.per_process_bytes)
        data["ratio"] = round(self.ratio, 1)
        data["control_glue"] = self.control_glue_bytes
        return data


def run_table2(
    *,
    config: VideoAppConfig = FAST_CONFIG,
    profiles: Sequence[str] = DEFAULT_PROFILES,
    inline_communication: bool = True,
    share_code_segments: bool = True,
    setup: Optional[PfcExperimentSetup] = None,
) -> List[Table2Row]:
    """Regenerate Table 2 (optionally with the code-sharing ablation)."""
    setup = setup or build_pfc_setup(config)
    rows: List[Table2Row] = []
    for profile in profiles:
        per_process = baseline_code_size(
            setup.system, inline_communication=inline_communication, profile=profile
        )
        single = synthesized_code_size(
            setup.synthesized,
            setup.system,
            profile=profile,
            share_code_segments=share_code_segments,
        )
        glue = CodeSizeModel().estimate(
            {
                "per_label": setup.synthesized.count_construct("labels"),
                "per_goto": setup.synthesized.count_construct("gotos"),
                "per_switch_case": setup.synthesized.count_construct("switches"),
            },
            profile=PROFILES[profile],
        )
        rows.append(
            Table2Row(
                profile=profile,
                single_task_bytes=single,
                per_process_bytes=per_process,
                inline_communication=inline_communication,
                share_code_segments=share_code_segments,
                control_glue_bytes=glue,
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    processes = [key for key in rows[0].per_process_bytes if key != "total"]
    header = ["profile", "1 task"] + processes + ["total", "ratio"]
    lines = [
        "Table 2: code size in bytes (communication "
        + ("inlined" if rows[0].inline_communication else "as function calls")
        + ")",
        "  " + "  ".join(f"{h:>10}" for h in header),
    ]
    for row in rows:
        cells = [f"{row.profile:>10}", f"{row.single_task_bytes:>10}"]
        for process in processes:
            cells.append(f"{row.per_process_bytes[process]:>10}")
        cells.append(f"{row.total_bytes:>10}")
        cells.append(f"{row.ratio:>10.1f}")
        lines.append("  " + "  ".join(cells))
    return "\n".join(lines)
