"""Table 1: execution cycles for different numbers of transmitted frames.

The paper reports thousands of clock cycles for the single-task and 4-process
implementations at 10, 50, 100, 500 and 1000 frames under the three compiler
options, plus the 4-task / 1-task ratio (3.9 unoptimised, ~5.2 with -O/-O2).
The 4-process implementation uses buffers of size 100 ("to obtain a faster
execution").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.apps.video import VideoAppConfig
from repro.experiments.common import FAST_CONFIG, PfcExperimentSetup, build_pfc_setup

DEFAULT_FRAME_COUNTS = (10, 50, 100, 500, 1000)
DEFAULT_PROFILES = ("pfc", "pfc-O", "pfc-O2")
BASELINE_BUFFER_SIZE = 100


@dataclass
class Table1Row:
    """One row of Table 1: a frame count under one compiler profile."""

    frames: int
    profile: str
    single_task_kcycles: float
    multi_task_kcycles: float

    @property
    def ratio(self) -> float:
        if self.single_task_kcycles == 0:
            return float("inf")
        return self.multi_task_kcycles / self.single_task_kcycles

    def as_dict(self) -> Dict[str, object]:
        return {
            "frames": self.frames,
            "profile": self.profile,
            "1 task": round(self.single_task_kcycles, 1),
            "4 procs": round(self.multi_task_kcycles, 1),
            "ratio": round(self.ratio, 1),
        }


def run_table1(
    *,
    config: VideoAppConfig = FAST_CONFIG,
    frame_counts: Sequence[int] = DEFAULT_FRAME_COUNTS,
    profiles: Sequence[str] = DEFAULT_PROFILES,
    buffer_size: int = BASELINE_BUFFER_SIZE,
    max_simulated_frames: Optional[int] = 50,
    setup: Optional[PfcExperimentSetup] = None,
) -> List[Table1Row]:
    """Regenerate Table 1.

    ``max_simulated_frames`` bounds the number of frames actually interpreted;
    larger counts are extrapolated linearly (per-frame work is identical),
    which is also how the paper's numbers scale (its cycle counts are exactly
    proportional to the frame count).
    """
    setup = setup or build_pfc_setup(config)
    rows: List[Table1Row] = []
    for frames in frame_counts:
        multi, multi_scale = setup.measure(
            "multi-task", frames, buffer_size=buffer_size, max_simulated_frames=max_simulated_frames
        )
        single, single_scale = setup.measure(
            "single-task", frames, max_simulated_frames=max_simulated_frames
        )
        for profile in profiles:
            rows.append(
                Table1Row(
                    frames=frames,
                    profile=profile,
                    single_task_kcycles=single.cycles(profile) * single_scale / 1000.0,
                    multi_task_kcycles=multi.cycles(profile) * multi_scale / 1000.0,
                )
            )
    return rows


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render the rows in the layout of the paper's Table 1."""
    profiles = []
    for row in rows:
        if row.profile not in profiles:
            profiles.append(row.profile)
    frame_counts = sorted({row.frames for row in rows})
    header = ["frames"]
    for profile in profiles:
        header += [f"{profile}:1task", f"{profile}:4procs", f"{profile}:ratio"]
    lines = ["Table 1: execution cycles (kilocycles) vs. number of frames", "  " + "  ".join(f"{h:>14}" for h in header)]
    by_key = {(row.frames, row.profile): row for row in rows}
    for frames in frame_counts:
        cells = [f"{frames:>14}"]
        for profile in profiles:
            row = by_key[(frames, profile)]
            cells.append(f"{row.single_task_kcycles:>14,.0f}")
            cells.append(f"{row.multi_task_kcycles:>14,.0f}")
            cells.append(f"{row.ratio:>14.1f}")
        lines.append("  " + "  ".join(cells))
    return "\n".join(lines)


def ratios_by_profile(rows: Sequence[Table1Row]) -> Dict[str, List[float]]:
    result: Dict[str, List[float]] = {}
    for row in rows:
        result.setdefault(row.profile, []).append(row.ratio)
    return result
