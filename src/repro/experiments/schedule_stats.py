"""Scheduling statistics of the PFC example (Section 8.2).

The paper states that the proposed algorithm generated "in less than a
minute, a single task with all the channels of unit size".  This experiment
reports the wall-clock scheduling time, the size of the schedule and the
channel bounds determined by it, both for the paper geometry (10x10 pixels)
and for smaller geometries used by the tests.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.apps.video import VideoAppConfig, build_video_system
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.heuristics import NaiveOrdering, make_heuristic
from repro.petrinet.analysis import StructuralAnalysis


@dataclass
class ScheduleStats:
    """Summary of one scheduling run of the PFC system."""

    config: VideoAppConfig
    success: bool
    seconds: float
    schedule_nodes: int = 0
    await_nodes: int = 0
    tree_nodes: int = 0
    channel_bounds: Dict[str, int] = field(default_factory=dict)
    tasks_generated: int = 0
    # search counters of the indexed core (fires, enabled scans/updates, ...)
    search_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def all_control_channels_unit_size(self) -> bool:
        """True when every scalar (non-pixel) channel has bound 1."""
        control = {
            name: bound
            for name, bound in self.channel_bounds.items()
            if bound and "pix" not in name.lower()
        }
        return bool(control) and all(bound == 1 for bound in control.values())

    def describe_counters(self) -> str:
        """One-line rendering of the search counters for profiling logs."""
        if not self.search_counters:
            return "no counters recorded"
        return ", ".join(f"{key}={value}" for key, value in self.search_counters.items())


def run_schedule_stats(
    config: VideoAppConfig = VideoAppConfig(4, 5),
    *,
    max_nodes: int = 100_000,
    use_invariant_heuristic: bool = True,
) -> ScheduleStats:
    """Schedule the PFC system and collect the Section 8.2 statistics."""
    system = build_video_system(config)
    options = SchedulerOptions(
        max_nodes=max_nodes, use_invariant_heuristic=use_invariant_heuristic
    )
    start = time.monotonic()
    result = find_schedule(system.net, "src.controller.init", options=options)
    elapsed = time.monotonic() - start
    if not result.success or result.schedule is None:
        return ScheduleStats(
            config=config,
            success=False,
            seconds=elapsed,
            tree_nodes=result.tree_nodes,
            search_counters=result.counters.as_dict(),
        )
    schedule = result.schedule
    bounds: Dict[str, int] = {}
    for place, bound in schedule.channel_bounds().items():
        channel = system.channel_of_place(place)
        if channel is None:
            # environment port places are latched by the framework, not FIFOs
            continue
        bounds[channel] = max(bounds.get(channel, 0), bound)
    return ScheduleStats(
        config=config,
        success=True,
        seconds=elapsed,
        schedule_nodes=len(schedule),
        await_nodes=len(schedule.await_nodes()),
        tree_nodes=result.tree_nodes,
        channel_bounds=bounds,
        tasks_generated=len(system.net.uncontrollable_sources()),
        search_counters=result.counters.as_dict(),
    )


def main() -> None:
    """Print scheduling statistics (with search counters) for the PFC system.

    ``PYTHONPATH=src python -m repro.experiments.schedule_stats`` is the
    quick profiling entry point: run it before and after a change to the
    Petri-net core to catch regressions in fires / enabled-set work per
    schedule.
    """
    for config in (VideoAppConfig(4, 5), VideoAppConfig(10, 10)):
        stats = run_schedule_stats(config)
        geometry = f"{config.lines_per_frame}x{config.pixels_per_line}"
        print(
            f"PFC {geometry}: success={stats.success} {stats.seconds:.3f}s "
            f"schedule={stats.schedule_nodes} await={stats.await_nodes} "
            f"tree={stats.tree_nodes}"
        )
        print(f"  counters: {stats.describe_counters()}")
        print(f"  channel bounds: {stats.channel_bounds}")


if __name__ == "__main__":
    main()
