"""Round-robin RTOS model used by the multi-task baseline (Section 8.2).

The paper compares the synthesized single task against an implementation in
which each FlowC process is a separate task executed by a simple round-robin
scheduler.  This module provides the scheduling skeleton and accounting of
context switches and scheduler decisions; the actual execution of a process is
delegated to a runnable object supplied by the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol, Sequence


class RunnableTask(Protocol):
    """What the scheduler needs from a task."""

    name: str

    def can_run(self) -> bool:  # pragma: no cover - protocol
        """True when the task could make progress if scheduled."""
        ...

    def run(self, quantum: int) -> int:  # pragma: no cover - protocol
        """Run until blocked or ``quantum`` steps; return the number of steps."""
        ...


@dataclass
class RtosCosts:
    """Accounting of the RTOS activity during one simulation."""

    context_switches: int = 0
    scheduler_decisions: int = 0
    idle_polls: int = 0
    activations: Dict[str, int] = field(default_factory=dict)

    def record_activation(self, task: str) -> None:
        self.activations[task] = self.activations.get(task, 0) + 1


class RoundRobinScheduler:
    """Cooperative round-robin scheduling of a fixed set of tasks.

    A task runs until it blocks (cannot make progress); switching to a
    different task than the previously running one counts as a context
    switch.  The loop terminates when no task can make progress.
    """

    def __init__(self, tasks: Sequence[RunnableTask], *, quantum: int = 1_000_000):
        if not tasks:
            raise ValueError("the scheduler needs at least one task")
        self.tasks = list(tasks)
        self.quantum = quantum
        self.costs = RtosCosts()
        self._last_running: Optional[str] = None

    def run_until_quiescent(self, *, max_rounds: int = 1_000_000) -> RtosCosts:
        """Run the system until every task is blocked."""
        rounds = 0
        while rounds < max_rounds:
            rounds += 1
            progressed = False
            for task in self.tasks:
                self.costs.scheduler_decisions += 1
                if not task.can_run():
                    self.costs.idle_polls += 1
                    continue
                if self._last_running is not None and self._last_running != task.name:
                    self.costs.context_switches += 1
                elif self._last_running is None:
                    self.costs.context_switches += 1  # initial dispatch
                self._last_running = task.name
                self.costs.record_activation(task.name)
                steps = task.run(self.quantum)
                if steps > 0:
                    progressed = True
            if not progressed:
                break
        return self.costs
