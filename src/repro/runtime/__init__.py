"""Execution substrate: channels, cost model, RTOS model and simulators.

The paper evaluates the synthesized task on a Cadence VCC flow and an R3000
board; this package replaces that infrastructure with a deterministic
simulation substrate:

* :mod:`repro.runtime.channels` -- FIFO channels, environment port latches.
* :mod:`repro.runtime.cost_model` -- cycle and code-size accounting with the
  ``pfc`` / ``pfc-O`` / ``pfc-O2`` compiler profiles of Section 8.2.
* :mod:`repro.runtime.rtos` -- the round-robin multi-tasking model used by
  the 4-process baseline (context switches, communication primitives).
* :mod:`repro.runtime.simulation` -- the two simulators compared in the
  experiments: one task per process under the RTOS model, and the synthesized
  single task per uncontrollable input.
"""

from repro.runtime.channels import (
    ChannelBuffer,
    ChannelClosed,
    EnvironmentSink,
    EnvironmentSource,
)
from repro.runtime.cost_model import (
    CodeSizeModel,
    CompilerProfile,
    CostModel,
    CycleCosts,
    PROFILES,
)
from repro.runtime.rtos import RoundRobinScheduler, RtosCosts
from repro.runtime.simulation import (
    MultiTaskSimulation,
    SimulationOutputs,
    SimulationResult,
    SingleTaskSimulation,
)

__all__ = [
    "ChannelBuffer",
    "ChannelClosed",
    "CodeSizeModel",
    "CompilerProfile",
    "CostModel",
    "CycleCosts",
    "EnvironmentSink",
    "EnvironmentSource",
    "MultiTaskSimulation",
    "PROFILES",
    "RoundRobinScheduler",
    "RtosCosts",
    "SimulationOutputs",
    "SimulationResult",
    "SingleTaskSimulation",
]
