"""Channel and environment-port primitives used by the simulators.

Channels carry actual data values; the number of stored items corresponds to
the token count of the channel place in the Petri net.  Reads and writes have
the blocking semantics of Section 3: a read blocks when fewer items than
requested are available, a write blocks when a bound is defined and would be
exceeded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.flowc.interpreter import CommunicationHandler, WouldBlock


class ChannelClosed(Exception):
    """Raised when reading from an exhausted environment source."""


class ChannelBuffer:
    """A FIFO channel with an optional capacity (the paper's bounded channel).

    ``capacity=None`` models an unbounded channel; the scheduler guarantees
    bounded occupancy for synthesized tasks, while the baseline simulator uses
    explicit capacities to model the FIFO sizes varied in Figure 20.
    """

    def __init__(self, name: str, capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError(f"channel {name!r}: capacity must be positive")
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self.total_written = 0
        self.total_read = 0
        self.max_occupancy = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def occupancy(self) -> int:
        return len(self._items)

    def space(self) -> Optional[int]:
        if self.capacity is None:
            return None
        return self.capacity - len(self._items)

    def can_write(self, nitems: int) -> bool:
        return self.capacity is None or len(self._items) + nitems <= self.capacity

    def can_read(self, nitems: int) -> bool:
        return len(self._items) >= nitems

    def write(self, values: Sequence[Any]) -> None:
        if not self.can_write(len(values)):
            raise WouldBlock(self.name, len(values), self.space() or 0)
        self._items.extend(values)
        self.total_written += len(values)
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)

    def read(self, nitems: int) -> List[Any]:
        if not self.can_read(nitems):
            raise WouldBlock(self.name, nitems, len(self._items))
        values = [self._items.popleft() for _ in range(nitems)]
        self.total_read += nitems
        return values

    def peek_all(self) -> List[Any]:
        return list(self._items)

    def clear(self) -> None:
        self._items.clear()


class EnvironmentSource:
    """A primary input port: a queue of stimulus values provided by the test
    bench / environment.  Reading blocks when the stimulus is exhausted."""

    def __init__(self, name: str, values: Optional[Sequence[Any]] = None):
        self.name = name
        self._pending: Deque[Any] = deque(values or [])
        self.total_consumed = 0

    def offer(self, value: Any) -> None:
        self._pending.append(value)

    def offer_many(self, values: Sequence[Any]) -> None:
        self._pending.extend(values)

    def available(self) -> int:
        return len(self._pending)

    def can_read(self, nitems: int) -> bool:
        return len(self._pending) >= nitems

    def read(self, nitems: int) -> List[Any]:
        if not self.can_read(nitems):
            raise WouldBlock(self.name, nitems, len(self._pending))
        values = [self._pending.popleft() for _ in range(nitems)]
        self.total_consumed += nitems
        return values


class EnvironmentSink:
    """A primary output port: records everything the system emits."""

    def __init__(self, name: str):
        self.name = name
        self.values: List[Any] = []

    def write(self, values: Sequence[Any]) -> None:
        self.values.extend(values)

    def __len__(self) -> int:
        return len(self.values)


@dataclass(frozen=True)
class TraceEvent:
    """One observable I/O event: a write of ``values`` to environment port
    ``port``, stamped with a recorder-global sequence number."""

    port: str
    values: Tuple[Any, ...]
    sequence: int


class TraceRecorder:
    """Collects :class:`TraceEvent` records across all sinks of one run.

    One recorder is shared by every :class:`TracingSink` of a simulation, so
    ``events`` is the globally ordered I/O trace; ``by_channel`` projects it
    to per-channel event sequences, the normal form compared by the corpus
    differential harness (order *within* a channel is significant, global
    interleaving *across* independent channels is not).
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def record(self, port: str, values: Sequence[Any]) -> TraceEvent:
        event = TraceEvent(port=port, values=tuple(values), sequence=len(self.events))
        self.events.append(event)
        return event

    def by_channel(self) -> Dict[str, List[Tuple[Any, ...]]]:
        channels: Dict[str, List[Tuple[Any, ...]]] = {}
        for event in self.events:
            channels.setdefault(event.port, []).append(event.values)
        return channels


class TracingSink(EnvironmentSink):
    """An :class:`EnvironmentSink` that also records every write as a
    :class:`TraceEvent` in a shared :class:`TraceRecorder`.

    Installed via ``replace_sink`` on either simulator; ``values`` keeps
    accumulating as usual, so ``SimulationResult.outputs`` is unaffected.
    """

    def __init__(self, name: str, recorder: TraceRecorder):
        super().__init__(name)
        self.recorder = recorder

    def write(self, values: Sequence[Any]) -> None:
        super().write(values)
        self.recorder.record(self.name, values)


@dataclass
class CommunicationStats:
    """Per-kind communication accounting used by the cost model."""

    intertask_reads: int = 0
    intertask_writes: int = 0
    intertask_items: int = 0
    intratask_reads: int = 0
    intratask_writes: int = 0
    intratask_items: int = 0
    environment_reads: int = 0
    environment_writes: int = 0
    environment_items: int = 0
    selects: int = 0

    def merge(self, other: "CommunicationStats") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


class PortBinding(CommunicationHandler):
    """Maps FlowC port names of one process/task to concrete endpoints.

    Each port is bound to one of: a :class:`ChannelBuffer` (with a role of
    ``reader`` or ``writer``), an :class:`EnvironmentSource`, or an
    :class:`EnvironmentSink`.  The binding also records communication
    statistics classified as inter-task, intra-task or environment traffic,
    which is what distinguishes the baseline implementation from the
    synthesized single task in the cost model.
    """

    def __init__(self, *, stats: Optional[CommunicationStats] = None):
        self.readers: Dict[str, ChannelBuffer] = {}
        self.writers: Dict[str, ChannelBuffer] = {}
        self.sources: Dict[str, EnvironmentSource] = {}
        self.sinks: Dict[str, EnvironmentSink] = {}
        self.intratask_ports: set[str] = set()
        self.stats = stats if stats is not None else CommunicationStats()

    # -- wiring -------------------------------------------------------------
    def bind_reader(self, port: str, channel: ChannelBuffer, *, intratask: bool = False) -> None:
        self.readers[port] = channel
        if intratask:
            self.intratask_ports.add(port)

    def bind_writer(self, port: str, channel: ChannelBuffer, *, intratask: bool = False) -> None:
        self.writers[port] = channel
        if intratask:
            self.intratask_ports.add(port)

    def bind_source(self, port: str, source: EnvironmentSource) -> None:
        self.sources[port] = source

    def bind_sink(self, port: str, sink: EnvironmentSink) -> None:
        self.sinks[port] = sink

    # -- CommunicationHandler interface ---------------------------------------
    def read(self, port: str, nitems: int) -> List[Any]:
        if port in self.sources:
            values = self.sources[port].read(nitems)
            self.stats.environment_reads += 1
            self.stats.environment_items += nitems
            return values
        if port in self.readers:
            values = self.readers[port].read(nitems)
            if port in self.intratask_ports:
                self.stats.intratask_reads += 1
                self.stats.intratask_items += nitems
            else:
                self.stats.intertask_reads += 1
                self.stats.intertask_items += nitems
            return values
        raise KeyError(f"port {port!r} is not bound for reading")

    def write(self, port: str, values: List[Any], nitems: int) -> None:
        if port in self.sinks:
            self.sinks[port].write(values)
            self.stats.environment_writes += 1
            self.stats.environment_items += nitems
            return
        if port in self.writers:
            self.writers[port].write(values)
            if port in self.intratask_ports:
                self.stats.intratask_writes += 1
                self.stats.intratask_items += nitems
            else:
                self.stats.intertask_writes += 1
                self.stats.intertask_items += nitems
            return
        raise KeyError(f"port {port!r} is not bound for writing")

    def available(self, port: str) -> int:
        if port in self.sources:
            return self.sources[port].available()
        if port in self.readers:
            return self.readers[port].occupancy
        return 0

    def space(self, port: str) -> Optional[int]:
        if port in self.sinks:
            return None
        if port in self.writers:
            return self.writers[port].space()
        return None

    def select(self, entries: Sequence[Tuple[str, int]]) -> int:
        self.stats.selects += 1
        for index, (port, needed) in enumerate(entries):
            if port in self.sinks:
                return index
            if port in self.writers:
                space = self.writers[port].space()
                if space is None or space >= needed:
                    return index
                continue
            if self.available(port) >= needed:
                return index
        port, needed = entries[0]
        raise WouldBlock(port, needed, self.available(port))

    # -- readiness checks used by the simulators --------------------------------
    def can_read(self, port: str, nitems: int) -> bool:
        if port in self.sources:
            return self.sources[port].can_read(nitems)
        if port in self.readers:
            return self.readers[port].can_read(nitems)
        return False

    def can_write(self, port: str, nitems: int) -> bool:
        if port in self.sinks:
            return True
        if port in self.writers:
            return self.writers[port].can_write(nitems)
        return False
