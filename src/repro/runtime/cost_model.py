"""Cycle and code-size cost model (the substitute for the paper's R3000 runs).

The paper reports clock cycles measured on a MIPS R3000 for three compiler
configurations (``pfc`` = no optimisation, ``pfc-O``, ``pfc-O2``) and code
sizes of the generated objects.  We replace the physical measurement with a
deterministic model applied to the operation counts collected during
simulation:

* every abstract operation (arithmetic, comparison, assignment, memory
  access, branch, call) costs a fixed number of cycles, scaled by the
  compiler profile (optimisation mostly shrinks computation code);
* communication costs depend on the implementation: inter-task communication
  under the RTOS pays a per-call overhead plus a per-item copy cost, while
  intra-task communication in the synthesized task is a direct circular
  buffer / variable access;
* each context switch of the round-robin scheduler and each scheduler
  decision costs a fixed number of cycles, *not* scaled by the profile (the
  RTOS is pre-compiled);
* the single synthesized task pays a small ISR dispatch overhead per
  environment event.

The absolute constants are loosely calibrated so that the relative results of
Section 8.2 (single task 4-5x faster, ratios growing under -O/-O2, code size
several times smaller) emerge from the model rather than being hard-coded;
EXPERIMENTS.md records the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Dict, Iterable, Mapping, Optional

from repro.flowc.interpreter import OperationCounter
from repro.runtime.channels import CommunicationStats


@dataclass(frozen=True)
class CompilerProfile:
    """One column of the paper's tables: a compiler optimisation level."""

    name: str
    computation_scale: float
    code_scale: float

    def __str__(self) -> str:
        return self.name


PROFILES: Dict[str, CompilerProfile] = {
    "pfc": CompilerProfile("pfc", computation_scale=1.0, code_scale=1.0),
    "pfc-O": CompilerProfile("pfc-O", computation_scale=0.44, code_scale=0.55),
    "pfc-O2": CompilerProfile("pfc-O2", computation_scale=0.42, code_scale=0.53),
}


@dataclass(frozen=True)
class CycleCosts:
    """Cycle costs of the abstract operations (before profile scaling)."""

    arithmetic: int = 2
    comparison: int = 2
    assignment: int = 2
    memory: int = 3
    branch: int = 4
    call: int = 12
    select: int = 8

    def computation_cycles(self, ops: OperationCounter) -> float:
        return (
            ops.arithmetic * self.arithmetic
            + ops.comparisons * self.comparison
            + ops.assignments * self.assignment
            + ops.memory * self.memory
            + ops.branches * self.branch
            + ops.calls * self.call
            + ops.selects * self.select
        )


@dataclass(frozen=True)
class CommunicationCosts:
    """Cycle costs of communication, by implementation style."""

    # inter-task communication through the RTOS / VCC primitives
    intertask_call_overhead: int = 110
    intertask_per_item: int = 6
    # intra-task communication compiled to circular buffers / variables
    intratask_call_overhead: int = 6
    intratask_per_item: int = 2
    # environment (primary) port access: latched arrays, Section 8.1
    environment_call_overhead: int = 14
    environment_per_item: int = 2
    select_overhead: int = 20

    def cycles(self, stats: CommunicationStats) -> float:
        intertask_calls = stats.intertask_reads + stats.intertask_writes
        intratask_calls = stats.intratask_reads + stats.intratask_writes
        environment_calls = stats.environment_reads + stats.environment_writes
        return (
            intertask_calls * self.intertask_call_overhead
            + stats.intertask_items * self.intertask_per_item
            + intratask_calls * self.intratask_call_overhead
            + stats.intratask_items * self.intratask_per_item
            + environment_calls * self.environment_call_overhead
            + stats.environment_items * self.environment_per_item
            + stats.selects * self.select_overhead
        )


@dataclass(frozen=True)
class SchedulingCosts:
    """Cycle costs of the execution framework itself."""

    context_switch: int = 260
    scheduler_decision: int = 30
    isr_dispatch: int = 45
    task_state_update: int = 4  # per state-variable update in the single task


@dataclass
class CostModel:
    """Combines the cycle cost tables with a compiler profile."""

    cycle_costs: CycleCosts = field(default_factory=CycleCosts)
    communication_costs: CommunicationCosts = field(default_factory=CommunicationCosts)
    scheduling_costs: SchedulingCosts = field(default_factory=SchedulingCosts)

    def execution_cycles(
        self,
        ops: OperationCounter,
        comm: CommunicationStats,
        *,
        profile: CompilerProfile,
        context_switches: int = 0,
        scheduler_decisions: int = 0,
        isr_dispatches: int = 0,
        state_updates: int = 0,
    ) -> float:
        """Total cycles of one execution under a compiler profile.

        Computation scales with the profile; communication primitives, RTOS
        overhead and ISR dispatch do not (they are part of the pre-compiled
        runtime, as in the paper's measurements).
        """
        computation = self.cycle_costs.computation_cycles(ops) * profile.computation_scale
        communication = self.communication_costs.cycles(comm)
        framework = (
            context_switches * self.scheduling_costs.context_switch
            + scheduler_decisions * self.scheduling_costs.scheduler_decision
            + isr_dispatches * self.scheduling_costs.isr_dispatch
            + state_updates * self.scheduling_costs.task_state_update
        )
        return computation + communication + framework


# ---------------------------------------------------------------------------
# Code size model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CodeSizeCosts:
    """Byte costs of code constructs (R3000-flavoured rough numbers)."""

    per_statement: int = 8
    per_operator: int = 4
    per_call: int = 12
    per_branch: int = 12
    per_loop: int = 16
    per_label: int = 4
    per_goto: int = 8
    per_switch_case: int = 12
    per_state_update: int = 8
    per_declaration: int = 4
    task_prologue: int = 64
    process_prologue: int = 96
    # communication primitives
    inlined_comm_site: int = 560
    called_comm_site: int = 28
    comm_function_body: int = 560  # shared body when not inlined
    intratask_comm_site: int = 20
    environment_comm_site: int = 36


@dataclass
class CodeSizeModel:
    """Estimates object code size in bytes from AST-level counts."""

    costs: CodeSizeCosts = field(default_factory=CodeSizeCosts)

    def scaled(self, size: float, profile: CompilerProfile) -> int:
        return int(round(size * profile.code_scale))

    def estimate(
        self,
        counts: Mapping[str, int],
        *,
        profile: Optional[CompilerProfile] = None,
    ) -> int:
        """Total bytes of the constructs in ``counts``.

        The code-size counterpart of :meth:`CostModel.execution_cycles`:
        ``counts`` maps :class:`CodeSizeCosts` field names (``per_statement``,
        ``per_goto``, ``task_prologue``, ...) to how many of that construct
        the generated code contains.  Unknown keys raise :class:`KeyError`
        rather than silently dropping a construct.  With ``profile`` the
        total is scaled like :meth:`scaled`; without it the raw ``pfc``-level
        byte count is returned.
        """
        valid = {f.name for f in dataclass_fields(self.costs)}
        total = 0.0
        for name, count in counts.items():
            if name not in valid:
                raise KeyError(
                    f"unknown code-size construct {name!r}; known: {sorted(valid)}"
                )
            total += getattr(self.costs, name) * count
        if profile is None:
            return int(round(total))
        return self.scaled(total, profile)
