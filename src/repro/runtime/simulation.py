"""The two execution substrates compared in the paper's experiments.

* :class:`MultiTaskSimulation` -- the baseline: one task per FlowC process,
  FIFO channels of a given size, a round-robin scheduler with context-switch
  costs (Section 8.2's "4 process system").
* :class:`SingleTaskSimulation` -- the synthesized implementation: one task
  per uncontrollable input executing the quasi-static schedule, intra-task
  channels turned into local buffers.

Both simulators execute the same FlowC code through the same interpreter, so
they produce identical output data; only the scheduling / communication
structure (and therefore the cost accounting) differs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.codegen.task import ExecutableTask
from repro.flowc.compiler import SelectCondition
from repro.flowc.interpreter import Environment, Interpreter, OperationCounter, WouldBlock
from repro.flowc.linker import LinkedSystem
from repro.flowc.netlist import PortRef
from repro.petrinet.net import PetriNet
from repro.runtime.channels import (
    ChannelBuffer,
    CommunicationStats,
    EnvironmentSink,
    EnvironmentSource,
    PortBinding,
)
from repro.runtime.cost_model import CompilerProfile, CostModel, PROFILES
from repro.runtime.rtos import RoundRobinScheduler, RtosCosts
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.schedule import Schedule


@dataclass
class SimulationOutputs:
    """Values written to the primary output ports during a run."""

    by_port: Dict[str, List[Any]] = field(default_factory=dict)

    def port(self, name: str) -> List[Any]:
        return self.by_port.get(name, [])

    def total_items(self) -> int:
        return sum(len(values) for values in self.by_port.values())


@dataclass
class SimulationResult:
    """Outcome of one simulation run, ready for cost evaluation."""

    implementation: str
    operations: OperationCounter
    communication: CommunicationStats
    outputs: SimulationOutputs
    context_switches: int = 0
    scheduler_decisions: int = 0
    isr_dispatches: int = 0
    state_updates: int = 0
    transitions_executed: int = 0
    events_served: int = 0
    channel_max_occupancy: Dict[str, int] = field(default_factory=dict)

    def cycles(self, profile: CompilerProfile | str, cost_model: Optional[CostModel] = None) -> float:
        """Clock cycles of this run under a compiler profile."""
        if isinstance(profile, str):
            profile = PROFILES[profile]
        model = cost_model or CostModel()
        return model.execution_cycles(
            self.operations,
            self.communication,
            profile=profile,
            context_switches=self.context_switches,
            scheduler_decisions=self.scheduler_decisions,
            isr_dispatches=self.isr_dispatches,
            state_updates=self.state_updates,
        )


# ---------------------------------------------------------------------------
# Baseline: one task per process under a round-robin scheduler
# ---------------------------------------------------------------------------


class _ProcessTask:
    """Executes one FlowC process directly over its compiled Petri net."""

    def __init__(
        self,
        name: str,
        system: LinkedSystem,
        binding: PortBinding,
        counter: OperationCounter,
    ):
        self.name = name
        self.system = system
        self.net: PetriNet = system.net
        self.binding = binding
        self.counter = counter
        self.environment = Environment(name)
        self.interpreter = Interpreter(self.environment, binding, counter=counter)
        self.current_place = system.initial_places[name]
        self.transitions_executed = 0
        # execute the hoisted declarations once (initialisation)
        for declaration in system.declarations.get(name, []):
            self.interpreter.execute(declaration)
        # port place名 -> FlowC port name for this process
        self._port_of_place: Dict[str, str] = {}
        for (process, port), place in system.port_place_of.items():
            if process == name:
                self._port_of_place[place] = port
        # control place -> successor transitions of this process; the net is
        # structurally frozen during simulation, so compute each list once
        # instead of querying the place adjacency on every executed step
        self._successors_of_place: Dict[str, List[str]] = {}

    def _process_successors(self, place: str) -> List[str]:
        cached = self._successors_of_place.get(place)
        if cached is None:
            cached = [
                t
                for t in sorted(self.net.postset_of_place(place))
                if self.net.transitions[t].process == self.name
            ]
            self._successors_of_place[place] = cached
        return cached

    # -- transition selection ------------------------------------------------
    def _candidate_transition(self) -> Optional[str]:
        """The next transition of this process, or None if blocked.

        Resolves data-dependent choices by evaluating the condition attached
        to the current control place; SELECT choices consult channel
        availability through the binding.
        """
        place_obj = self.net.places[self.current_place]
        successors = self._process_successors(self.current_place)
        if not successors:
            return None
        if len(successors) == 1:
            return successors[0]
        condition = place_obj.condition
        guards = {t: self.net.transitions[t].guard for t in successors}
        if condition is None:
            return successors[0]
        if isinstance(condition, SelectCondition):
            try:
                index = self.interpreter.evaluate(condition.select)
            except WouldBlock:
                return None
            for transition, guard in guards.items():
                if guard == index:
                    return transition
            return None
        value = self.interpreter.evaluate(condition)
        if set(guards.values()) <= {True, False, None}:
            wanted = bool(value)
            for transition, guard in guards.items():
                if guard == wanted:
                    return transition
            return None
        for transition, guard in guards.items():
            if guard == value:
                return transition
        for transition, guard in guards.items():
            if guard == "default":
                return transition
        return None

    def _transition_ready(self, transition: str) -> bool:
        """Blocking semantics: all port reads/writes of the transition must be
        able to proceed."""
        for place, weight in self.net.pre[transition].items():
            if not self.net.places[place].is_port:
                continue
            port = self._port_of_place.get(place)
            if port is None:
                return False
            if not self.binding.can_read(port, weight):
                return False
        for place, weight in self.net.post[transition].items():
            if not self.net.places[place].is_port:
                continue
            port = self._port_of_place.get(place)
            if port is None:
                continue
            if not self.binding.can_write(port, weight):
                return False
        return True

    def _next_control_place(self, transition: str) -> str:
        for place in self.net.post[transition]:
            obj = self.net.places[place]
            if not obj.is_port and obj.process == self.name:
                return place
        return self.current_place

    # -- RunnableTask interface -------------------------------------------------
    def can_run(self) -> bool:
        transition = self._candidate_transition()
        if transition is None:
            return False
        return self._transition_ready(transition)

    def run(self, quantum: int) -> int:
        steps = 0
        while steps < quantum:
            transition = self._candidate_transition()
            if transition is None:
                break
            if not self._transition_ready(transition):
                break
            code = self.net.transitions[transition].code
            if code:
                self.interpreter.run(list(code))
            self.current_place = self._next_control_place(transition)
            self.transitions_executed += 1
            steps += 1
        return steps


class MultiTaskSimulation:
    """Baseline implementation: each process is a task over FIFO channels."""

    def __init__(
        self,
        system: LinkedSystem,
        *,
        channel_capacity: int | Mapping[str, int] | None = None,
        stimulus: Optional[Mapping[str, Sequence[Any]]] = None,
    ):
        self.system = system
        self.counter = OperationCounter()
        self.stats = CommunicationStats()
        self.channels: Dict[str, ChannelBuffer] = {}
        self.sources: Dict[str, EnvironmentSource] = {}
        self.sinks: Dict[str, EnvironmentSink] = {}
        self._build_channels(channel_capacity)
        self._bindings = self._build_bindings()
        self.tasks = [
            _ProcessTask(name, system, self._bindings[name], self.counter)
            for name in system.network.processes
        ]
        if stimulus:
            for port, values in stimulus.items():
                self.offer_stimulus(port, values)

    # -- construction ---------------------------------------------------------
    def _build_channels(self, capacity_spec: int | Mapping[str, int] | None) -> None:
        for channel in self.system.network.channels:
            if isinstance(capacity_spec, Mapping):
                capacity = capacity_spec.get(channel.name, channel.bound)
            elif isinstance(capacity_spec, int):
                capacity = capacity_spec
            else:
                capacity = channel.bound
            self.channels[channel.name] = ChannelBuffer(channel.name, capacity)
        for ref in self.system.network.environment_inputs:
            self.sources[ref.port] = EnvironmentSource(ref.port)
        for ref in self.system.network.environment_outputs:
            self.sinks[ref.port] = EnvironmentSink(ref.port)

    def _build_bindings(self) -> Dict[str, PortBinding]:
        bindings: Dict[str, PortBinding] = {}
        for name in self.system.network.processes:
            bindings[name] = PortBinding(stats=self.stats)
        for channel in self.system.network.channels:
            buffer = self.channels[channel.name]
            bindings[channel.source.process].bind_writer(channel.source.port, buffer)
            bindings[channel.target.process].bind_reader(channel.target.port, buffer)
        for ref in self.system.network.environment_inputs:
            bindings[ref.process].bind_source(ref.port, self.sources[ref.port])
        for ref in self.system.network.environment_outputs:
            bindings[ref.process].bind_sink(ref.port, self.sinks[ref.port])
        return bindings

    # -- stimulus / execution ----------------------------------------------------
    def offer_stimulus(self, port: str, values: Sequence[Any]) -> None:
        if port not in self.sources:
            raise KeyError(f"unknown environment input port {port!r}")
        self.sources[port].offer_many(values)

    def replace_sink(self, port: str, sink: EnvironmentSink) -> None:
        """Swap the sink of one environment output (e.g. for a TracingSink)."""
        if port not in self.sinks:
            raise KeyError(f"unknown environment output port {port!r}")
        self.sinks[port] = sink
        for binding in self._bindings.values():
            if port in binding.sinks:
                binding.bind_sink(port, sink)

    def run(self, *, max_rounds: int = 1_000_000) -> SimulationResult:
        scheduler = RoundRobinScheduler(self.tasks)
        costs: RtosCosts = scheduler.run_until_quiescent(max_rounds=max_rounds)
        outputs = SimulationOutputs(
            by_port={name: list(sink.values) for name, sink in self.sinks.items()}
        )
        return SimulationResult(
            implementation="multi-task",
            operations=self.counter,
            communication=self.stats,
            outputs=outputs,
            context_switches=costs.context_switches,
            scheduler_decisions=costs.scheduler_decisions,
            transitions_executed=sum(task.transitions_executed for task in self.tasks),
            events_served=sum(source.total_consumed for source in self.sources.values()),
            channel_max_occupancy={
                name: channel.max_occupancy for name, channel in self.channels.items()
            },
        )


# ---------------------------------------------------------------------------
# Synthesized single task
# ---------------------------------------------------------------------------


class SingleTaskSimulation:
    """The synthesized implementation: one task per uncontrollable input."""

    def __init__(
        self,
        system: LinkedSystem,
        *,
        schedules: Optional[Mapping[str, Schedule]] = None,
        scheduler_options: Optional[SchedulerOptions] = None,
    ):
        self.system = system
        self.counter = OperationCounter()
        self.stats = CommunicationStats()
        self.binding = PortBinding(stats=self.stats)
        self.sources: Dict[str, EnvironmentSource] = {}
        self.sinks: Dict[str, EnvironmentSink] = {}
        self.channels: Dict[str, ChannelBuffer] = {}
        self._build_binding()
        self.schedules: Dict[str, Schedule] = dict(schedules) if schedules else {}
        if not self.schedules:
            options = scheduler_options or SchedulerOptions()
            for source in system.net.uncontrollable_sources():
                result = find_schedule(system.net, source, options=options, raise_on_failure=True)
                assert result.schedule is not None
                self.schedules[source] = result.schedule
        environments: Dict[str, Environment] = {}
        self.tasks: Dict[str, ExecutableTask] = {}
        for source, schedule in self.schedules.items():
            self.tasks[source] = ExecutableTask(
                system,
                schedule,
                self.binding,
                environments=environments,
                counter=self.counter,
            )
        # map environment input port name -> its source transition
        self._task_of_port: Dict[str, str] = {}
        for ref, transition in system.environment_transitions.items():
            if transition in self.tasks:
                self._task_of_port[ref.port] = transition

    def _build_binding(self) -> None:
        # intra-task channels become local circular buffers (Section 6.3)
        for channel in self.system.network.channels:
            buffer = ChannelBuffer(channel.name, None)
            self.channels[channel.name] = buffer
            self.binding.bind_writer(channel.source.port, buffer, intratask=True)
            self.binding.bind_reader(channel.target.port, buffer, intratask=True)
        for ref in self.system.network.environment_inputs:
            source = EnvironmentSource(ref.port)
            self.sources[ref.port] = source
            self.binding.bind_source(ref.port, source)
        for ref in self.system.network.environment_outputs:
            sink = EnvironmentSink(ref.port)
            self.sinks[ref.port] = sink
            self.binding.bind_sink(ref.port, sink)

    def replace_sink(self, port: str, sink: EnvironmentSink) -> None:
        """Swap the sink of one environment output (e.g. for a TracingSink)."""
        if port not in self.sinks:
            raise KeyError(f"unknown environment output port {port!r}")
        self.sinks[port] = sink
        self.binding.bind_sink(port, sink)

    # -- execution ---------------------------------------------------------------
    def run_events(self, port: str, values: Sequence[Any]) -> None:
        """Serve a sequence of occurrences of one uncontrollable input."""
        transition = self._task_of_port.get(port)
        if transition is None:
            raise KeyError(f"no synthesized task serves input port {port!r}")
        task = self.tasks[transition]
        for value in values:
            task.react(value)

    def run(self, stimulus: Mapping[str, Sequence[Any]]) -> SimulationResult:
        for port, values in stimulus.items():
            self.run_events(port, values)
        return self.result()

    def result(self) -> SimulationResult:
        outputs = SimulationOutputs(
            by_port={name: list(sink.values) for name, sink in self.sinks.items()}
        )
        events = sum(task.stats.events_served for task in self.tasks.values())
        return SimulationResult(
            implementation="single-task",
            operations=self.counter,
            communication=self.stats,
            outputs=outputs,
            isr_dispatches=events,
            state_updates=sum(task.stats.state_updates for task in self.tasks.values()),
            transitions_executed=sum(
                task.stats.transitions_executed for task in self.tasks.values()
            ),
            events_served=events,
            channel_max_occupancy={
                name: channel.max_occupancy for name, channel in self.channels.items()
            },
        )

    def channel_bounds(self) -> Dict[str, int]:
        """Channel sizes determined by the schedules (Proposition 4.2)."""
        bounds: Dict[str, int] = {}
        for schedule in self.schedules.values():
            for place, bound in schedule.channel_bounds().items():
                channel = self.system.channel_of_place(place)
                if channel is not None:
                    bounds[channel] = max(bounds.get(channel, 0), bound)
        return bounds
