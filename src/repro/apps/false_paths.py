"""The false-path example of Section 7.2.

Two processes exchange 10 items on channel ``c0`` and 2 items on ``c1``
using fixed-bound loops.  The specification is perfectly schedulable -- both
loops always execute the same number of iterations -- but a compiler that
turns every loop into a data-dependent choice loses that correlation: the
Petri net then contains *false paths* (producer keeps writing while the
consumer stopped reading) and the conservative scheduler rejects it.

The paper's remedy is a SELECT-based rewrite with ``done`` channels that lets
the scheduler prove the overflowing path false.  Our compiler additionally
unrolls constant-bound ``for`` loops, which resolves the example directly; to
reproduce the paper's negative result the same source can be compiled with
unrolling disabled (``max_unroll=0``) via :func:`link_without_unrolling`.
"""

from __future__ import annotations

from typing import Dict

from repro.flowc.compiler import compile_process
from repro.flowc.linker import LinkedSystem, link
from repro.flowc.netlist import Network


# --- fixed-bound loops (the Section 7.2 processes A and B) ------------------
CONSTANT_LOOP_SOURCE = """
PROCESS prodA (In DPORT start, In DPORT c1, Out DPORT c0) {
    int i, x, buf1[10], buf2[2];
    while (1) {
        READ_DATA(start, &x, 1);
        for (i = 0; i < 10; i++)
            WRITE_DATA(c0, buf1[i], 1);
        for (i = 0; i < 2; i++)
            READ_DATA(c1, &buf2[i], 1);
    }
}

PROCESS consB (In DPORT c0, Out DPORT c1, Out DPORT out) {
    int i, buf3[10], buf4[2];
    while (1) {
        for (i = 0; i < 10; i++)
            READ_DATA(c0, &buf3[i], 1);
        for (i = 0; i < 2; i++)
            WRITE_DATA(c1, buf4[i], 1);
        WRITE_DATA(out, buf3, 10);
    }
}
"""


# --- SELECT rewrite with done channels (Section 7.2) -------------------------
SELECT_REWRITE_SOURCE = """
PROCESS prodA (In DPORT start, In DPORT c1, In DPORT done1, Out DPORT c0, Out DPORT done0) {
    int i, d, done, x, buf1[10], buf2[2];
    while (1) {
        READ_DATA(start, &x, 1);
        for (i = 0; i < 10; i++)
            WRITE_DATA(c0, buf1[i], 1);
        WRITE_DATA(done0, 0, 1);
        done = 0;
        i = 0;
        while (!done) {
            switch (SELECT(c1, 1, done1, 1)) {
                case 0:
                    READ_DATA(c1, &buf2[i], 1);
                    i++;
                    break;
                case 1:
                    READ_DATA(done1, &d, 1);
                    done = 1;
                    break;
            }
        }
    }
}

PROCESS consB (In DPORT c0, In DPORT done0, Out DPORT c1, Out DPORT done1, Out DPORT out) {
    int i, d, done, buf3[10], buf4[2];
    while (1) {
        done = 0;
        i = 0;
        while (!done) {
            switch (SELECT(c0, 1, done0, 1)) {
                case 0:
                    READ_DATA(c0, &buf3[i], 1);
                    i++;
                    break;
                case 1:
                    READ_DATA(done0, &d, 1);
                    done = 1;
                    break;
            }
        }
        for (i = 0; i < 2; i++)
            WRITE_DATA(c1, buf4[i], 1);
        WRITE_DATA(done1, 0, 1);
        WRITE_DATA(out, buf3, 10);
    }
}
"""


def build_false_path_network(*, name: str = "false_paths") -> Network:
    """The fixed-bound loop network of Section 7.2 (processes A and B)."""
    network = Network(name=name)
    network.add_processes_from_source(CONSTANT_LOOP_SOURCE)
    network.connect("prodA", "c0", "consB", "c0", name="c0")
    network.connect("consB", "c1", "prodA", "c1", name="c1")
    network.declare_input("prodA", "start", controllable=False)
    network.declare_output("consB", "out")
    return network


# Backwards-compatible alias used by examples
build_constant_loop_network = build_false_path_network


def build_select_rewrite_network(*, name: str = "select_rewrite") -> Network:
    """The SELECT rewrite of Section 7.2 with done channels."""
    network = Network(name=name)
    network.add_processes_from_source(SELECT_REWRITE_SOURCE)
    network.connect("prodA", "c0", "consB", "c0", name="c0")
    network.connect("prodA", "done0", "consB", "done0", name="done0")
    network.connect("consB", "c1", "prodA", "c1", name="c1")
    network.connect("consB", "done1", "prodA", "done1", name="done1")
    network.declare_input("prodA", "start", controllable=False)
    network.declare_output("consB", "out")
    return network


def link_with_unrolling(network: Network) -> LinkedSystem:
    """Link with the default compiler (constant loops unrolled): schedulable."""
    return link(network)


def link_without_unrolling(network: Network) -> LinkedSystem:
    """Link with loop unrolling disabled, reproducing the conservative
    compiler of the paper for which the fixed-bound loops become
    data-dependent choices and the net is rejected as un-schedulable."""
    compiled: Dict[str, object] = {
        name: compile_process(process, max_unroll=0)
        for name, process in network.processes.items()
    }
    return link(network, compiled=compiled)  # type: ignore[arg-type]
