"""The industrial video application of Section 8 (the "PFC" experiment).

Four FlowC processes (Figure 18):

* ``producer`` generates image data, one line of pixels per port operation;
* ``filter`` processes pixels one by one using a per-frame coefficient;
* ``consumer`` re-assembles lines, emits them to the display and acknowledges
  each frame;
* ``controller`` governs the system; it is triggered by ``init``, the only
  uncontrollable port, requests a frame from the producer and supplies the
  filter coefficient.

The system exhibits multiple data rates (pixels are moved one by one between
filter stages but a line at a time elsewhere) and a mix of hard (data path)
and soft (control path) behaviour, matching the description in Section 8.2.
The original sources are proprietary; these processes are reconstructed from
the paper's description with simple pixel-generation / filtering / checksum
algorithms, which is also what the paper did ("very simple algorithms have
been used instead").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.flowc.linker import LinkedSystem, link
from repro.flowc.netlist import Network


@dataclass(frozen=True)
class VideoAppConfig:
    """Size parameters of the video application."""

    lines_per_frame: int = 10
    pixels_per_line: int = 10

    @property
    def pixels_per_frame(self) -> int:
        return self.lines_per_frame * self.pixels_per_line


_TEMPLATE = """
PROCESS controller (In DPORT init, In DPORT ack, Out DPORT req, Out DPORT coeff) {{
    int cmd, status, frame, c;
    frame = 0;
    while (1) {{
        READ_DATA(init, &cmd, 1);
        c = (frame % 7) + 1;
        if (cmd > 0)
            c = c + 1;
        WRITE_DATA(coeff, c, 1);
        WRITE_DATA(req, frame, 1);
        READ_DATA(ack, &status, 1);
        frame = frame + 1;
    }}
}}

PROCESS producer (In DPORT req, Out DPORT pix) {{
    int r, line, p, value, buf[{pixels}];
    while (1) {{
        READ_DATA(req, &r, 1);
        for (line = 0; line < {lines}; line++) {{
            p = 0;
            while (p < {pixels}) {{
                value = (r * 31 + line * {pixels} + p) % 256;
                buf[p] = value;
                p++;
            }}
            WRITE_DATA(pix, buf, {pixels});
        }}
    }}
}}

PROCESS filter (In DPORT pix, In DPORT coeff, Out DPORT outpix) {{
    int c, line, p, value, result;
    while (1) {{
        READ_DATA(coeff, &c, 1);
        for (line = 0; line < {lines}; line++) {{
            for (p = 0; p < {pixels}; p++) {{
                READ_DATA(pix, &value, 1);
                result = (value * c) % 256;
                if (result < 0)
                    result = 0;
                WRITE_DATA(outpix, result, 1);
            }}
        }}
    }}
}}

PROCESS consumer (In DPORT inpix, Out DPORT display, Out DPORT ack) {{
    int line, p, checksum, buf[{pixels}];
    while (1) {{
        checksum = 0;
        for (line = 0; line < {lines}; line++) {{
            READ_DATA(inpix, buf, {pixels});
            for (p = 0; p < {pixels}; p++)
                checksum = (checksum + buf[p]) % 65536;
            WRITE_DATA(display, buf, {pixels});
        }}
        WRITE_DATA(ack, checksum, 1);
    }}
}}
"""


def video_flowc_source(config: VideoAppConfig = VideoAppConfig()) -> str:
    """The FlowC source of the four processes for a given frame geometry."""
    return _TEMPLATE.format(lines=config.lines_per_frame, pixels=config.pixels_per_line)


def build_video_network(
    config: VideoAppConfig = VideoAppConfig(),
    *,
    channel_bounds: Dict[str, int] | None = None,
    name: str = "pfc",
) -> Network:
    """Build the four-process network of Figure 18.

    ``channel_bounds`` optionally sets per-channel bounds (used by the
    baseline experiments that vary FIFO sizes); the synthesized single task
    determines its own bounds from the schedule.
    """
    bounds = channel_bounds or {}
    network = Network(name=name)
    network.add_processes_from_source(video_flowc_source(config))
    network.connect("controller", "req", "producer", "req", name="Req", bound=bounds.get("Req"))
    network.connect("controller", "coeff", "filter", "coeff", name="Coeff", bound=bounds.get("Coeff"))
    network.connect("producer", "pix", "filter", "pix", name="Pixels1", bound=bounds.get("Pixels1"))
    network.connect("filter", "outpix", "consumer", "inpix", name="Pixels2", bound=bounds.get("Pixels2"))
    network.connect("consumer", "ack", "controller", "ack", name="Ack", bound=bounds.get("Ack"))
    network.declare_input("controller", "init", controllable=False)
    network.declare_output("consumer", "display", rate=config.pixels_per_line)
    return network


def build_video_system(
    config: VideoAppConfig = VideoAppConfig(),
    *,
    channel_bounds: Dict[str, int] | None = None,
) -> LinkedSystem:
    """Compile and link the video application into a single Petri net."""
    return link(build_video_network(config, channel_bounds=channel_bounds))


def reference_frame_checksum(config: VideoAppConfig, frame_index: int, coeff: int) -> int:
    """Pure-Python reference for the checksum the consumer acknowledges."""
    checksum = 0
    for line in range(config.lines_per_frame):
        for p in range(config.pixels_per_line):
            value = (frame_index * 31 + line * config.pixels_per_line + p) % 256
            result = (value * coeff) % 256
            if result < 0:
                result = 0
            checksum = (checksum + result) % 65536
    return checksum


def reference_coefficient(frame_index: int, cmd: int) -> int:
    """Coefficient the controller computes for a given frame and command."""
    coeff = (frame_index % 7) + 1
    if cmd > 0:
        coeff += 1
    return coeff
