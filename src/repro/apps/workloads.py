"""Synthetic workload generators for property tests and scaling benchmarks.

These builders produce parametric FlowC networks and Petri nets whose
schedulability properties are known by construction, so property-based tests
can exercise the compiler / scheduler / code generator over a family of inputs
rather than a handful of hand-picked examples.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.flowc.netlist import Network
from repro.petrinet.net import PetriNet, SourceKind, merge_nets


def producer_consumer_source(items: int, *, burst: int = 1) -> str:
    """A two-process producer/consumer system moving ``items`` values per event.

    The producer sends ``items`` values in bursts of ``burst``; the consumer
    reads them one at a time and emits a checksum.
    """
    if items % burst != 0:
        raise ValueError("items must be a multiple of burst")
    bursts = items // burst
    return f"""
PROCESS producer (In DPORT trigger, Out DPORT data) {{
    int t, i, j, buf[{burst}];
    while (1) {{
        READ_DATA(trigger, &t, 1);
        for (i = 0; i < {bursts}; i++) {{
            j = 0;
            while (j < {burst}) {{
                buf[j] = (t + i * {burst} + j) % 97;
                j++;
            }}
            WRITE_DATA(data, buf, {burst});
        }}
    }}
}}

PROCESS consumer (In DPORT data, Out DPORT sum) {{
    int i, v, acc;
    while (1) {{
        acc = 0;
        for (i = 0; i < {items}; i++) {{
            READ_DATA(data, &v, 1);
            acc = (acc + v) % 9973;
        }}
        WRITE_DATA(sum, acc, 1);
    }}
}}
"""


def build_producer_consumer_network(items: int = 8, *, burst: int = 1) -> Network:
    """Producer/consumer network with an uncontrollable trigger."""
    network = Network(name=f"prodcons_{items}_{burst}")
    network.add_processes_from_source(producer_consumer_source(items, burst=burst))
    network.connect("producer", "data", "consumer", "data", name="data")
    network.declare_input("producer", "trigger", controllable=False)
    network.declare_output("consumer", "sum")
    return network


def pipeline_source(stages: int, items: int) -> str:
    """A linear pipeline of ``stages`` identical transform processes."""
    processes: List[str] = [
        f"""
PROCESS stage0 (In DPORT trigger, Out DPORT out0) {{
    int t, i;
    while (1) {{
        READ_DATA(trigger, &t, 1);
        for (i = 0; i < {items}; i++)
            WRITE_DATA(out0, (t + i) % 251, 1);
    }}
}}
"""
    ]
    for stage in range(1, stages):
        processes.append(
            f"""
PROCESS stage{stage} (In DPORT in{stage}, Out DPORT out{stage}) {{
    int i, v;
    while (1) {{
        for (i = 0; i < {items}; i++) {{
            READ_DATA(in{stage}, &v, 1);
            v = (v * 3 + {stage}) % 251;
            WRITE_DATA(out{stage}, v, 1);
        }}
    }}
}}
"""
        )
    return "\n".join(processes)


def build_pipeline_network(stages: int = 3, items: int = 4) -> Network:
    """Linear pipeline network triggered by an uncontrollable input."""
    if stages < 2:
        raise ValueError("a pipeline needs at least two stages")
    network = Network(name=f"pipeline_{stages}_{items}")
    network.add_processes_from_source(pipeline_source(stages, items))
    for stage in range(stages - 1):
        network.connect(
            f"stage{stage}", f"out{stage}", f"stage{stage + 1}", f"in{stage + 1}", name=f"ch{stage}"
        )
    network.declare_input("stage0", "trigger", controllable=False)
    network.declare_output(f"stage{stages - 1}", f"out{stages - 1}")
    return network


def random_marked_graph(
    transitions: int,
    *,
    rng: Optional[random.Random] = None,
    seed: int = 0,
    max_weight: int = 2,
    prefix: str = "",
    label: Optional[str] = None,
) -> PetriNet:
    """A random marked-graph ring driven by an uncontrollable source.

    The net has a ring of ``transitions`` choice-free transitions whose single
    program-counter token sits at the end of the ring, plus an uncontrollable
    source ``src`` feeding the first ring transition (one ring rotation per
    environment event) and random extra edges carrying one token each.  Marked
    graphs are the class for which scheduling is exactly solvable via
    T-invariants (Section 4.4); the generator is used by property tests of the
    invariant machinery and the scheduler.

    Randomness comes from the explicit ``rng`` (a :class:`random.Random`)
    when supplied; ``seed`` is only a convenience for constructing one.  The
    module-global ``random`` state is never touched, so generated nets are
    reproducible regardless of surrounding code.  ``prefix`` namespaces every
    node name (used to embed several rings in one net).
    """
    if transitions < 2:
        raise ValueError("need at least two transitions")
    if rng is None:
        rng = random.Random(seed)
        suffix = str(seed)
    else:
        suffix = "rng"
    net = PetriNet(name=label or f"marked_graph_{transitions}_{suffix}")
    names = [f"{prefix}t{i}" for i in range(transitions)]
    net.add_transition(f"{prefix}src", source_kind=SourceKind.UNCONTROLLABLE)
    for name in names:
        net.add_transition(name)
    net.add_place(f"{prefix}p_src")
    net.add_arc(f"{prefix}src", f"{prefix}p_src")
    net.add_arc(f"{prefix}p_src", names[0])
    # a ring of transitions; its token parks at the last place so t0 only
    # needs the source token to start a rotation
    for i in range(transitions):
        place = f"{prefix}p_ring_{i}"
        tokens = 1 if i == transitions - 1 else 0
        source = names[i]
        target = names[(i + 1) % transitions]
        net.add_place(place, tokens)
        net.add_arc(source, place)
        net.add_arc(place, target)
    # extra random forward edges (with a token so they cannot deadlock the ring)
    extra_edges = rng.randint(0, transitions)
    for j in range(extra_edges):
        a = rng.randrange(transitions)
        b = rng.randrange(transitions)
        if a == b:
            continue
        place = f"{prefix}p_extra_{j}"
        net.add_place(place, 1)
        net.add_arc(names[a], place)
        net.add_arc(place, names[b])
    return net


def random_choice_net(
    branch_length: int = 3,
    *,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> PetriNet:
    """A data-dependent choice diamond feeding a consumer chain.

    An uncontrollable ``src`` marks a choice place whose two successor
    branches form one *equal conflict set* (identical presets, so the
    environment resolves the branch): each branch walks a random-length
    transition chain, emits a random-but-branch-independent number of tokens
    into a channel, and returns the chooser's program counter.  A consumer
    drains the channel one token (or, sometimes, two) at a time.

    The family exercises exactly the scheduler paths the single-ECS marked
    graphs cannot: multi-transition ECSs (EP_ECS must find entering points
    through *both* branches), nodes with several enabled ECSs (the one-step
    lookahead and its batched frontier form), weighted arcs, and -- when the
    drawn emission/consumption counts do not divide evenly -- schedules that
    fail, which the differential harness pins too.  Randomness follows the
    same explicit-``rng`` contract as :func:`random_marked_graph`.
    """
    if branch_length < 1:
        raise ValueError("branches need at least one transition")
    if rng is None:
        rng = random.Random(seed)
        suffix = str(seed)
    else:
        suffix = "rng"
    net = PetriNet(name=f"choice_net_{branch_length}_{suffix}")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_place("p_src")
    net.add_arc("src", "p_src")
    net.add_place("p_pc", 1)
    net.add_place("ch")
    emits = rng.randint(1, 2)
    # mostly a unit read; sometimes a matching burst read, rarely an
    # oversized one (emission and consumption then disagree -> harder or
    # unschedulable searches, deliberately included)
    consume_weight = rng.choice((1, 1, 1, emits, 3))
    for branch in (0, 1):
        length = rng.randint(1, branch_length)
        previous: Optional[str] = None
        for step in range(length):
            transition = f"b{branch}_t{step}"
            net.add_transition(transition, process="chooser")
            if step == 0:
                net.add_arc("p_src", transition)
                net.add_arc("p_pc", transition)
            else:
                assert previous is not None
                net.add_arc(previous, transition)
            if step == length - 1:
                net.add_arc(transition, "p_pc")
                net.add_arc(transition, "ch", emits)
            else:
                place = f"b{branch}_p{step}"
                net.add_place(place)
                net.add_arc(transition, place)
                previous = place
    net.add_place("p_cons_pc", 1)
    net.add_transition("cons", process="consumer")
    net.add_arc("ch", "cons", consume_weight)
    net.add_arc("p_cons_pc", "cons")
    net.add_arc("cons", "p_cons_pc")
    return net


def random_multi_source_net(
    sources: int,
    transitions: int,
    *,
    rng: Optional[random.Random] = None,
    seed: int = 0,
) -> PetriNet:
    """Several disjoint marked-graph rings, one uncontrollable source each.

    Every ring is independently single-source schedulable (it is a strongly
    connected marked graph), so the net has exactly ``sources`` uncontrollable
    sources (``r0.src`` .. ``r{sources-1}.src``) whose EP searches share no
    places -- the shape the parallel scheduler fans out over.  Ring sizes are
    drawn from the shared ``rng`` so the per-source searches differ in cost.
    """
    if sources < 1:
        raise ValueError("need at least one source")
    if rng is None:
        rng = random.Random(seed)
        suffix = str(seed)
    else:
        suffix = "rng"
    rings = []
    for index in range(sources):
        size = max(2, transitions + rng.randint(-1, 1))
        rings.append(
            random_marked_graph(
                size,
                rng=rng,
                prefix=f"r{index}.",
                label=f"ring{index}",
            )
        )
    return merge_nets(rings, name=f"multi_source_{sources}_{transitions}_{suffix}")


# ---------------------------------------------------------------------------
# determinism contract
# ---------------------------------------------------------------------------

#: Every generator family of this module under a uniform ``seed -> PetriNet``
#: signature.  The registry is the module's determinism contract: same seed,
#: same bytes, in any process.  All randomness flows through an explicit
#: ``random.Random(seed)`` and nothing depends on dict/set iteration order or
#: on ``PYTHONHASHSEED``; ``tests/test_generator_determinism.py`` pins this
#: by comparing :func:`generator_digest` across two fresh subprocesses with
#: different hash seeds.
GENERATORS = {
    "producer_consumer": lambda seed: _linked_net(
        build_producer_consumer_network(4 + 2 * (seed % 3), burst=1 + seed % 2)
    ),
    "pipeline": lambda seed: _linked_net(
        build_pipeline_network(2 + seed % 3, 1 + seed % 4)
    ),
    "marked_graph": lambda seed: random_marked_graph(4 + seed % 4, seed=seed),
    "choice": lambda seed: random_choice_net(2 + seed % 3, seed=seed),
    "multi_source": lambda seed: random_multi_source_net(
        2 + seed % 2, 3 + seed % 2, seed=seed
    ),
}


def _linked_net(network: Network) -> PetriNet:
    from repro.flowc.linker import link

    return link(network).net


def generator_digest(name: str, seed: int) -> str:
    """Structural fingerprint of one registered generator's output.

    The byte string two processes must agree on for the determinism test;
    covers everything the scheduler reads (places, arcs, weights, markings,
    source kinds, bounds).
    """
    from repro.petrinet.fingerprint import structural_fingerprint

    if name not in GENERATORS:
        raise KeyError(f"unknown generator {name!r} (have {sorted(GENERATORS)})")
    return structural_fingerprint(GENERATORS[name](seed))
