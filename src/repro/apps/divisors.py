"""The divisors example of Figure 1.

The process reads a number from port ``in``, computes all its divisors,
writes the greatest one to ``max`` and every divisor to ``all``.  It is the
paper's running example for compilation (Figure 3) and a convenient system
for end-to-end tests: the environment port ``in`` is uncontrollable, ``max``
and ``all`` are primary outputs.
"""

from __future__ import annotations

from typing import Optional

from repro.flowc.linker import LinkedSystem, link
from repro.flowc.netlist import Network


DIVISORS_SOURCE = """
PROCESS divisors (In DPORT in, Out DPORT max, Out DPORT all) {
    int n, i;
    while (1) {
        READ_DATA(in, &n, 1);
        i = n / 2;
        while (n % i != 0)
            i--;
        WRITE_DATA(max, i, 1);
        WRITE_DATA(all, i, 1);
        while (i > 1) {
            i--;
            if (n % i == 0)
                WRITE_DATA(all, i, 1);
        }
    }
}
"""


def build_divisors_network(*, name: str = "divisors_system") -> Network:
    """The one-process network of Figure 1 with its environment ports."""
    network = Network(name=name)
    network.add_processes_from_source(DIVISORS_SOURCE)
    network.declare_input("divisors", "in", controllable=False)
    network.declare_output("divisors", "max")
    network.declare_output("divisors", "all")
    return network


def build_divisors_system(*, simplify: bool = True) -> LinkedSystem:
    """Compile and link the divisors network into a single Petri net."""
    return link(build_divisors_network(), simplify=simplify)


def reference_divisors(n: int) -> list[int]:
    """Pure-Python reference: greatest divisor first, then all divisors < n
    in decreasing order (the order the process emits them on ``all``)."""
    if n < 2:
        return []
    divisors = [d for d in range(n // 2, 0, -1) if n % d == 0]
    return divisors
