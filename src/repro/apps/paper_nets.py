"""Hand-built Petri nets reproducing the figures of the paper.

These small nets exercise the scheduling machinery exactly as the paper's
running examples do and are used throughout the test-suite:

* Figure 4(a): a net with two uncontrollable sources that both admit SS
  schedules; Figure 4(b): a net admitting only a multiple-source schedule.
* Figure 5: two non-interfering SS schedules.
* Figure 6: the same net with weights 2 on ``c``/``f`` arcs, whose SS
  schedules interfere.
* Figure 7: the divider/multiplier net parametrised by ``k`` where any fixed
  place bound fails but the irrelevance criterion succeeds.
* Figure 8: the three-place net used to illustrate entering points and the
  EP algorithm walk-through of Section 5.3.
"""

from __future__ import annotations

from repro.petrinet.net import PetriNet, SourceKind


def figure_4a() -> PetriNet:
    """Two uncontrollable sources, each with an SS schedule.

    ``a`` feeds ``p1`` (weight 2 consumed by ``c``); ``b`` feeds ``p2``
    consumed by ``c`` together with ``p1``... The paper's figure is small and
    slightly stylised; we reproduce its essential behaviour: ``a`` must fire
    twice before ``c`` can consume, ``b`` is served by a single firing of
    ``c`` -- wait, the published figure shows SSS(a) needing two firings of
    ``a`` before ``c`` and SSS(b) a single cycle through ``c``.  Here:

    * ``a`` -> p1 (weight 1), ``c`` consumes 2 tokens from p1;
    * ``b`` -> p2 (weight 1), ``c`` also consumes 1 token from p2.

    is **not** single-source schedulable for either, so instead we keep the
    structure actually drawn in Figure 4(a): two independent sources each with
    a private consumer chain sharing no places.
    """
    net = PetriNet(name="figure4a")
    net.add_place("p1")
    net.add_place("p2")
    net.add_transition("a", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("b", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("c")
    net.add_transition("d")
    net.add_arc("a", "p1", 2)
    net.add_arc("p1", "c", 2)
    net.add_arc("b", "p2")
    net.add_arc("p2", "d")
    return net


def figure_4b() -> PetriNet:
    """A net with no SS schedules when both ``a`` and ``b`` are uncontrollable.

    ``c`` needs a token from ``p1`` (fed by ``a``) and one from ``p2`` (fed by
    ``b``): serving either source alone cannot return to the empty marking.
    """
    net = PetriNet(name="figure4b")
    net.add_place("p1")
    net.add_place("p2")
    net.add_transition("a", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("b", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("c")
    net.add_arc("a", "p1")
    net.add_arc("b", "p2")
    net.add_arc("p1", "c")
    net.add_arc("p2", "c")
    return net


def figure_5() -> PetriNet:
    """Figure 5: two uncontrollable sources with non-interfering SS schedules.

    Structure: ``a -> p1 -> b -> p2 -> c -> p0`` and
    ``d -> p3 -> e -> p4 -> f -> p0`` with ``p0`` initially marked and
    consumed by both ``b`` and ``e`` -- the published net shares place ``p0``
    between the two chains, and each schedule returns ``p0`` to its initial
    count before finishing, which is why the schedules do not interfere.
    """
    net = PetriNet(name="figure5")
    net.add_place("p0", 1)
    net.add_place("p1")
    net.add_place("p2")
    net.add_place("p3")
    net.add_place("p4")
    net.add_transition("a", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("b")
    net.add_transition("c")
    net.add_transition("d", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("e")
    net.add_transition("f")
    net.add_arc("a", "p1")
    net.add_arc("p1", "b")
    net.add_arc("p0", "b")
    net.add_arc("b", "p2")
    net.add_arc("p2", "c")
    net.add_arc("c", "p0")
    net.add_arc("d", "p3")
    net.add_arc("p3", "e")
    net.add_arc("p0", "e")
    net.add_arc("e", "p4")
    net.add_arc("p4", "f")
    net.add_arc("f", "p0")
    return net


def figure_6() -> PetriNet:
    """Figure 6: the net of Figure 5 with weight-2 arcs around ``c`` and ``f``.

    ``c`` consumes 2 tokens from ``p2`` and produces 2 tokens into ``p0``
    (and symmetrically ``f`` for ``p4``), and ``p0`` initially holds two
    tokens, so a single service of ``a`` cannot return to the initial marking;
    the resulting SS schedules have two await nodes each and interfere with
    one another (the example motivating the independence analysis).
    """
    net = PetriNet(name="figure6")
    net.add_place("p0", 2)
    net.add_place("p1")
    net.add_place("p2")
    net.add_place("p3")
    net.add_place("p4")
    net.add_transition("a", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("b")
    net.add_transition("c")
    net.add_transition("d", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("e")
    net.add_transition("f")
    net.add_arc("a", "p1")
    net.add_arc("p1", "b")
    net.add_arc("p0", "b")
    net.add_arc("b", "p2")
    net.add_arc("p2", "c", 2)
    net.add_arc("c", "p0", 2)
    net.add_arc("d", "p3")
    net.add_arc("p3", "e")
    net.add_arc("p0", "e")
    net.add_arc("e", "p4")
    net.add_arc("p4", "f", 2)
    net.add_arc("f", "p0", 2)
    return net


def figure_7(k: int = 3) -> PetriNet:
    """Figure 7: dividers and multipliers by ``k`` around a source ``a``.

    ``b`` consumes ``k`` tokens of ``p1`` (one per firing of ``a``), ``c``
    consumes ``k`` tokens of ``p2``, then ``d`` produces ``k-1`` tokens of
    ``p4`` and ``e`` turns each into ``k`` tokens of ``p5``, which are
    consumed one at a time by ``a``'s companion consumer.  No constant place
    bound admits a schedule for every ``k``, but the irrelevance criterion
    (place degrees) does; the net is the paper's argument for
    history-dependent pruning.

    The exact arc weights follow the published figure: ``a -> p1``;
    ``p1 --k--> b -> p2``; ``p2 --k--> c -> p3``; ``p3 -> d --(k-1)--> p4``;
    ``p4 -> e --k--> p5``; ``p5 --1--> a`` is not an arc (``a`` is a source),
    instead ``p5`` is drained by the schedule through ``b``'s companion...
    To keep the net self-contained we add a sink-like consumer ``g`` taking
    ``k*(k-1)`` tokens of ``p5`` per cycle so that a T-invariant exists.
    """
    if k < 2:
        raise ValueError("k must be at least 2")
    net = PetriNet(name=f"figure7_k{k}")
    net.add_place("p1")
    net.add_place("p2")
    net.add_place("p3")
    net.add_place("p4")
    net.add_place("p5")
    net.add_transition("a", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("b")
    net.add_transition("c")
    net.add_transition("d")
    net.add_transition("e")
    net.add_transition("g")
    net.add_arc("a", "p1")
    net.add_arc("p1", "b", k)
    net.add_arc("b", "p2")
    net.add_arc("p2", "c", k)
    net.add_arc("c", "p3")
    net.add_arc("p3", "d")
    net.add_arc("d", "p4", k - 1)
    net.add_arc("p4", "e")
    net.add_arc("e", "p5", k)
    net.add_arc("p5", "g", k * (k - 1))
    return net


def figure_8() -> PetriNet:
    """Figure 8(a): the net used for the entering-point walk-through.

    Transitions: source ``a`` -> p1; ``b``, ``c`` in equal conflict on p1;
    ``b`` -> p2, ``c`` -> p3; ``d`` consumes p2, ``e`` consumes two tokens of
    p3.
    """
    net = PetriNet(name="figure8")
    net.add_place("p1")
    net.add_place("p2")
    net.add_place("p3")
    net.add_transition("a", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_transition("b")
    net.add_transition("c")
    net.add_transition("d")
    net.add_transition("e")
    net.add_arc("a", "p1")
    net.add_arc("p1", "b")
    net.add_arc("p1", "c")
    net.add_arc("b", "p2")
    net.add_arc("p2", "d")
    net.add_arc("c", "p3")
    net.add_arc("p3", "e", 2)
    return net


def simple_pipeline(stages: int = 3, rate: int = 1) -> PetriNet:
    """A synthetic linear pipeline: src -> s1 -> s2 -> ... -> sink.

    Useful for property tests and scaling benchmarks of the scheduler.
    """
    if stages < 1:
        raise ValueError("need at least one stage")
    net = PetriNet(name=f"pipeline{stages}")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    previous_place = "q0"
    net.add_place(previous_place)
    net.add_arc("src", previous_place, rate)
    for stage in range(1, stages + 1):
        transition = f"s{stage}"
        net.add_transition(transition)
        net.add_arc(previous_place, transition, rate)
        next_place = f"q{stage}"
        net.add_place(next_place)
        net.add_arc(transition, next_place, rate)
        previous_place = next_place
    net.add_transition("sink")
    net.add_arc(previous_place, "sink", rate)
    return net
