"""Applications and example systems used by tests, examples and benchmarks.

* :mod:`repro.apps.paper_nets` -- the hand-built Petri nets of the paper's
  figures (Figures 4-8), used to validate the scheduling machinery.
* :mod:`repro.apps.divisors` -- the divisors process of Figure 1.
* :mod:`repro.apps.video` -- the producer / filter / consumer / controller
  video application of Section 8 (the "PFC" experiment).
* :mod:`repro.apps.false_paths` -- the process pair of Section 7.2
  illustrating false paths and the SELECT-based rewrite.
* :mod:`repro.apps.workloads` -- synthetic workload generators for stress and
  property tests.
"""

from repro.apps import paper_nets
from repro.apps.divisors import build_divisors_network, DIVISORS_SOURCE
from repro.apps.false_paths import (
    build_false_path_network,
    build_select_rewrite_network,
)
from repro.apps.video import VideoAppConfig, build_video_network

__all__ = [
    "DIVISORS_SOURCE",
    "VideoAppConfig",
    "build_divisors_network",
    "build_false_path_network",
    "build_select_rewrite_network",
    "build_video_network",
    "paper_nets",
]
