"""Schedule graphs (Section 4.1 of the paper).

A schedule for an uncontrollable source transition ``a`` is a directed graph
whose nodes carry markings and whose edges carry transitions, with five
properties:

1. the distinguished node ``r`` carries the initial marking and has
   out-degree 1;
2. the edge out of ``r`` is associated with ``a``;
3. for each node ``v``, the transitions on the edges out of ``v`` form an ECS
   enabled at ``M(v)``;
4. for each edge ``(u, v)``, firing its transition at ``M(u)`` yields ``M(v)``;
5. every node lies on a directed cycle through ``r``.

A node whose outgoing edge carries an uncontrollable source transition is an
*await node*; a schedule whose await nodes all carry the same source is a
*single source schedule* (SS schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.petrinet.analysis import StructuralAnalysis, compute_ecs_partition
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet


class ScheduleValidationError(Exception):
    """Raised when a graph violates one of the five schedule properties."""


@dataclass
class ScheduleNode:
    """One node of a schedule: a marking plus its outgoing edges."""

    index: int
    marking: Marking
    # transition name -> index of the successor node
    edges: Dict[str, int] = field(default_factory=dict)

    @property
    def out_degree(self) -> int:
        return len(self.edges)

    def transitions(self) -> FrozenSet[str]:
        return frozenset(self.edges)


@dataclass
class Schedule:
    """A schedule for a source transition over a given Petri net."""

    net: PetriNet
    source_transition: str
    nodes: List[ScheduleNode] = field(default_factory=list)
    root: int = 0

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def add_node(self, marking: Marking) -> ScheduleNode:
        """Append a node carrying ``marking``; its index is assigned densely."""
        node = ScheduleNode(index=len(self.nodes), marking=marking)
        self.nodes.append(node)
        return node

    def add_edge(self, source: int, transition: str, target: int) -> None:
        """Add the edge ``source --transition--> target`` (one per transition)."""
        if transition in self.nodes[source].edges:
            raise ScheduleValidationError(
                f"node {source} already has an edge for transition {transition!r}"
            )
        self.nodes[source].edges[transition] = target

    # ------------------------------------------------------------------
    # basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    @property
    def root_node(self) -> ScheduleNode:
        """The node carrying the initial marking (entry of every reaction)."""
        return self.nodes[self.root]

    def node(self, index: int) -> ScheduleNode:
        """The node at ``index`` (dense, 0-based)."""
        return self.nodes[index]

    def edges(self) -> Iterable[Tuple[int, str, int]]:
        """Every edge as a ``(source_index, transition, target_index)`` triple."""
        for node in self.nodes:
            for transition, target in node.edges.items():
                yield node.index, transition, target

    def involved_transitions(self) -> Set[str]:
        """Transitions associated with at least one edge of the schedule."""
        result: Set[str] = set()
        for _source, transition, _target in self.edges():
            result.add(transition)
        return result

    def involved_places(self, *, include_postsets: bool = False) -> Set[str]:
        """Places that are predecessors of involved transitions.

        With ``include_postsets`` the successors of involved transitions are
        included as well (useful for channel-bound reporting).
        """
        places: Set[str] = set()
        for transition in self.involved_transitions():
            places.update(self.net.pre[transition])
            if include_postsets:
                places.update(self.net.post[transition])
        return places

    def await_nodes(self) -> List[ScheduleNode]:
        """Nodes whose outgoing edge carries an uncontrollable source."""
        uncontrollable = set(self.net.uncontrollable_sources())
        result = []
        for node in self.nodes:
            if any(transition in uncontrollable for transition in node.edges):
                result.append(node)
        return result

    def is_single_source(self) -> bool:
        """True if all await nodes use the schedule's own source transition."""
        uncontrollable = set(self.net.uncontrollable_sources())
        for node in self.nodes:
            for transition in node.edges:
                if transition in uncontrollable and transition != self.source_transition:
                    return False
        return True

    def place_bounds(self) -> Dict[str, int]:
        """Maximum token count per place over all nodes of the schedule.

        For an independent set of SS schedules these are tight upper bounds on
        channel occupancy during execution (Proposition 4.2), i.e. the channel
        sizes the implementation needs.
        """
        bounds: Dict[str, int] = {place: 0 for place in self.net.places}
        for node in self.nodes:
            for place, count in node.marking.items():
                if count > bounds[place]:
                    bounds[place] = count
        return bounds

    def channel_bounds(self) -> Dict[str, int]:
        """Bounds restricted to port/channel places."""
        bounds = self.place_bounds()
        return {
            place: bound
            for place, bound in bounds.items()
            if self.net.places[place].is_port
        }

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def successors(self, index: int) -> List[int]:
        """Distinct target node indices of the edges out of ``index``."""
        return sorted(set(self.nodes[index].edges.values()))

    def reachable_from_root(self) -> Set[int]:
        """Indices of every node reachable from the root along edges."""
        seen: Set[int] = set()
        stack = [self.root]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.nodes[current].edges.values())
        return seen

    def nodes_reaching_root(self) -> Set[int]:
        """Nodes with a directed path back to the root."""
        predecessors: Dict[int, Set[int]] = {node.index: set() for node in self.nodes}
        for source, _transition, target in self.edges():
            predecessors[target].add(source)
        seen: Set[int] = set()
        stack = [self.root]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(predecessors[current])
        return seen

    def paths_from(self, index: int, *, stop_at_await: bool = True) -> List[List[Tuple[int, str, int]]]:
        """Enumerate simple paths from ``index`` until an await node (or a
        revisited node); used by code generation tests."""
        results: List[List[Tuple[int, str, int]]] = []
        await_indices = {node.index for node in self.await_nodes()}

        def walk(current: int, path: List[Tuple[int, str, int]], visited: Set[int]) -> None:
            node = self.nodes[current]
            if stop_at_await and current in await_indices and path:
                results.append(list(path))
                return
            if not node.edges:
                results.append(list(path))
                return
            for transition, target in sorted(node.edges.items()):
                if target in visited:
                    results.append(list(path) + [(current, transition, target)])
                    continue
                walk(target, path + [(current, transition, target)], visited | {target})

        walk(index, [], {index})
        return results

    # ------------------------------------------------------------------
    # validation (the five properties of Section 4.1)
    # ------------------------------------------------------------------
    def validate(self, analysis: Optional[StructuralAnalysis] = None) -> None:
        """Check the five Section 4.1 schedule properties, raising
        :class:`ScheduleValidationError` on the first violation: root carries
        the initial marking with out-degree 1, the root edge fires the source
        transition, outgoing edges form whole ECSs of enabled transitions,
        edges fire correctly (target = marking after firing), and every node
        lies on a directed cycle through the root."""
        if analysis is None:
            analysis = StructuralAnalysis.of(self.net)
        if not self.nodes:
            raise ScheduleValidationError("schedule has no nodes")
        root = self.root_node
        # property 1: the root carries the initial marking and has out-degree 1
        if root.marking != self.net.initial_marking:
            raise ScheduleValidationError("root node does not carry the initial marking")
        if root.out_degree != 1:
            raise ScheduleValidationError(
                f"root node must have out-degree 1, has {root.out_degree}"
            )
        # property 2: the edge out of the root carries the source transition
        root_transition = next(iter(root.edges))
        if root_transition != self.source_transition:
            raise ScheduleValidationError(
                f"edge out of the root carries {root_transition!r}, expected {self.source_transition!r}"
            )
        # properties 3 and 4
        for node in self.nodes:
            if not node.edges:
                raise ScheduleValidationError(f"node {node.index} has no outgoing edges")
            transitions = frozenset(node.edges)
            ecs = analysis.ecs_of(next(iter(transitions)))
            if transitions != ecs:
                raise ScheduleValidationError(
                    f"node {node.index}: outgoing transitions {sorted(transitions)} are not the ECS {sorted(ecs)}"
                )
            for transition, target in node.edges.items():
                if not self.net.is_enabled(transition, node.marking):
                    raise ScheduleValidationError(
                        f"node {node.index}: transition {transition!r} is not enabled at {node.marking.pretty()}"
                    )
                expected = self.net.fire(transition, node.marking)
                if expected != self.nodes[target].marking:
                    raise ScheduleValidationError(
                        f"edge {node.index} --{transition}--> {target}: marking mismatch"
                    )
        # property 5: every node is on a cycle through the root
        reachable = self.reachable_from_root()
        reaching = self.nodes_reaching_root()
        for node in self.nodes:
            if node.index not in reachable or node.index not in reaching:
                raise ScheduleValidationError(
                    f"node {node.index} is not on a directed cycle through the root"
                )

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """Graphviz rendering (await nodes drawn as double circles)."""
        await_indices = {node.index for node in self.await_nodes()}
        lines = [f'digraph "schedule_{self.source_transition}" {{']
        for node in self.nodes:
            shape = "doublecircle" if node.index in await_indices else "circle"
            label = f"{node.index}\\n{node.marking.pretty()}"
            lines.append(f'  n{node.index} [shape={shape}, label="{label}"];')
        for source, transition, target in self.edges():
            lines.append(f'  n{source} -> n{target} [label="{transition}"];')
        lines.append("}")
        return "\n".join(lines)

    def describe(self) -> str:
        """Human-readable dump: header plus one line per edge."""
        lines = [
            f"schedule for {self.source_transition}: {len(self.nodes)} nodes, "
            f"{sum(node.out_degree for node in self.nodes)} edges, "
            f"{len(self.await_nodes())} await node(s)"
        ]
        for node in self.nodes:
            for transition, target in sorted(node.edges.items()):
                lines.append(
                    f"  {node.index} [{node.marking.pretty()}] --{transition}--> {target}"
                )
        return "\n".join(lines)
