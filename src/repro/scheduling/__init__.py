"""Quasi-static scheduling: the paper's primary contribution.

* :mod:`repro.scheduling.schedule` -- schedule graphs (Section 4.1) and their
  defining properties, await nodes, channel bounds.
* :mod:`repro.scheduling.termination` -- termination conditions pruning the
  search: irrelevance criterion, place bounds (Section 4.4).
* :mod:`repro.scheduling.heuristics` -- ECS ordering heuristics, including the
  T-invariant promising vector (Section 5.5).
* :mod:`repro.scheduling.ep` -- the EP / EP_ECS scheduling algorithm
  (Section 5.2) with single-source constraint and post-processing.
* :mod:`repro.scheduling.independence` -- schedule independence (Definition
  4.3) and executability.
* :mod:`repro.scheduling.runs` -- runs of a set of schedules against input
  sequences (Definition 4.1) and dynamic executability checking.
* :mod:`repro.scheduling.parallel` -- per-source EP searches fanned out over
  a process pool, merged back deterministically.
* :mod:`repro.scheduling.intra` -- work stealing *within* one EP search:
  per-ECS subtrees speculatively executed by helper processes and spliced
  back in canonical order (``SchedulerOptions.intra_workers``).
* :mod:`repro.scheduling.serialize` -- canonical schedule (de)serialization
  used by the golden fixtures, the parallel merge and the warm-start cache.
* :mod:`repro.scheduling.warmstart` -- schedule replay keyed on structural
  fingerprints, for config sweeps that rebuild identical nets.
"""

from repro.scheduling.schedule import (
    Schedule,
    ScheduleNode,
    ScheduleValidationError,
)
from repro.scheduling.termination import (
    CompositeCondition,
    IrrelevanceCriterion,
    NodeBudget,
    PlaceBoundCondition,
    TerminationCondition,
    UserBoundCondition,
    default_termination,
)
from repro.scheduling.ep import (
    SchedulerOptions,
    SchedulerResult,
    SchedulingFailure,
    SearchCounters,
    find_all_schedules,
    find_schedule,
)
from repro.scheduling.parallel import (
    aggregate_counters,
    default_worker_count,
    find_all_schedules_parallel,
)
from repro.scheduling.serialize import (
    schedule_fingerprint,
    schedule_from_dict,
    schedule_summary,
    schedule_to_dict,
    schedule_to_json,
)
from repro.scheduling.warmstart import (
    GLOBAL_SCHEDULE_CACHE,
    ScheduleWarmStartCache,
    cached_find_schedule,
)
from repro.scheduling.independence import (
    involved_places,
    involved_transitions,
    are_mutually_independent,
    is_independent_set,
)
from repro.scheduling.runs import Run, RunError, build_run, check_executability

__all__ = [
    "CompositeCondition",
    "GLOBAL_SCHEDULE_CACHE",
    "IrrelevanceCriterion",
    "NodeBudget",
    "PlaceBoundCondition",
    "Run",
    "RunError",
    "Schedule",
    "ScheduleNode",
    "ScheduleValidationError",
    "ScheduleWarmStartCache",
    "SchedulerOptions",
    "SchedulerResult",
    "SchedulingFailure",
    "SearchCounters",
    "TerminationCondition",
    "UserBoundCondition",
    "aggregate_counters",
    "are_mutually_independent",
    "build_run",
    "cached_find_schedule",
    "check_executability",
    "default_termination",
    "default_worker_count",
    "find_all_schedules",
    "find_all_schedules_parallel",
    "find_schedule",
    "involved_places",
    "involved_transitions",
    "is_independent_set",
    "schedule_fingerprint",
    "schedule_from_dict",
    "schedule_summary",
    "schedule_to_dict",
    "schedule_to_json",
]
