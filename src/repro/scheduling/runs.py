"""Runs of a set of schedules (Definition 4.1) and dynamic executability.

Given one SS schedule per uncontrollable source transition and a finite
sequence of environment events, a *run* is the sequence of schedule paths
traversed to serve the events: each event is served by walking its schedule
from the await node reached by the previous traversal of that schedule to the
next await node.  A set of schedules is *executable* (Definition 4.2) when the
concatenated transition sequence of every run is fireable in the original net
from the initial marking.

The run builder below resolves data-dependent choices through a pluggable
policy (deterministic, random, or exhaustive in tests) and checks firing
against the net, providing the dynamic counterpart to the static independence
check of :mod:`repro.scheduling.independence`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet
from repro.scheduling.schedule import Schedule, ScheduleNode


class RunError(Exception):
    """Raised when a run cannot be constructed or is not fireable."""


# A choice resolver picks the transition to follow at a node with several
# outgoing edges.  It receives the schedule, the node and the marking of the
# *original net* at that point of the run.
ChoiceResolver = Callable[[Schedule, ScheduleNode, Marking], str]


def first_choice_resolver(schedule: Schedule, node: ScheduleNode, marking: Marking) -> str:
    """Deterministic resolver: smallest transition name."""
    return min(node.edges)


def random_choice_resolver(seed: int = 0) -> ChoiceResolver:
    """Random but reproducible resolver."""
    generator = random.Random(seed)

    def resolve(schedule: Schedule, node: ScheduleNode, marking: Marking) -> str:
        return generator.choice(sorted(node.edges))

    return resolve


@dataclass
class RunSegment:
    """The service of one environment event: a path between await nodes."""

    event: str
    start_node: int
    end_node: int
    transitions: List[str] = field(default_factory=list)


@dataclass
class Run:
    """A run of a set of schedules with respect to an input sequence."""

    segments: List[RunSegment] = field(default_factory=list)
    final_marking: Optional[Marking] = None

    def transition_sequence(self) -> List[str]:
        sequence: List[str] = []
        for segment in self.segments:
            sequence.extend(segment.transitions)
        return sequence

    def __len__(self) -> int:
        return len(self.segments)


def build_run(
    schedules: Mapping[str, Schedule],
    events: Sequence[str],
    *,
    resolver: Optional[ChoiceResolver] = None,
    net: Optional[PetriNet] = None,
    check_fireable: bool = True,
    max_steps_per_event: int = 100_000,
) -> Run:
    """Build a run of ``schedules`` for the event sequence ``events``.

    Each event must name an uncontrollable source transition with a schedule
    in ``schedules``.  When ``check_fireable`` is set the concatenated
    transition sequence is fired in the net (the net of the first schedule by
    default) and a :class:`RunError` is raised on the first non-enabled
    transition -- this is exactly the executability check of Definition 4.2.
    """
    if not schedules:
        raise RunError("no schedules supplied")
    resolver = resolver or first_choice_resolver
    reference_net = net or next(iter(schedules.values())).net
    # Fire on the indexed core: a tuple update per transition instead of a
    # dict copy + sorted-tuple hash per Marking.
    inet = reference_net.indexed()
    vec = inet.initial_vec
    tindex = inet.transition_index

    # current await node per schedule (None = the distinguished node, not yet used)
    positions: Dict[str, int] = {}
    uncontrollable = set(reference_net.uncontrollable_sources())

    run = Run()
    for event in events:
        if event not in schedules:
            raise RunError(f"no schedule for event {event!r}")
        schedule = schedules[event]
        start = positions.get(event, schedule.root)
        node = schedule.node(start)
        segment = RunSegment(event=event, start_node=start, end_node=start)

        # First edge must be the event itself (property 2 of Definition 4.1).
        if event not in node.edges:
            raise RunError(
                f"schedule for {event!r} cannot serve the event at node {node.index}"
            )
        steps = 0
        transition = event
        while True:
            target = node.edges[transition]
            segment.transitions.append(transition)
            if check_fireable:
                tid = tindex.get(transition)
                if tid is None or not inet.is_enabled_vec(tid, vec):
                    raise RunError(
                        f"run is not fireable: transition {transition!r} not enabled at "
                        f"{inet.marking_of_vec(vec).pretty()} (event {event!r})"
                    )
                vec = inet.fire_vec(tid, vec)
            node = schedule.node(target)
            steps += 1
            if steps > max_steps_per_event:
                raise RunError("run exceeded the step budget for a single event")
            # Stop when an await node is reached (its outgoing edge is an
            # uncontrollable source); property 1 of Definition 4.1.
            outgoing = set(node.edges)
            if outgoing & uncontrollable:
                break
            if not outgoing:
                raise RunError(f"schedule for {event!r} reached a node with no successors")
            if len(outgoing) == 1:
                transition = next(iter(outgoing))
            else:
                transition = resolver(schedule, node, inet.marking_of_vec(vec))
                if transition not in node.edges:
                    raise RunError(
                        f"choice resolver returned {transition!r} which is not an edge of node {node.index}"
                    )
        segment.end_node = node.index
        positions[event] = node.index
        run.segments.append(segment)

    run.final_marking = inet.marking_of_vec(vec)
    return run


def check_executability(
    schedules: Mapping[str, Schedule],
    event_sequences: Sequence[Sequence[str]],
    *,
    resolvers: Sequence[ChoiceResolver] = (),
    net: Optional[PetriNet] = None,
) -> bool:
    """Check executability of a set of schedules over several input sequences.

    This is a dynamic (testing) check complementing the static independence
    criterion: it builds a run for every sequence (and every resolver) and
    verifies fireability.  Returns True when every run succeeds.
    """
    all_resolvers: List[ChoiceResolver] = list(resolvers) or [first_choice_resolver]
    for sequence in event_sequences:
        for resolver in all_resolvers:
            try:
                build_run(schedules, sequence, resolver=resolver, net=net, check_fireable=True)
            except RunError:
                return False
    return True
