"""ECS ordering heuristics for the scheduling algorithm (Section 5.5).

The order in which the function EP explores the enabled ECSs at a node does
not change what is schedulable, but it strongly affects the number of nodes
created and the size of the resulting schedule.  The paper proposes:

* a *promising vector* derived from a base of T-invariants: prefer ECSs
  containing transitions that still need to fire to close a cycle back to an
  already-visited marking (Section 5.5.2);
* tie-breaks: avoid ECSs whose children immediately hit the termination
  condition, postpone uncontrollable source ECSs, and prefer single-transition
  ECSs.

The promising-vector machinery also yields a sufficient non-schedulability
condition: if the net has no T-invariant whose support contains the source
transition, no cyclic schedule exists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.petrinet.analysis import StructuralAnalysis
from repro.petrinet.covering import build_candidate_invariant_problem, solve_binate_covering
from repro.petrinet.invariants import combine_invariants, t_invariant_basis
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet

ECS = FrozenSet[str]


@dataclass(frozen=True)
class ECSLookahead:
    """One-step lookahead facts about firing an ECS at the current node."""

    hits_termination: bool = False
    closes_cycle: bool = False
    token_delta: int = 0


class HeuristicContext:
    """Information available to the ordering heuristic at one tree node.

    ``marking`` is materialised lazily: the built-in heuristics rank ECSs
    from the lookahead masks and the path firing counts alone, and building
    a facade :class:`Marking` per expanded node is pure overhead in the
    search hot loop.  The scheduler passes ``marking_supplier`` instead; a
    heuristic that does read ``context.marking`` pays the conversion only
    then (and custom callers may still pass ``marking`` directly).
    """

    __slots__ = (
        "_marking",
        "_marking_supplier",
        "path_firings",
        "depth",
        "lookahead",
        "fired_by_tid",
    )

    def __init__(
        self,
        marking: Optional[Marking] = None,
        path_firings: Optional[Mapping[str, int]] = None,
        depth: int = 0,
        lookahead: Optional[Mapping[ECS, ECSLookahead]] = None,
        marking_supplier: Optional[Callable[[], Marking]] = None,
        fired_by_tid: Optional[Sequence[int]] = None,
    ):
        self._marking = marking
        self._marking_supplier = marking_supplier
        self.path_firings: Mapping[str, int] = path_firings if path_firings is not None else {}
        self.depth = depth
        # optional per-ECS one-step lookahead computed by the scheduler
        self.lookahead: Mapping[ECS, ECSLookahead] = lookahead if lookahead is not None else {}
        # optional dense twin of path_firings (indexed by transition ID); the
        # invariant-guided ordering uses it to skip a per-node Python scan of
        # the whole candidate invariant
        self.fired_by_tid = fired_by_tid

    @property
    def marking(self) -> Optional[Marking]:
        if self._marking is None and self._marking_supplier is not None:
            self._marking = self._marking_supplier()
        return self._marking

    def hits_termination(self, ecs: ECS) -> bool:
        info = self.lookahead.get(ecs)
        return info.hits_termination if info else False

    def closes_cycle(self, ecs: ECS) -> bool:
        info = self.lookahead.get(ecs)
        return info.closes_cycle if info else False

    def token_delta(self, ecs: ECS) -> int:
        info = self.lookahead.get(ecs)
        return info.token_delta if info else 0


class ECSOrderingHeuristic:
    """Base class: orders the enabled ECSs at a node (best first)."""

    def order(self, ecss: Sequence[ECS], context: HeuristicContext) -> List[ECS]:
        raise NotImplementedError


@dataclass
class NaiveOrdering(ECSOrderingHeuristic):
    """Deterministic name-based ordering (the ablation baseline)."""

    def order(self, ecss: Sequence[ECS], context: HeuristicContext) -> List[ECS]:
        return sorted(ecss, key=lambda ecs: sorted(ecs))


@dataclass
class TieBreakOrdering(ECSOrderingHeuristic):
    """The tie-break rules of Section 5.5.2 without invariant guidance.

    1. Non-source ECSs come before source ECSs ("fire a source transition only
       when the system cannot fire anything else").
    2. ECSs closing a cycle (a child marking equals an ancestor marking) come
       first -- they immediately provide an entering point.
    3. ECSs none of whose children hit the termination condition come next.
    4. ECSs that consume more tokens than they produce come before producers:
       draining channels first is what keeps the schedule (and the channel
       bounds) small.
    5. Single-transition ECSs come before multi-transition (choice) ECSs.
    """

    analysis: StructuralAnalysis

    def order(self, ecss: Sequence[ECS], context: HeuristicContext) -> List[ECS]:
        def key(ecs: ECS) -> Tuple:
            is_source = self.analysis.is_source_ecs(ecs)
            return (
                bool(is_source),
                not context.closes_cycle(ecs),
                bool(context.hits_termination(ecs)),
                context.token_delta(ecs),
                len(ecs) > 1,
                sorted(ecs),
            )

        return sorted(ecss, key=key)


@dataclass
class PromisingVectorState:
    """Mutable state of the invariant-guided heuristic along the search path."""

    vector: Dict[str, int] = field(default_factory=dict)

    def appears(self, transition: str) -> bool:
        return self.vector.get(transition, 0) > 0


class InvariantGuidedOrdering(ECSOrderingHeuristic):
    """T-invariant guided ordering (Section 5.5.2).

    The heuristic keeps a *promising vector*: a non-negative transition count
    vector derived from a T-invariant (or a sum of base invariants) minus the
    transitions already fired on the path.  ECSs containing a transition that
    appears in the promising vector are preferred; the tie-break rules of
    :class:`TieBreakOrdering` are applied within each group.

    The candidate invariant is chosen so that its support satisfies the
    necessary fireability condition of Theorem 5.3 (every pseudo-enabled ECS
    of a process appearing in the vector contributes a transition), using the
    binate-covering formulation.
    """

    def __init__(
        self,
        net: PetriNet,
        analysis: StructuralAnalysis,
        source_transition: str,
        *,
        invariants: Optional[List[Dict[str, int]]] = None,
    ):
        self.net = net
        self.analysis = analysis
        self.source_transition = source_transition
        self.base = invariants if invariants is not None else t_invariant_basis(net)
        self.tie_break = TieBreakOrdering(analysis)
        self._candidate = self._select_candidate_invariant()
        # dense view of the candidate invariant (tids / counts), built lazily
        # per indexed snapshot for the fired_by_tid fast path of order()
        self._dense_for: Optional[object] = None
        self._candidate_tids = None
        self._candidate_counts = None

    # -- candidate invariant -------------------------------------------------
    def _select_candidate_invariant(self) -> Dict[str, int]:
        """A combination of base invariants covering the source transition and
        satisfying (heuristically) the Theorem 5.3 necessary condition."""
        if not self.base:
            return {}
        names = [f"inv{i}" for i in range(len(self.base))]
        by_name = dict(zip(names, self.base))
        # rows: for each invariant that uses a process but not some ECS of
        # that process reachable from the initial marking, require a helper.
        rows: List[Tuple[str, FrozenSet[str]]] = []
        process_of = {t: obj.process for t, obj in self.net.transitions.items()}
        ecs_by_process: Dict[Optional[str], List[ECS]] = {}
        for ecs in self.analysis.partition:
            proc = process_of.get(min(ecs))
            ecs_by_process.setdefault(proc, []).append(ecs)
        for name, invariant in by_name.items():
            processes_in_invariant = {process_of.get(t) for t in invariant}
            for proc in processes_in_invariant:
                if proc is None:
                    continue
                for ecs in ecs_by_process.get(proc, []):
                    if any(t in invariant for t in ecs):
                        continue
                    helpers = frozenset(
                        other
                        for other, other_inv in by_name.items()
                        if any(t in other_inv for t in ecs)
                    )
                    if helpers:
                        rows.append((name, helpers))
        mandatory = {
            name for name, invariant in by_name.items() if self.source_transition in invariant
        }
        if not mandatory:
            # no invariant fires the source: the net cannot cycle through it
            return {}
        problem = build_candidate_invariant_problem(names, rows)
        solution = solve_binate_covering(problem, initial=set(mandatory))
        if solution is None or not (solution & mandatory):
            solution = mandatory
        return combine_invariants([by_name[name] for name in sorted(solution)])

    @property
    def candidate_invariant(self) -> Dict[str, int]:
        return dict(self._candidate)

    def source_is_coverable(self) -> bool:
        """False when no T-invariant fires the source transition, a sufficient
        condition for non-schedulability (Section 5.5.2)."""
        return any(self.source_transition in invariant for invariant in self.base)

    # -- promising vector ------------------------------------------------------
    def promising_vector(self, path_firings: Mapping[str, int]) -> Dict[str, int]:
        """Remaining firings of the candidate invariant along the current path.

        The candidate invariant is replayed cyclically: the fired counts are
        reduced modulo the invariant so long schedules (several cycles of a
        process) keep receiving guidance.
        """
        if not self._candidate:
            return {}
        remaining: Dict[str, int] = {}
        # number of complete invariant repetitions already fired
        repetitions = min(
            (path_firings.get(t, 0) // count for t, count in self._candidate.items()),
            default=0,
        )
        for transition, count in self._candidate.items():
            fired = path_firings.get(transition, 0) - repetitions * count
            left = count - fired
            if left > 0:
                remaining[transition] = left
        if not remaining:
            return dict(self._candidate)
        return remaining

    def _dense_candidate(self, inet):
        """Candidate invariant as (tid array, count array), cached per snapshot."""
        if self._dense_for is not inet:
            import numpy as np

            items = sorted(self._candidate.items())
            tindex = inet.transition_index
            self._candidate_tids = np.asarray(
                [tindex[t] for t, _count in items], dtype=np.intp
            )
            self._candidate_counts = np.asarray(
                [count for _t, count in items], dtype=np.int64
            )
            self._dense_for = inet
        return self._candidate_tids, self._candidate_counts

    def _promising_predicate(self, context: HeuristicContext):
        """``ecs -> bool``: does the ECS contain a still-promising transition?

        With a dense ``fired_by_tid`` view the cyclic-replay arithmetic of
        :meth:`promising_vector` runs as one vector op per node (and one
        integer check per queried transition) instead of a Python scan over
        the whole candidate invariant; the two paths agree exactly because
        ``remaining`` is never empty for a non-empty candidate (the invariant
        repetition count is the floor-minimum over its support).
        """
        candidate = self._candidate
        fired = context.fired_by_tid
        if not candidate or fired is None:
            vector = self.promising_vector(context.path_firings)
            if not vector:
                return lambda ecs: True
            return lambda ecs: any(vector.get(t, 0) > 0 for t in ecs)
        tids, counts = self._dense_candidate(self.net.indexed())
        repetitions = int((fired[tids] // counts).min())
        tindex = self.net.indexed().transition_index

        def is_promising(ecs: ECS) -> bool:
            for transition in ecs:
                count = candidate.get(transition)
                if count is None:
                    continue
                left = count - (int(fired[tindex[transition]]) - repetitions * count)
                if left > 0:
                    return True
            return False

        return is_promising

    def order(self, ecss: Sequence[ECS], context: HeuristicContext) -> List[ECS]:
        is_promising = self._promising_predicate(context)

        def key(ecs: ECS) -> Tuple:
            is_source = self.analysis.is_source_ecs(ecs)
            promising = is_promising(ecs)
            # "Fire a source transition only when the system cannot fire
            # anything else" dominates, then cycle-closing moves, then the
            # termination lookahead, the token-consumption preference and the
            # promising-vector preference.
            return (
                bool(is_source),
                not context.closes_cycle(ecs),
                bool(context.hits_termination(ecs)),
                context.token_delta(ecs),
                not promising,
                len(ecs) > 1,
                sorted(ecs),
            )

        return sorted(ecss, key=key)


def make_heuristic(
    net: PetriNet,
    analysis: StructuralAnalysis,
    source_transition: str,
    *,
    use_invariants: bool = True,
) -> ECSOrderingHeuristic:
    """Factory for the default heuristic configuration."""
    if use_invariants:
        return InvariantGuidedOrdering(net, analysis, source_transition)
    return TieBreakOrdering(analysis)
