"""Intra-search work stealing: parallelism *within* one EP search.

The per-source fan-out (:mod:`repro.scheduling.parallel`) cannot help the
paper's flagship PFC nets: they have exactly one uncontrollable source, so
one EP search owns the whole wall clock.  This module partitions that search
instead, behind ``SchedulerOptions.intra_workers``.

Partition rule
--------------

The split unit is the **per-ECS subtree**.  At a node ``v`` whose candidate
list holds two or more ECSs, ``_ep`` calls ``_ep_ecs(ecs, v, target)`` with
the *same* target for every candidate (the ``current_target`` threading is
internal to one ``_ep_ecs``), so the candidate subtrees are independently
computable.  The parent runs the ordinary EP recursion top-down and, at every
such node, publishes one *subtree task* per candidate ECS to a shared queue
before descending into the first -- the growing frontier of independent open
subtree roots that workers steal from.  When only part of a node's candidate
list fits the outstanding-task budget, :func:`repro.scheduling.independence.
prefer_disjoint_forks` picks the structurally independent (place-disjoint)
candidates first -- conflicting subtrees re-explore overlapping markings and
are the least profitable to split.

Execution and merge order
-------------------------

Workers -- and the parent, while it waits -- steal tasks and run them
*detached*: a fresh ``_EPSearch`` rebuilds the root..v path prefix by firing
the prefix transitions, zeroes its counters (the parent already accounted the
prefix), and runs ``_ep_ecs`` on the candidate ECS locally.  Nets reach
worker processes through the shared-memory plane
(:func:`repro.petrinet.shm.acquire_shared_plane`), falling back to pickled
bytes under the existing ``RuntimeWarning`` contract.  A finished subtree
travels back as ``(node records, entering point, SearchCounters,
marking-store delta)``; the parent consumes the per-ECS results in the exact
serial order (including the early-exit and defer-sources rules), translating
local node indices onto the shared tree -- so node allocation order, the
final schedule, its fingerprint and the tree shape are byte-identical to the
serial search regardless of worker count or steal interleaving.  Results
past a serial early-exit are discarded unmerged, exactly as the serial
search never computes them.

Fallback ladder (every rung produces the serial result)
-------------------------------------------------------

1. subtree stolen by a worker process and spliced;
2. subtree executed detached by the parent while it waited on another;
3. subtree executed inline at the serial point: the task was still
   unclaimed when its turn came, the splice would land too close to the
   node budget (worker-local node indices make the budget more permissive,
   so near ``max_nodes`` only the serial indices are trusted), or the
   worker raised / died mid-subtree (one ``RuntimeWarning`` per search);
4. no forking at all: ``intra_workers=1``, a termination condition that
   does not decompose into frontier masks plus node budgets (custom
   conditions may inspect global node indices, which a detached subtree
   cannot reproduce), unpicklable options, or every helper process gone.

Counters match the serial search exactly except the
:data:`~repro.scheduling.ep.SearchCounters.BACKEND_ONLY` expansion tallies
(a stolen subtree re-expands its root frontier segment once instead of
reusing the parent's lookahead rows), which were already excluded from
identity checks by the backend-equivalence contract.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import pickle
import queue as queue_module
import sys
import time
import warnings
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.petrinet.analysis import StructuralAnalysis
from repro.petrinet.fingerprint import structural_fingerprint
from repro.petrinet.indexed import MarkingVec
from repro.petrinet.net import PetriNet
from repro.petrinet.shm import SharedNetHandle, acquire_shared_plane
from repro.scheduling.ep import (
    ECS,
    UNDEF,
    SchedulerOptions,
    SchedulerResult,
    SearchCounters,
    _EPSearch,
    _Frontier,
)
from repro.scheduling.independence import prefer_disjoint_forks
from repro.scheduling.termination import split_frontier_conditions

# -- tuning knobs ------------------------------------------------------------

#: outstanding (published-but-unresolved) subtree tasks allowed per live
#: helper; bounds speculation waste when the serial order keeps early-exiting
OUTSTANDING_PER_HELPER = 4

#: seconds of zero progress (no messages, nothing stealable) before the
#: parent gives up on a stolen subtree and recomputes it inline
STALL_TIMEOUT = 30.0

# -- test-only hooks ---------------------------------------------------------

#: when set, permutes the order in which a fork node's task envelopes are
#: published to the shared queue (the steal order) -- determinism tests prove
#: the result is identical under any permutation.  Signature:
#: ``hook(envelopes: list) -> list`` (same elements, any order).
_publish_order_hook = None

#: when set, stamps a fault into published task envelopes -- ``"raise"``
#: makes the claiming worker raise mid-subtree, ``"die"`` makes it exit
#: without replying.  Signature: ``hook(task_id: int) -> Optional[str]``.
#: The parent leaves faulted envelopes to worker processes (while any are
#: alive) so the degradation path is actually exercised.
_fault_hook = None

#: sentinel distinct from UNDEF (= None): "result cannot be spliced here"
_INVALID_SPLICE = object()


# -- task wire format --------------------------------------------------------


@dataclass
class _SubtreeTask:
    """One stolen subtree: everything a detached executor needs."""

    task_id: int
    epoch: int
    fingerprint: str
    handle: Optional[SharedNetHandle]
    payload: Optional[bytes]
    options_blob: bytes
    source: str
    # transitions fired along root..v (the task's path prefix), root first
    prefix_tids: Tuple[int, ...]
    # depth of the entering-point target (targets always lie on the prefix)
    target_depth: int
    # the candidate ECS, as sorted transition names
    ecs_names: Tuple[str, ...]
    fault: Optional[str] = None


@dataclass
class SubtreeOutcome:
    """A detached subtree's result, in parent-spliceable form."""

    prefix_len: int
    nodes_allocated: int
    # per allocated node, in allocation order:
    # (parent_local, tid, vec, ecs_choice, equal_ancestor_local)
    records: List[Tuple[int, int, MarkingVec, Optional[ECS], Optional[int]]]
    # local index of the entering point, or None (= UNDEF)
    entering_local: Optional[int]
    counters: Dict[str, int]
    # marking-store admissions of the subtree (probes included), in order
    new_vecs: List[MarkingVec]


def run_subtree_task(
    net: PetriNet,
    task: _SubtreeTask,
    options: SchedulerOptions,
    analysis: Optional[StructuralAnalysis] = None,
) -> SubtreeOutcome:
    """Execute one subtree task detached: rebuild the prefix, run ``_ep_ecs``.

    Shared by worker processes and the parent's wait-time steals.  The
    replayed prefix reproduces the serial search's entire path state
    (markings-on-path index, token-total multiset, dense path matrix, the
    incremental enabled-set chain), so every path-local termination verdict
    and cycle check inside the subtree is byte-identical to the serial
    search's; only node *indices* are smaller, which the parent's splice
    validity check accounts for.
    """
    search = _EPSearch(net, task.source, options, analysis=analysis)
    tree = search.tree
    inet = search.inet
    vec = inet.initial_vec
    node = tree.add_root(vec)
    tree.push(node)
    for tid in task.prefix_tids:
        vec = inet.fire_vec(tid, vec)
        node = tree.add_child(node, tid, vec)
        tree.push(node)
    tree.enabled_of(node)  # warm the incremental enabled-set chain
    # the prefix replay is bookkeeping, not search work -- the parent already
    # accounted these nodes; the subtree's counters must start from zero
    for field_name in search.counters.as_dict():
        setattr(search.counters, field_name, 0)
    store_mark = len(tree.store)
    prefix_len = len(task.prefix_tids) + 1
    ecs = frozenset(task.ecs_names)
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 100_000))
    try:
        entering = search._ep_ecs(ecs, node, task.target_depth, None)
    finally:
        sys.setrecursionlimit(old_limit)
    records = [
        (n.parent, n.tid, n.vec, n.ecs_choice, n.equal_ancestor)
        for n in tree.nodes[prefix_len:]
    ]
    return SubtreeOutcome(
        prefix_len=prefix_len,
        nodes_allocated=len(tree.nodes) - prefix_len,
        records=records,
        entering_local=entering,
        counters=search.counters.as_dict(),
        new_vecs=tree.store.vecs_since(store_mark),
    )


# -- worker process ----------------------------------------------------------


def _worker_main(task_queue, result_queue, epoch) -> None:
    """Helper-process loop: steal tasks, reply (claimed / done / error)."""
    from repro.cache import disable_in_subprocess
    from repro.scheduling.parallel import _materialise

    # cache traffic is the parent's job (one process, no sqlite contention)
    disable_in_subprocess()
    while True:
        try:
            task = task_queue.get()
        except (EOFError, OSError):  # pragma: no cover - queue torn down
            return
        if task is None:
            return
        if task.epoch != epoch.value:
            continue  # leftover of a finished search: drop silently
        result_queue.put(("claimed", task.task_id, task.epoch, os.getpid()))
        if task.fault == "die":  # test-only fault injection
            os._exit(17)
        try:
            if task.fault == "raise":  # test-only fault injection
                raise RuntimeError("injected intra-search worker fault")
            worker_net = _materialise(task.fingerprint, task.payload, task.handle)
            options: SchedulerOptions = pickle.loads(task.options_blob)
            outcome = run_subtree_task(
                worker_net.net, task, options, analysis=worker_net.analysis
            )
        except BaseException as exc:
            try:
                result_queue.put(
                    ("error", task.task_id, task.epoch, f"{type(exc).__name__}: {exc}")
                )
            except Exception:  # pragma: no cover - unpicklable exc text
                result_queue.put(("error", task.task_id, task.epoch, "worker error"))
        else:
            result_queue.put(("done", task.task_id, task.epoch, outcome))


# -- the shared pool ---------------------------------------------------------


class _IntraPool:
    """``helpers`` stealing processes around one task + one result queue.

    Pools are shared process-wide per helper count (:func:`_get_pool`) and
    reused across searches -- sources x subtrees share one pool.  A per-pool
    epoch counter invalidates leftover tasks of finished searches: workers
    (and the parent) drop envelopes whose epoch is stale.
    """

    def __init__(self, helpers: int):
        context = multiprocessing.get_context()
        self.task_queue = context.Queue()
        self.result_queue = context.Queue()
        self.epoch = context.Value("l", 0, lock=False)
        self.helpers = []
        for _ in range(helpers):
            process = context.Process(
                target=_worker_main,
                args=(self.task_queue, self.result_queue, self.epoch),
                daemon=True,
            )
            process.start()
            self.helpers.append(process)

    def live_helpers(self):
        return [process for process in self.helpers if process.is_alive()]

    def helper_by_pid(self, pid: int):
        for process in self.helpers:
            if process.pid == pid:
                return process
        return None

    def begin_search(self) -> int:
        self.epoch.value += 1
        while True:  # drop messages left over from a previous search
            try:
                self.result_queue.get_nowait()
            except queue_module.Empty:
                return self.epoch.value

    def end_search(self) -> None:
        self.epoch.value += 1

    def close(self) -> None:
        for _ in self.helpers:
            try:
                self.task_queue.put(None)
            except Exception:  # pragma: no cover - queue already broken
                break
        for process in self.helpers:
            process.join(timeout=1.0)
            if process.is_alive():
                process.terminate()
        for q in (self.task_queue, self.result_queue):
            try:
                q.close()
            except Exception:  # pragma: no cover
                pass


_POOLS: Dict[int, _IntraPool] = {}


def _get_pool(helpers: int) -> _IntraPool:
    """The process-wide pool with ``helpers`` live workers (rebuilt if any
    died -- e.g. after a fault-injection test degraded the previous one)."""
    pool = _POOLS.get(helpers)
    if pool is not None:
        if len(pool.live_helpers()) == len(pool.helpers):
            return pool
        pool.close()
        del _POOLS[helpers]
    pool = _IntraPool(helpers)
    _POOLS[helpers] = pool
    return pool


def shutdown_pools() -> None:
    """Tear down every shared intra-search pool (tests, interpreter exit)."""
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)


# -- parent-side task bookkeeping -------------------------------------------


class _TaskState:
    """Lifecycle of one published subtree task, parent side."""

    __slots__ = ("task_id", "status", "pid", "outcome", "message")

    def __init__(self, task_id: int):
        self.task_id = task_id
        # published -> claimed -> done | error, then resolved / discarded
        self.status = "published"
        self.pid: Optional[int] = None
        self.outcome: Optional[SubtreeOutcome] = None
        self.message: Optional[str] = None


class IntraSearch(_EPSearch):
    """An ``_EPSearch`` whose per-ECS subtrees are work-stolen by helpers.

    Instantiated by :func:`repro.scheduling.ep.find_schedule` whenever
    ``options.intra_workers > 1``.  Observationally identical to the serial
    search; ``run()`` additionally fills ``SchedulerResult.intra_stats``.
    """

    def __init__(
        self,
        net: PetriNet,
        source: str,
        options: SchedulerOptions,
        analysis: Optional[StructuralAnalysis] = None,
        heuristic=None,
    ):
        super().__init__(net, source, options, analysis=analysis, heuristic=heuristic)
        self._helpers_wanted = max(0, int(options.intra_workers) - 1)
        # forking requires the termination condition to be path-local: every
        # maskable condition depends only on the candidate marking, the path
        # and depths, all of which the detached prefix replays exactly.  A
        # custom non-decomposable condition could inspect node indices, which
        # a detached subtree cannot reproduce -> never fork.
        self._forkable = split_frontier_conditions(self.termination) is not None
        self.stats: Dict[str, object] = {
            "workers": max(1, int(options.intra_workers)),
            "forks": 0,
            "published": 0,
            "stolen_by_workers": 0,
            "parent_detached": 0,
            "inline": 0,
            "invalid_splice": 0,
            "worker_failures": 0,
            "discarded": 0,
            "serial_fallback": None,
        }
        self._pool: Optional[_IntraPool] = None
        self._epoch = 0
        self._tasks: Dict[int, _TaskState] = {}
        self._frames: List[Dict[ECS, int]] = []
        self._task_counter = 0
        self._outstanding = 0
        self._warned_degraded = False
        self._plane = None
        self._fingerprint: Optional[str] = None
        self._handle: Optional[SharedNetHandle] = None
        self._payload: Optional[bytes] = None
        self._options_blob: Optional[bytes] = None
        self._shipped_options: Optional[SchedulerOptions] = None

    # -- lifecycle -----------------------------------------------------------

    def run(self) -> SchedulerResult:
        if self._helpers_wanted == 0:
            return super().run()
        if not self._forkable:
            self.stats["serial_fallback"] = "termination condition not frontier-decomposable"
            result = super().run()
            result.intra_stats = dict(self.stats)
            return result
        try:
            self._setup_transport()
        except Exception as exc:
            self.stats["serial_fallback"] = f"transport setup failed: {exc}"
            result = super().run()
            result.intra_stats = dict(self.stats)
            return result
        try:
            result = super().run()
        finally:
            self._teardown_transport()
        result.intra_stats = dict(self.stats)
        return result

    def _setup_transport(self) -> None:
        # pin the resolved backend / kernel tier like the per-source fan-out
        # does, so every executor runs the coordinator's decision; a detached
        # executor must never itself fork (intra_workers=1)
        resolved_tier = self.options.kernel_tier
        if self.backend == "kernel":
            from repro.petrinet.kernel import resolve_kernel_tier

            resolved_tier = resolve_kernel_tier(self.options.kernel_tier)
        shipped = replace(
            self.options,
            backend=self.backend,
            kernel_tier=resolved_tier,
            intra_workers=1,
        )
        # a custom (maskable) termination condition must survive pickling to
        # be executable in a worker; if it does not, run serially
        options_blob = pickle.dumps(shipped, protocol=pickle.HIGHEST_PROTOCOL)
        fingerprint = structural_fingerprint(self.net)
        plane = acquire_shared_plane(self.net, fingerprint)
        payload = None
        if plane is None:
            # shm unavailable (platform, REPRO_SHM=0, publish failure -- the
            # plane already warned): ship pickled bytes in every envelope
            payload = pickle.dumps(self.net, protocol=pickle.HIGHEST_PROTOCOL)
        pool = _get_pool(self._helpers_wanted)
        self._epoch = pool.begin_search()
        self._pool = pool
        self._plane = plane
        self._fingerprint = fingerprint
        self._handle = plane.handle if plane is not None else None
        self._payload = payload
        self._options_blob = options_blob
        self._shipped_options = shipped

    def _teardown_transport(self) -> None:
        if self._pool is not None:
            self._pool.end_search()  # stragglers see a stale epoch and drop
        if self._plane is not None:
            self._plane.release()
        self._pool = None
        self._plane = None

    # -- the fork/consume seam ----------------------------------------------

    def _run_ecs_loop(
        self,
        v: int,
        target: int,
        non_source: List[ECS],
        source_ecss: List[ECS],
        frontier: Optional[_Frontier],
    ) -> Optional[int]:
        if self._enum_serial:
            # cost-objective enumeration (resuming the search past the first
            # success) is strictly serial by contract: no publishing, no
            # stealing, so the candidate set matches the intra_workers=1
            # search exactly.  Workers never enumerate either -- they enter
            # through _ep_ecs, not run(), even though the shipped options
            # carry objective / candidate_limit.
            return super()._run_ecs_loop(v, target, non_source, source_ecss, frontier)
        frame: Dict[ECS, int] = {}
        if self._pool is not None:
            frame = self._maybe_publish(v, target, list(non_source) + list(source_ecss))
        # a frame is pushed even when empty: _ecs_entering_point must only see
        # THIS node's forked tasks (equal ECS frozensets recur across nodes)
        self._frames.append(frame)
        try:
            return super()._run_ecs_loop(v, target, non_source, source_ecss, frontier)
        finally:
            self._frames.pop()
            for task_id in frame.values():
                state = self._tasks[task_id]
                if state.status not in ("resolved", "discarded"):
                    # serial order early-exited before this ECS's turn: the
                    # serial search never computes it, so the speculative
                    # result is dropped unmerged (late replies are ignored)
                    state.status = "discarded"
                    self.stats["discarded"] += 1
                    self._outstanding -= 1

    def _ecs_entering_point(
        self, ecs: ECS, v: int, target: int, frontier: Optional[_Frontier]
    ) -> Optional[int]:
        frame = self._frames[-1] if self._frames else None
        task_id = frame.get(ecs) if frame else None
        if task_id is None:
            return self._ep_ecs(ecs, v, target, frontier)
        state = self._tasks[task_id]
        outcome = self._obtain(state)
        if outcome is None:
            self._resolve(state, "inline")
            return self._ep_ecs(ecs, v, target, frontier)
        entering = self._splice(outcome, v)
        if entering is _INVALID_SPLICE:
            self._resolve(state, "invalid_splice")
            return self._ep_ecs(ecs, v, target, frontier)
        self._resolve(state, "stolen_by_workers" if state.pid else "parent_detached")
        return entering

    def _maybe_publish(
        self, v: int, target: int, ordered: List[ECS]
    ) -> Dict[ECS, int]:
        if len(ordered) < 2:
            return {}
        live = self._pool.live_helpers()
        if not live:
            return {}
        # the parent is about to descend into ordered[0] itself -- publishing
        # it would only make a worker race the parent for the subtree the
        # parent computes next anyway; offer the *later* candidates instead
        # (the classic "run the first child, steal the rest" split)
        ordered = ordered[1:]
        # the entering-point target always lies on the current DFS path (the
        # recursion only ever passes path ancestors); keep a defensive gate
        target_depth = self.tree.nodes[target].depth
        path = self.tree._path
        if target_depth >= len(path) or path[target_depth] != target:
            return {}
        capacity = OUTSTANDING_PER_HELPER * len(live) - self._outstanding
        if capacity <= 0:
            return {}
        preferred = prefer_disjoint_forks(self.net, ordered)
        chosen = [ordered[index] for index in preferred[:capacity]]
        prefix_tids = tuple(self.tree.nodes[node].tid for node in path[1:])
        frame: Dict[ECS, int] = {}
        envelopes: List[_SubtreeTask] = []
        for ecs in chosen:
            task_id = self._task_counter
            self._task_counter += 1
            fault = _fault_hook(task_id) if _fault_hook is not None else None
            envelopes.append(
                _SubtreeTask(
                    task_id=task_id,
                    epoch=self._epoch,
                    fingerprint=self._fingerprint,
                    handle=self._handle,
                    payload=self._payload,
                    options_blob=self._options_blob,
                    source=self.source,
                    prefix_tids=prefix_tids,
                    target_depth=target_depth,
                    ecs_names=self._sorted_ecs[self._ecs_id_of[ecs]],
                    fault=fault,
                )
            )
            self._tasks[task_id] = _TaskState(task_id)
            frame[ecs] = task_id
        if _publish_order_hook is not None:
            envelopes = list(_publish_order_hook(list(envelopes)))
        for envelope in envelopes:
            self._pool.task_queue.put(envelope)
        self.stats["forks"] += 1
        self.stats["published"] += len(envelopes)
        self._outstanding += len(envelopes)
        return frame

    # -- waiting, stealing, degradation --------------------------------------

    def _obtain(self, state: _TaskState) -> Optional[SubtreeOutcome]:
        """Block until ``state`` resolves; ``None`` means "recompute inline".

        While waiting the parent makes progress: it pulls the needed
        envelope back off the queue if nobody claimed it (then runs it at
        the serial point, the cheapest rung), steals *other* open tasks and
        runs them detached, and watches claimed tasks' workers for death.
        """
        deadline = time.monotonic() + STALL_TIMEOUT
        while True:
            if self._drain_results():
                deadline = time.monotonic() + STALL_TIMEOUT
            if state.status == "done":
                return state.outcome
            if state.status == "error":
                self._warn_degraded(state.message or "worker error")
                return None
            if state.status == "published":
                if self._pull_specific(state):
                    return None  # parent claims it: run inline, serially
            elif state.status == "claimed":
                helper = self._pool.helper_by_pid(state.pid)
                if helper is None or not helper.is_alive():
                    self._warn_degraded(f"worker pid {state.pid} died mid-subtree")
                    return None
            if self._steal_one():
                deadline = time.monotonic() + STALL_TIMEOUT
                continue
            if not self._wait_result(0.02) and time.monotonic() > deadline:
                self._warn_degraded("stalled waiting for a stolen subtree")
                return None

    def _pull_specific(self, state: _TaskState) -> bool:
        """Try to take ``state``'s own unclaimed envelope off the task queue."""
        put_back: List[_SubtreeTask] = []
        found = False
        while True:
            try:
                envelope = self._pool.task_queue.get_nowait()
            except queue_module.Empty:
                break
            if envelope is None or envelope.epoch != self._epoch:
                continue  # stale leftover: drop
            if envelope.task_id == state.task_id:
                found = True
                break
            put_back.append(envelope)
        for envelope in put_back:
            self._pool.task_queue.put(envelope)
        return found

    def _steal_one(self) -> bool:
        """Pull one open task and run it detached in-process (parent steal)."""
        try:
            envelope = self._pool.task_queue.get_nowait()
        except queue_module.Empty:
            return False
        if envelope is None or envelope.epoch != self._epoch:
            return True  # drained a dead envelope: that is progress
        state = self._tasks.get(envelope.task_id)
        if state is None or state.status != "published":
            return True  # discarded or already handled: drained it
        if envelope.fault is not None and self._pool.live_helpers():
            # injected faults simulate *worker* failures; hand the envelope
            # back so a worker (not the parent) actually exercises the path
            self._pool.task_queue.put(envelope)
            return False
        try:
            outcome = run_subtree_task(
                self.net, envelope, self._shipped_options, analysis=self.analysis
            )
        except Exception as exc:  # pragma: no cover - same code as serial
            state.status = "error"
            state.message = f"{type(exc).__name__}: {exc}"
            return True
        state.status = "done"
        state.pid = None
        state.outcome = outcome
        return True

    def _handle_message(self, message) -> None:
        kind, task_id, epoch = message[0], message[1], message[2]
        if epoch != self._epoch:
            return
        state = self._tasks.get(task_id)
        if state is None or state.status in ("resolved", "discarded", "done", "error"):
            return  # late reply for a task the parent already settled
        if kind == "claimed":
            if state.status == "published":
                state.status = "claimed"
                state.pid = message[3]
        elif kind == "done":
            state.status = "done"
            state.outcome = message[3]
        elif kind == "error":
            state.status = "error"
            state.message = message[3]

    def _drain_results(self) -> int:
        processed = 0
        while True:
            try:
                message = self._pool.result_queue.get_nowait()
            except queue_module.Empty:
                return processed
            processed += 1
            self._handle_message(message)

    def _wait_result(self, timeout: float) -> bool:
        try:
            message = self._pool.result_queue.get(timeout=timeout)
        except queue_module.Empty:
            return False
        self._handle_message(message)
        return True

    def _warn_degraded(self, reason: str) -> None:
        self.stats["worker_failures"] = int(self.stats["worker_failures"]) + 1
        if not self._warned_degraded:
            self._warned_degraded = True
            warnings.warn(
                f"intra-search worker degraded ({reason}); completing the "
                "affected subtree(s) inline on the parent",
                RuntimeWarning,
            )

    def _resolve(self, state: _TaskState, how: str) -> None:
        if state.status not in ("resolved", "discarded"):
            self._outstanding -= 1
        state.status = "resolved"
        self.stats[how] = int(self.stats[how]) + 1

    # -- the deterministic merge ---------------------------------------------

    def _splice(self, outcome: SubtreeOutcome, v: int):
        """Replay a detached subtree onto the shared tree, in allocation order.

        Local indices below the prefix length map to the parent's current
        DFS path (the subtree's replayed prefix IS the path root..v); every
        other local index maps to ``offset + (local - prefix_len)`` where
        ``offset`` is the parent tree's next node index -- which makes the
        spliced indices exactly the ones the serial search would have
        allocated, because the parent consumes ECS results in serial order.
        """
        offset = len(self.tree.nodes)
        if offset + outcome.nodes_allocated >= self.options.max_nodes:
            # too close to the node budget: the worker's smaller local
            # indices made ITS budget checks more permissive than the serial
            # search's would have been at these indices; recompute inline so
            # budget-coupled behaviour stays byte-identical
            return _INVALID_SPLICE
        path = self.tree._path  # root..v == the task's replayed prefix
        prefix_len = outcome.prefix_len
        if len(path) != prefix_len or path[-1] != v:
            return _INVALID_SPLICE  # defensive; cannot happen in-order

        def translate(local: int) -> int:
            if local < prefix_len:
                return path[local]
            return offset + (local - prefix_len)

        for parent_local, tid, vec, ecs_choice, equal_local in outcome.records:
            index = self.tree.add_child(translate(parent_local), tid, vec)
            node = self.tree.nodes[index]
            if ecs_choice is not None:
                node.ecs_choice = ecs_choice
            if equal_local is not None:
                node.equal_ancestor = translate(equal_local)
        # re-intern the subtree's store delta (probe markings included) so
        # the final interned_markings total matches the serial search's --
        # interning is idempotent, the admitted sets are equal
        self.tree.store.intern_many(outcome.new_vecs)
        self.counters.merge(SearchCounters(**outcome.counters))
        if outcome.entering_local is None:
            return UNDEF
        return translate(outcome.entering_local)
