"""Static, timing-aware cost objective for candidate schedules.

The first-valid-schedule search (``objective="first"``) stops at the first
schedule satisfying the Section 4.1 properties.  With ``objective="cost"``
the search enumerates up to ``candidate_limit`` distinct valid schedules and
selects the one minimising the score computed here -- *statically*, from the
schedule structure alone, without running a simulation:

* **computation / communication cycles** -- every reaction segment (await
  node to next await node) is walked symbolically; the code fragments on the
  traversed transitions are measured by a static mirror of the FlowC
  interpreter's operation counting (:class:`_StaticInterpreter`), and the
  port arcs of each transition are classified with the single-task rules of
  :class:`repro.runtime.simulation.SingleTaskSimulation` (channel places are
  intra-task buffers, environment places are latched arrays);
* **context switches** -- each await node beyond the first is a dispatch
  boundary of the quasi-static task and is charged one context switch plus
  the per-event ISR dispatch;
* **latency / jitter** -- when processes carry ``WCET(n)`` annotations
  (:attr:`repro.petrinet.net.PetriNet.process_wcet`), the latency of a
  reaction path is the prefix sum of per-transition WCETs up to the *last*
  environment output write.  Whole-path WCET sums are invariant under
  reordering, prefix-to-output sums are not, which is exactly what makes the
  term discriminate interleavings; jitter is the max-min spread across paths.

The score is an integer and the selection in
:meth:`repro.scheduling.ep._EPSearch._select_by_cost` breaks ties on the
canonical schedule fingerprint, so the winner is a pure function of
(net, source, options) -- independent of backend, worker count and
enumeration order.

The same machinery powers :func:`predict_single_task`, the predictor checked
against :class:`~repro.runtime.simulation.SingleTaskSimulation` by the corpus
differential harness: context-switch and communication counts must match the
simulation *exactly* (they are derived from arcs and schedule structure, not
from data), operation counts are exact whenever control flow is statically
decidable and otherwise flagged via ``exact_operations``.

This module must not import :mod:`repro.scheduling.ep` (the search imports
the scorer lazily); it depends only on the schedule graph, the net and the
cost tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.flowc.ast_nodes import (
    Assignment,
    BinaryOp,
    Block,
    Break,
    Call,
    Conditional,
    Continue,
    Declaration,
    Expression,
    ExprStatement,
    FloatLiteral,
    For,
    Identifier,
    If,
    Index,
    IntLiteral,
    PostfixOp,
    ReadData,
    Return,
    SelectExpr,
    Statement,
    StringLiteral,
    Switch,
    UnaryOp,
    While,
    WriteData,
    walk_statements,
)
from repro.flowc.compiler import SelectCondition
from repro.flowc.interpreter import BUILTIN_FUNCTIONS, OperationCounter
from repro.runtime.channels import CommunicationStats
from repro.runtime.cost_model import PROFILES, CostModel
from repro.scheduling.schedule import Schedule, ScheduleNode

# Weights of the WCET-derived terms relative to the (already cycle-valued)
# computation/communication/framework terms.  They only discriminate when
# candidates tie on everything else, so the absolute magnitude is not
# critical; they are pinned so scores are stable across releases.
LATENCY_WEIGHT = 4
JITTER_WEIGHT = 2

# Fan-out / unrolling safety caps for the symbolic walk.  Exceeding either
# cap degrades the prediction to "inexact" instead of failing.
MAX_SEGMENT_PATHS = 64
MAX_STATIC_LOOP_ITERATIONS = 65536

# The profile the score is computed under; pfc has computation_scale 1.0 so
# every term is integral by construction.
SCORE_PROFILE = "pfc"


class _Unknown:
    """Sentinel for values the static walk cannot determine."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<unknown>"


UNKNOWN = _Unknown()


def _known(value: Any) -> bool:
    return not isinstance(value, _Unknown)


def _copy_value(value: Any) -> Any:
    return list(value) if isinstance(value, list) else value


def _poison_value(value: Any) -> Any:
    """Forget a value while keeping its scalar/array kind (the kind decides
    how READ_DATA stores are counted, so it must survive poisoning)."""
    if isinstance(value, list):
        return [UNKNOWN] * len(value)
    return UNKNOWN


class _ProcessState:
    """Static mirror of :class:`repro.flowc.interpreter.Environment`.

    ``default_unknown`` selects what an undeclared variable reads as: the
    real interpreter defaults to 0, which is the right mirror when the
    hoisted declarations have been replayed (prediction mode); when scoring
    without a linked system the initial values are unavailable, so undeclared
    reads are UNKNOWN to avoid constant-folding on wrong values.
    """

    __slots__ = ("variables", "default_unknown")

    def __init__(self, default_unknown: bool):
        self.variables: Dict[str, Any] = {}
        self.default_unknown = default_unknown

    def get(self, name: str) -> Any:
        if name not in self.variables:
            self.variables[name] = UNKNOWN if self.default_unknown else 0
        return self.variables[name]

    def set(self, name: str, value: Any) -> None:
        self.variables[name] = value

    def clone(self) -> "_ProcessState":
        copy = _ProcessState(self.default_unknown)
        copy.variables = {k: _copy_value(v) for k, v in self.variables.items()}
        return copy


def _copy_stats(stats: CommunicationStats) -> CommunicationStats:
    clone = CommunicationStats()
    clone.merge(stats)
    return clone


def _counter_delta(after: OperationCounter, before: OperationCounter) -> OperationCounter:
    delta = OperationCounter()
    for f in fields(OperationCounter):
        setattr(delta, f.name, getattr(after, f.name) - getattr(before, f.name))
    return delta


def _counters_equal(a: OperationCounter, b: OperationCounter) -> bool:
    return all(getattr(a, f.name) == getattr(b, f.name) for f in fields(OperationCounter))


def _stats_equal(a: CommunicationStats, b: CommunicationStats) -> bool:
    return all(getattr(a, f.name) == getattr(b, f.name) for f in fields(CommunicationStats))


def _cycle_weight(delta: OperationCounter) -> float:
    """Deterministic arm-selection weight: the pfc cycle value of a delta."""
    model = CostModel()
    comm_proxy = (
        delta.reads + delta.writes + delta.items_read + delta.items_written
    )
    return model.cycle_costs.computation_cycles(delta) + comm_proxy


@dataclass
class _BranchState:
    """One symbolic execution branch: variable state plus running totals."""

    states: Dict[str, _ProcessState]
    default_unknown: bool
    counter: OperationCounter = field(default_factory=OperationCounter)
    comm: CommunicationStats = field(default_factory=CommunicationStats)
    steps: int = 0
    wcet_prefix: int = 0
    latency: Optional[int] = None
    node: int = 0
    exact_ops: bool = True
    exact_comm: bool = True
    visited: Set[int] = field(default_factory=set)
    truncated: bool = False

    def state_of(self, process: str) -> _ProcessState:
        if process not in self.states:
            self.states[process] = _ProcessState(self.default_unknown)
        return self.states[process]

    def clone(self) -> "_BranchState":
        return _BranchState(
            states={name: state.clone() for name, state in self.states.items()},
            default_unknown=self.default_unknown,
            counter=self.counter.copy(),
            comm=_copy_stats(self.comm),
            steps=self.steps,
            wcet_prefix=self.wcet_prefix,
            latency=self.latency,
            node=self.node,
            exact_ops=self.exact_ops,
            exact_comm=self.exact_comm,
            visited=set(self.visited),
            truncated=self.truncated,
        )

    def adopt(self, other: "_BranchState") -> None:
        self.states = other.states
        self.counter = other.counter
        self.comm = other.comm
        self.steps = other.steps
        self.wcet_prefix = other.wcet_prefix
        self.latency = other.latency
        self.node = other.node
        self.exact_ops = other.exact_ops
        self.exact_comm = other.exact_comm
        self.visited = other.visited
        self.truncated = other.truncated


class _StaticBreak(Exception):
    pass


class _StaticContinue(Exception):
    pass


class _StaticReturn(Exception):
    pass


def _assigned_names(statements: Sequence[Statement]) -> Set[str]:
    """Names a statement sequence may write to (for poisoning on unknown
    control flow).  Conservative: includes READ_DATA targets and declarators."""

    names: Set[str] = set()

    def target_name(expr: Expression) -> None:
        if isinstance(expr, UnaryOp) and expr.op in ("&", "*"):
            target_name(expr.operand)
        elif isinstance(expr, Identifier):
            names.add(expr.name)
        elif isinstance(expr, Index):
            target_name(expr.base)

    def scan_expr(expr: Optional[Expression]) -> None:
        if expr is None:
            return
        if isinstance(expr, Assignment):
            target_name(expr.target)
            scan_expr(expr.value)
        elif isinstance(expr, (UnaryOp, PostfixOp)):
            if expr.op in ("++", "--"):
                target_name(expr.operand)
            scan_expr(expr.operand)
        elif isinstance(expr, BinaryOp):
            scan_expr(expr.left)
            scan_expr(expr.right)
        elif isinstance(expr, Conditional):
            scan_expr(expr.condition)
            scan_expr(expr.then)
            scan_expr(expr.other)
        elif isinstance(expr, Call):
            for arg in expr.args:
                scan_expr(arg)
        elif isinstance(expr, Index):
            scan_expr(expr.base)
            scan_expr(expr.index)

    for statement in walk_statements(statements):
        if isinstance(statement, Declaration):
            for declarator in statement.declarators:
                names.add(declarator.name)
        elif isinstance(statement, ExprStatement):
            scan_expr(statement.expr)
        elif isinstance(statement, (If, While)):
            scan_expr(statement.condition)
        elif isinstance(statement, For):
            scan_expr(statement.init)
            scan_expr(statement.condition)
            scan_expr(statement.update)
        elif isinstance(statement, Switch):
            scan_expr(statement.subject)
        elif isinstance(statement, ReadData):
            target_name(statement.target)
            scan_expr(statement.nitems)
        elif isinstance(statement, WriteData):
            scan_expr(statement.value)
            scan_expr(statement.nitems)
        elif isinstance(statement, Return):
            scan_expr(statement.value)
    return names


class _StaticInterpreter:
    """Mirror of :class:`repro.flowc.interpreter.Interpreter` over partially
    known values.

    Every counting rule is replicated verbatim from the interpreter; when a
    control decision depends on an unknown value the interpreter speculates
    both arms, keeps the heavier one (deterministically: first arm on ties),
    poisons the variables either arm writes, and clears ``exact_ops``.
    """

    def __init__(self, branch: _BranchState, process: str):
        self.branch = branch
        self.env = branch.state_of(process)
        self.process = process
        self.counter = branch.counter

    # -- statements ---------------------------------------------------------
    def run(self, statements: Sequence[Statement]) -> None:
        try:
            self.execute_block(statements)
        except _StaticReturn:
            pass
        except (_StaticBreak, _StaticContinue):
            self.branch.exact_ops = False

    def execute_block(self, statements: Sequence[Statement]) -> None:
        for statement in statements:
            self.execute(statement)

    def execute(self, statement: Statement) -> None:
        if isinstance(statement, Declaration):
            self._execute_declaration(statement)
        elif isinstance(statement, ExprStatement):
            self.evaluate(statement.expr)
        elif isinstance(statement, Block):
            self.execute_block(statement.statements)
        elif isinstance(statement, If):
            self.counter.branches += 1
            condition = self.evaluate(statement.condition)
            if _known(condition):
                if self._truth(condition):
                    self.execute_block(statement.then_body)
                elif statement.else_body is not None:
                    self.execute_block(statement.else_body)
            else:
                arms = [lambda i, s=statement: i.execute_block(s.then_body)]
                if statement.else_body is not None:
                    arms.append(lambda i, s=statement: i.execute_block(s.else_body))
                else:
                    arms.append(lambda i: None)
                self._speculate(arms)
        elif isinstance(statement, While):
            self._execute_while(statement)
        elif isinstance(statement, For):
            self._execute_for(statement)
        elif isinstance(statement, Switch):
            self._execute_switch(statement)
        elif isinstance(statement, Break):
            raise _StaticBreak()
        elif isinstance(statement, Continue):
            raise _StaticContinue()
        elif isinstance(statement, Return):
            if statement.value is not None:
                self.evaluate(statement.value)
            raise _StaticReturn()
        elif isinstance(statement, ReadData):
            self._execute_read(statement)
        elif isinstance(statement, WriteData):
            self._execute_write(statement)
        else:
            self.branch.exact_ops = False

    def _execute_declaration(self, statement: Declaration) -> None:
        for declarator in statement.declarators:
            if declarator.array_size is not None:
                size = self.evaluate(declarator.array_size)
                if _known(size):
                    self.env.set(declarator.name, [0] * int(size))
                else:
                    self.env.set(declarator.name, UNKNOWN)
                    self.branch.exact_ops = False
            elif declarator.init is not None:
                self.env.set(declarator.name, self.evaluate(declarator.init))
                self.counter.assignments += 1
            else:
                self.env.set(declarator.name, 0)

    def _poison(self, statements: Sequence[Statement]) -> None:
        for name in _assigned_names(statements):
            self.env.set(name, _poison_value(self.env.get(name)))

    def _execute_while(self, statement: While) -> None:
        iterations = 0
        while True:
            self.counter.branches += 1
            condition = self.evaluate(statement.condition)
            if not _known(condition):
                self._poison(statement.body)
                self.branch.exact_ops = False
                return
            if not self._truth(condition):
                return
            iterations += 1
            if iterations > MAX_STATIC_LOOP_ITERATIONS:
                self._poison(statement.body)
                self.branch.exact_ops = False
                return
            try:
                self.execute_block(statement.body)
            except _StaticBreak:
                return
            except _StaticContinue:
                continue

    def _execute_for(self, statement: For) -> None:
        if statement.init is not None:
            self.evaluate(statement.init)
        iterations = 0
        while True:
            if statement.condition is not None:
                self.counter.branches += 1
                condition = self.evaluate(statement.condition)
                if not _known(condition):
                    self._poison(statement.body)
                    if statement.update is not None:
                        self._poison([ExprStatement(statement.update)])
                    self.branch.exact_ops = False
                    return
                if not self._truth(condition):
                    return
            iterations += 1
            if iterations > MAX_STATIC_LOOP_ITERATIONS:
                self._poison(statement.body)
                self.branch.exact_ops = False
                return
            try:
                self.execute_block(statement.body)
            except _StaticBreak:
                return
            except _StaticContinue:
                pass
            if statement.update is not None:
                self.evaluate(statement.update)

    def _execute_switch(self, statement: Switch) -> None:
        subject = self.evaluate(statement.subject)
        self.counter.branches += 1
        if _known(subject):
            default_case = None
            for case in statement.cases:
                if case.value is None:
                    default_case = case
                    continue
                value = self.evaluate(case.value)
                if not _known(value):
                    self._switch_unknown(statement)
                    return
                if value == subject:
                    self._run_case(case.body)
                    return
            if default_case is not None:
                self._run_case(default_case.body)
            return
        self._switch_unknown(statement)

    def _switch_unknown(self, statement: Switch) -> None:
        arms: List[Callable[["_StaticInterpreter"], None]] = [
            lambda i, c=case: i._run_case(c.body) for case in statement.cases
        ]
        if not any(case.value is None for case in statement.cases):
            arms.append(lambda i: None)
        self._speculate(arms)
        self.branch.exact_ops = False

    def _run_case(self, body: Sequence[Statement]) -> None:
        try:
            self.execute_block(body)
        except _StaticBreak:
            pass

    def _execute_read(self, statement: ReadData) -> None:
        nitems_value = self.evaluate(statement.nitems)
        nitems = int(nitems_value) if _known(nitems_value) else 1
        if not _known(nitems_value):
            self.branch.exact_ops = False
            self.branch.exact_comm = False
        self.counter.reads += 1
        self.counter.items_read += nitems
        target = statement.target
        if isinstance(target, UnaryOp) and target.op == "&":
            target = target.operand
        if isinstance(target, Identifier):
            current = self.env.get(target.name)
            if isinstance(current, list) and nitems >= 1:
                for offset in range(min(nitems, len(current))):
                    current[offset] = UNKNOWN
                self.counter.memory += nitems
            else:
                if not _known(current) and self.env.default_unknown:
                    # without the declarations (score mode) an undeclared
                    # target could be an array; assume the scalar store shape
                    self.branch.exact_ops = False
                self.env.set(target.name, UNKNOWN)
            self.counter.assignments += 1
            return
        if isinstance(target, Index):
            base, index = self._resolve_index(target)
            if nitems != 1:
                if isinstance(base, list) and _known(index):
                    for offset in range(min(nitems, max(0, len(base) - int(index)))):
                        base[int(index) + offset] = UNKNOWN
                elif isinstance(base, list):
                    for offset in range(len(base)):
                        base[offset] = UNKNOWN
                self.counter.memory += nitems
                return
            if isinstance(base, list):
                if _known(index) and 0 <= int(index) < len(base):
                    base[int(index)] = UNKNOWN
                else:
                    for offset in range(len(base)):
                        base[offset] = UNKNOWN
            self.counter.assignments += 1
            self.counter.memory += 1
            return
        self.branch.exact_ops = False

    def _execute_write(self, statement: WriteData) -> None:
        nitems_value = self.evaluate(statement.nitems)
        self.evaluate(statement.value)
        nitems = int(nitems_value) if _known(nitems_value) else 1
        if not _known(nitems_value):
            self.branch.exact_ops = False
            self.branch.exact_comm = False
        self.counter.writes += 1
        self.counter.items_written += nitems

    # -- expressions --------------------------------------------------------
    def evaluate(self, expr: Expression) -> Any:
        if isinstance(expr, IntLiteral):
            return expr.value
        if isinstance(expr, FloatLiteral):
            return expr.value
        if isinstance(expr, StringLiteral):
            return expr.value
        if isinstance(expr, Identifier):
            return self.env.get(expr.name)
        if isinstance(expr, Index):
            base, index = self._resolve_index(expr)
            self.counter.memory += 1
            if isinstance(base, list) and _known(index) and 0 <= int(index) < len(base):
                return base[int(index)]
            return UNKNOWN
        if isinstance(expr, UnaryOp):
            return self._evaluate_unary(expr)
        if isinstance(expr, PostfixOp):
            return self._evaluate_postfix(expr)
        if isinstance(expr, BinaryOp):
            return self._evaluate_binary(expr)
        if isinstance(expr, Assignment):
            return self._evaluate_assignment(expr)
        if isinstance(expr, Conditional):
            self.counter.branches += 1
            condition = self.evaluate(expr.condition)
            if _known(condition):
                if self._truth(condition):
                    return self.evaluate(expr.then)
                return self.evaluate(expr.other)
            self._speculate(
                [
                    lambda i, e=expr: (i.evaluate(e.then), None)[1],
                    lambda i, e=expr: (i.evaluate(e.other), None)[1],
                ]
            )
            return UNKNOWN
        if isinstance(expr, Call):
            return self._evaluate_call(expr)
        if isinstance(expr, SelectExpr):
            return self._evaluate_select(expr)
        self.branch.exact_ops = False
        return UNKNOWN

    def _truth(self, value: Any) -> bool:
        if isinstance(value, list):
            return bool(value)
        return bool(value)

    def _resolve_index(self, expr: Index) -> Tuple[Any, Any]:
        base = self.evaluate(expr.base)
        index = self.evaluate(expr.index)
        return base, index

    def _evaluate_unary(self, expr: UnaryOp) -> Any:
        if expr.op == "&":
            return self.evaluate(expr.operand)
        if expr.op in ("++", "--"):
            delta = 1 if expr.op == "++" else -1
            value = self.evaluate(expr.operand)
            value = value + delta if _known(value) else UNKNOWN
            self._assign_to(expr.operand, value)
            self.counter.arithmetic += 1
            self.counter.assignments += 1
            return value
        operand = self.evaluate(expr.operand)
        self.counter.arithmetic += 1
        if not _known(operand):
            return UNKNOWN
        if expr.op == "-":
            return -operand
        if expr.op == "+":
            return operand
        if expr.op == "!":
            return 0 if self._truth(operand) else 1
        if expr.op == "~":
            return ~int(operand)
        if expr.op == "*":
            return operand
        return UNKNOWN

    def _evaluate_postfix(self, expr: PostfixOp) -> Any:
        value = self.evaluate(expr.operand)
        updated = value + (1 if expr.op == "++" else -1) if _known(value) else UNKNOWN
        self._assign_to(expr.operand, updated)
        self.counter.arithmetic += 1
        self.counter.assignments += 1
        return value

    def _evaluate_binary(self, expr: BinaryOp) -> Any:
        left = self.evaluate(expr.left)
        if expr.op in ("&&", "||"):
            self.counter.comparisons += 1
            if _known(left):
                left_truth = self._truth(left)
                if expr.op == "&&" and not left_truth:
                    return 0
                if expr.op == "||" and left_truth:
                    return 1
                right = self.evaluate(expr.right)
                if not _known(right):
                    return UNKNOWN
                return 1 if self._truth(right) else 0
            # unknown left operand: the right side may or may not run
            self._speculate(
                [
                    lambda i, e=expr: (i.evaluate(e.right), None)[1],
                    lambda i: None,
                ]
            )
            return UNKNOWN
        right = self.evaluate(expr.right)
        op = expr.op
        if op in ("==", "!=", "<", ">", "<=", ">="):
            self.counter.comparisons += 1
            if not (_known(left) and _known(right)):
                return UNKNOWN
            result = {
                "==": left == right,
                "!=": left != right,
                "<": left < right,
                ">": left > right,
                "<=": left <= right,
                ">=": left >= right,
            }[op]
            return 1 if result else 0
        self.counter.arithmetic += 1
        if not (_known(left) and _known(right)):
            return UNKNOWN
        return self._apply_arith(op, left, right)

    def _apply_arith(self, op: str, left: Any, right: Any) -> Any:
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0:
                    return UNKNOWN
                if isinstance(left, int) and isinstance(right, int):
                    return int(left / right) if (left < 0) != (right < 0) else left // right
                return left / right
            if op == "%":
                if right == 0:
                    return UNKNOWN
                return left - right * int(left / right) if isinstance(left, int) else left % right
            if op == "&":
                return int(left) & int(right)
            if op == "|":
                return int(left) | int(right)
            if op == "^":
                return int(left) ^ int(right)
            if op == "<<":
                return int(left) << int(right)
            if op == ">>":
                return int(left) >> int(right)
        except (TypeError, ValueError):
            return UNKNOWN
        return UNKNOWN

    def _evaluate_assignment(self, expr: Assignment) -> Any:
        value = self.evaluate(expr.value)
        if expr.op != "=":
            current = self.evaluate(expr.target)
            self.counter.arithmetic += 1
            if _known(current) and _known(value):
                value = self._apply_arith(expr.op[0], current, value)
            else:
                value = UNKNOWN
        self._assign_to(expr.target, value)
        self.counter.assignments += 1
        return value

    def _assign_to(self, target: Expression, value: Any) -> None:
        if isinstance(target, UnaryOp) and target.op in ("&", "*"):
            target = target.operand
        if isinstance(target, Identifier):
            self.env.set(target.name, value)
            return
        if isinstance(target, Index):
            base, index = self._resolve_index(target)
            self.counter.memory += 1
            if isinstance(base, list):
                if _known(index) and 0 <= int(index) < len(base):
                    base[int(index)] = value
                else:
                    for offset in range(len(base)):
                        base[offset] = UNKNOWN
            return
        self.branch.exact_ops = False

    def _evaluate_call(self, expr: Call) -> Any:
        args = [self.evaluate(arg) for arg in expr.args]
        self.counter.calls += 1
        function = BUILTIN_FUNCTIONS.get(expr.name)
        if function is not None and all(_known(arg) for arg in args):
            try:
                return function(*args)
            except (TypeError, ValueError):
                return UNKNOWN
        return UNKNOWN

    def _evaluate_select(self, expr: SelectExpr) -> Any:
        for _port, count in expr.entries:
            self.evaluate(count)
        self.counter.selects += 1
        self.branch.comm.selects += 1
        return UNKNOWN

    # -- speculation --------------------------------------------------------
    def _speculate(self, arms: List[Callable[["_StaticInterpreter"], None]]) -> None:
        """Run each arm on a clone, keep the heaviest, poison divergent state.

        Deterministic: the first arm wins ties.  Any difference between arm
        deltas clears ``exact_ops``; any communication inside an arm clears
        ``exact_comm`` too (arms of a data-dependent choice with port traffic
        cannot be predicted without the data).
        """
        base = self.branch
        results: List[_BranchState] = []
        for arm in arms:
            clone = base.clone()
            interpreter = _StaticInterpreter(clone, self.process)
            try:
                arm(interpreter)
            except (_StaticBreak, _StaticContinue, _StaticReturn):
                clone.exact_ops = False
            results.append(clone)
        deltas = [_counter_delta(result.counter, base.counter) for result in results]
        best = 0
        best_weight = _cycle_weight(deltas[0])
        for i in range(1, len(results)):
            weight = _cycle_weight(deltas[i])
            if weight > best_weight:
                best, best_weight = i, weight
        winner = results[best]
        if any(not _counters_equal(deltas[i], deltas[best]) for i in range(len(deltas))):
            winner.exact_ops = False
        if any(
            d.reads or d.writes or d.items_read or d.items_written or d.selects
            for d in deltas
        ):
            winner.exact_comm = False
        if any(not _stats_equal(results[i].comm, winner.comm) for i in range(len(results))):
            winner.exact_comm = False
        # poison variables whose value differs across arms
        for process, winner_state in winner.states.items():
            for name in list(winner_state.variables):
                value = winner_state.variables[name]
                for other in results:
                    other_value = other.state_of(process).variables.get(name, UNKNOWN)
                    if not _known(other_value) or not _known(value) or other_value != value:
                        winner_state.variables[name] = _poison_value(value)
                        break
        base.adopt(winner)
        # self.env may now be stale; re-bind to the adopted state
        self.env = base.state_of(self.process)
        self.counter = base.counter


# ---------------------------------------------------------------------------
# schedule walking
# ---------------------------------------------------------------------------


def _choice_place_of(schedule: Schedule, node: ScheduleNode):
    """The shared choice place of a multi-edge node (mirror of
    :meth:`repro.codegen.task.ExecutableTask._choice_place_of`)."""
    net = schedule.net
    transitions = list(node.edges)
    for place in net.pre[transitions[0]]:
        obj = net.places[place]
        if obj.condition is not None and all(place in net.pre[t] for t in transitions):
            return obj
    return None


def _resolve_choice(schedule: Schedule, node: ScheduleNode, branch: _BranchState) -> List[str]:
    """Statically resolve a data-dependent choice; returns the edges the
    execution may take (a single edge when the condition folds)."""
    place = _choice_place_of(schedule, node)
    edges = sorted(node.edges)
    if place is None or place.condition is None:
        branch.exact_ops = False
        branch.exact_comm = False
        return edges
    net = schedule.net
    guards = {t: net.transitions[t].guard for t in node.edges}
    if isinstance(place.condition, SelectCondition):
        process = place.process or next(
            (net.transitions[t].process for t in edges if net.transitions[t].process),
            None,
        )
        if process is None:
            branch.exact_ops = False
            branch.exact_comm = False
            return edges
        interpreter = _StaticInterpreter(branch, process)
        interpreter.evaluate(place.condition.select)
        # which entry is ready depends on channel occupancy at run time
        return edges
    process = place.process
    if process is None:
        branch.exact_ops = False
        branch.exact_comm = False
        return edges
    interpreter = _StaticInterpreter(branch, process)
    value = interpreter.evaluate(place.condition)
    if not _known(value):
        return edges
    boolean_guards = set(guards.values()) <= {True, False, None}
    if boolean_guards:
        wanted = bool(value)
        chosen = [t for t in edges if guards[t] == wanted]
        return chosen or edges
    chosen = [t for t in edges if guards[t] == value]
    if chosen:
        return chosen
    chosen = [t for t in edges if guards[t] == "default"]
    return chosen or edges


def _execute_transition(schedule: Schedule, name: str, branch: _BranchState) -> None:
    """Account one executed transition: steps, WCET prefix, arc-derived
    communication (single-task classification) and the code fragment's ops."""
    net = schedule.net
    transition = net.transitions[name]
    branch.steps += 1
    if transition.process:
        branch.wcet_prefix += net.process_wcet.get(transition.process, 0)
    if transition.is_source or transition.is_sink:
        return
    for place, weight in sorted(net.pre[name].items()):
        obj = net.places[place]
        if not obj.is_port:
            continue
        if obj.channel is None:
            branch.comm.environment_reads += 1
            branch.comm.environment_items += weight
        else:
            branch.comm.intratask_reads += 1
            branch.comm.intratask_items += weight
    wrote_output = False
    for place, weight in sorted(net.post[name].items()):
        obj = net.places[place]
        if not obj.is_port:
            continue
        if obj.channel is None:
            branch.comm.environment_writes += 1
            branch.comm.environment_items += weight
            wrote_output = True
        else:
            branch.comm.intratask_writes += 1
            branch.comm.intratask_items += weight
    if wrote_output:
        branch.latency = branch.wcet_prefix
    if transition.code and transition.process:
        interpreter = _StaticInterpreter(branch, transition.process)
        interpreter.run(list(transition.code))


def _walk_segment(schedule: Schedule, branch: _BranchState) -> List[_BranchState]:
    """Symbolically execute one reaction segment: from the node after the
    await node's source edge to the next await node, fanning out at choices
    that do not fold statically.  Mirrors the stop condition of
    :meth:`repro.codegen.task.ExecutableTask.react`."""
    uncontrollable = set(schedule.net.uncontrollable_sources())
    frontier = [branch]
    done: List[_BranchState] = []
    while frontier:
        current = frontier.pop()
        node = schedule.node(current.node)
        outgoing = node.edges
        if set(outgoing) & uncontrollable:
            done.append(current)
            continue
        if not outgoing:
            current.truncated = True
            current.exact_ops = False
            current.exact_comm = False
            done.append(current)
            continue
        if node.index in current.visited:
            # a data-dependent cycle not passing through an await node; the
            # static walk cannot bound its iteration count
            current.truncated = True
            current.exact_ops = False
            current.exact_comm = False
            done.append(current)
            continue
        current.visited.add(node.index)
        if len(outgoing) == 1:
            chosen = [next(iter(outgoing))]
        else:
            chosen = _resolve_choice(schedule, node, current)
        if len(chosen) > 1 and len(frontier) + len(done) + len(chosen) > MAX_SEGMENT_PATHS:
            chosen = chosen[:1]
            current.exact_ops = False
            current.exact_comm = False
        branches = [current] if len(chosen) == 1 else [current.clone() for _ in chosen]
        for transition, child in zip(chosen, branches):
            _execute_transition(schedule, transition, child)
            child.node = outgoing[transition]
            frontier.append(child)
    return done


def _fresh_branch(schedule: Schedule, node_index: int, *, default_unknown: bool) -> _BranchState:
    branch = _BranchState(states={}, default_unknown=default_unknown)
    branch.node = node_index
    return branch


# ---------------------------------------------------------------------------
# scoring
# ---------------------------------------------------------------------------


@dataclass
class SegmentCost:
    """Cost summary of one await segment (max over its paths)."""

    await_node: int
    paths: int
    cycles: int
    steps: int
    latencies: Tuple[int, ...]
    exact: bool


@dataclass
class ScheduleCostBreakdown:
    """The additive terms behind :func:`score_schedule`."""

    score: int
    base_cycles: int
    context_switch_cycles: int
    latency: int
    jitter: int
    await_nodes: int
    segments: List[SegmentCost] = field(default_factory=list)

    @property
    def exact(self) -> bool:
        return all(segment.exact for segment in self.segments)


def _path_cycles(branch: _BranchState, model: CostModel) -> int:
    profile = PROFILES[SCORE_PROFILE]
    return int(
        round(
            model.execution_cycles(
                branch.counter,
                branch.comm,
                profile=profile,
                isr_dispatches=1,
                state_updates=branch.steps,
            )
        )
    )


def cost_breakdown(schedule: Schedule, *, cost_model: Optional[CostModel] = None) -> ScheduleCostBreakdown:
    """Statically predicted cost of executing ``schedule`` as a single task.

    Deterministic in the schedule value: segments are visited in ascending
    await-node index, paths fan out in sorted-edge order, and every term is
    an integer under the ``pfc`` profile.
    """
    model = cost_model or CostModel()
    await_nodes = sorted(node.index for node in schedule.await_nodes())
    source = schedule.source_transition
    segments: List[SegmentCost] = []
    latencies: List[int] = []
    base = 0
    for index in await_nodes:
        node = schedule.node(index)
        if source not in node.edges:
            # await node of a foreign source (non-SS schedule): it still
            # bounds the segment walked from our own await nodes, but we do
            # not originate a reaction here
            continue
        branch = _fresh_branch(schedule, node.edges[source], default_unknown=True)
        _execute_transition(schedule, source, branch)
        branch.steps -= 1  # the source edge itself is fired without execution
        paths = _walk_segment(schedule, branch)
        cycles = max(_path_cycles(path, model) for path in paths)
        steps = max(path.steps for path in paths)
        segment_latencies = tuple(
            sorted(path.latency for path in paths if path.latency is not None)
        )
        latencies.extend(segment_latencies)
        segments.append(
            SegmentCost(
                await_node=index,
                paths=len(paths),
                cycles=cycles,
                steps=steps,
                latencies=segment_latencies,
                exact=all(path.exact_ops and path.exact_comm for path in paths),
            )
        )
        base += cycles
    switch_cycles = max(0, len(await_nodes) - 1) * model.scheduling_costs.context_switch
    latency = max(latencies) if latencies else 0
    jitter = (max(latencies) - min(latencies)) if latencies else 0
    score = base + switch_cycles + LATENCY_WEIGHT * latency + JITTER_WEIGHT * jitter
    return ScheduleCostBreakdown(
        score=score,
        base_cycles=base,
        context_switch_cycles=switch_cycles,
        latency=latency,
        jitter=jitter,
        await_nodes=len(await_nodes),
        segments=segments,
    )


def score_schedule(schedule: Schedule, *, cost_model: Optional[CostModel] = None) -> int:
    """The integer objective value minimised by ``objective="cost"``."""
    return cost_breakdown(schedule, cost_model=cost_model).score


# ---------------------------------------------------------------------------
# simulation prediction (checked by the corpus differential harness)
# ---------------------------------------------------------------------------


@dataclass
class SingleTaskPrediction:
    """Statically predicted :class:`SimulationResult` counterpart."""

    operations: OperationCounter
    communication: CommunicationStats
    isr_dispatches: int
    state_updates: int
    transitions_executed: int
    context_switches: int = 0
    scheduler_decisions: int = 0
    exact_operations: bool = True
    exact_communication: bool = True

    def cycles(self, profile, cost_model: Optional[CostModel] = None) -> float:
        if isinstance(profile, str):
            profile = PROFILES[profile]
        model = cost_model or CostModel()
        return model.execution_cycles(
            self.operations,
            self.communication,
            profile=profile,
            context_switches=self.context_switches,
            scheduler_decisions=self.scheduler_decisions,
            isr_dispatches=self.isr_dispatches,
            state_updates=self.state_updates,
        )


def predict_single_task(
    system,
    schedules: Mapping[str, Schedule],
    stimulus: Mapping[str, Sequence[Any] | int],
) -> SingleTaskPrediction:
    """Predict the :class:`SingleTaskSimulation` cost counters statically.

    ``system`` is the :class:`~repro.flowc.linker.LinkedSystem` the schedules
    were computed for (supplies the hoisted declarations and the port-to-task
    mapping); ``stimulus`` maps environment input port names to the stimulus
    values (or just their count).  Context switches are always zero in the
    single-task implementation; communication and step counts are derived
    from arcs and schedule structure, so they match the simulation exactly
    whenever ``exact_communication`` holds.
    """
    branch = _BranchState(states={}, default_unknown=False)
    # each ExecutableTask replays every process's declarations at
    # construction time through the shared counter
    for _ in range(len(schedules)):
        for process_name, declarations in system.declarations.items():
            interpreter = _StaticInterpreter(branch, process_name)
            for declaration in declarations:
                interpreter.execute(declaration)
    task_of_port: Dict[str, str] = {}
    for ref, transition in system.environment_transitions.items():
        if transition in schedules:
            task_of_port[ref.port] = transition
    current_node: Dict[str, int] = {
        source: schedule.root for source, schedule in schedules.items()
    }
    isr_dispatches = 0
    exact_ops = True
    exact_comm = True
    for port, values in stimulus.items():
        events = values if isinstance(values, int) else len(values)
        source = task_of_port.get(port)
        if source is None:
            raise KeyError(f"no synthesized task serves input port {port!r}")
        schedule = schedules[source]
        for _ in range(events):
            isr_dispatches += 1
            node = schedule.node(current_node[source])
            if source not in node.edges:
                raise ValueError(
                    f"schedule for {source!r} cannot serve an event at node {node.index}"
                )
            before = branch.clone()
            branch.node = node.edges[source]
            branch.visited = set()
            branch.wcet_prefix = 0
            branch.latency = None
            _execute_transition(schedule, source, branch)
            branch.steps -= 1  # the source edge is fired without execution
            paths = _walk_segment(schedule, branch)
            deltas = [_counter_delta(path.counter, before.counter) for path in paths]
            best = 0
            best_weight = _cycle_weight(deltas[0])
            for i in range(1, len(paths)):
                weight = _cycle_weight(deltas[i])
                if weight > best_weight:
                    best, best_weight = i, weight
            winner = paths[best]
            if any(not _counters_equal(d, deltas[best]) for d in deltas):
                winner.exact_ops = False
            if any(
                not _stats_equal(path.comm, winner.comm) or path.steps != winner.steps
                for path in paths
            ):
                winner.exact_comm = False
            if any(path.node != winner.node for path in paths):
                winner.exact_ops = False
                winner.exact_comm = False
            # poison variables that differ across surviving paths
            for process, winner_state in winner.states.items():
                for name in list(winner_state.variables):
                    value = winner_state.variables[name]
                    for other in paths:
                        other_value = other.state_of(process).variables.get(name, UNKNOWN)
                        if not _known(other_value) or not _known(value) or other_value != value:
                            winner_state.variables[name] = _poison_value(value)
                            break
            exact_ops = exact_ops and winner.exact_ops
            exact_comm = exact_comm and winner.exact_comm
            branch.adopt(winner)
            current_node[source] = winner.node
    return SingleTaskPrediction(
        operations=branch.counter,
        communication=branch.comm,
        isr_dispatches=isr_dispatches,
        state_updates=branch.steps,
        transitions_executed=branch.steps,
        context_switches=0,
        scheduler_decisions=0,
        exact_operations=exact_ops,
        exact_communication=exact_comm,
    )
