"""Warm-start cache for schedules, keyed on structural fingerprints.

`VideoAppConfig` sweeps (table1 / table2 / figure20, the benchmarks, the
examples) repeatedly rebuild *new* net objects with identical structure;
every per-object cache (``IndexedNet.analysis_cache``, ``lru_cache`` over
configs) goes cold with them.  The EP search is deterministic, so for a
structurally identical net -- same places, arcs, weights, initial tokens,
source kinds, bounds, as captured by
:func:`repro.petrinet.fingerprint.structural_fingerprint` -- the resulting
schedule is identical too and can simply be replayed from its canonical
serialized form instead of re-searched.

Since the disk cache landed (:mod:`repro.cache`) the warm start is two
levels deep:

* **L1** -- the in-memory :class:`~repro.util.BoundedLRU` of this class:
  free to hit, dies with the process;
* **L2** -- the process-wide disk store (``.cache/repro/``), consulted on
  every L1 miss *when active* (:func:`repro.cache.active_store`); entries
  loaded from disk are replay-validated against the live net before being
  trusted, then promoted into L1.  Searches executed on a full miss write
  through to both levels, which is what lets a *second process* running the
  same workload skip the EP search entirely.

The cache stores successful *and* failed outcomes (a net that is not
single-source schedulable stays that way), remembers the original search
statistics (tree nodes, counters) and marks replayed results with
``SchedulerResult.from_cache``.  Only searches under a default termination
condition are cached: a caller-supplied :class:`TerminationCondition` is an
arbitrary object we cannot fingerprint, so those calls pass straight
through.

The companion warm start for the T-invariant basis lives in
:mod:`repro.petrinet.invariants` (keyed on the incidence fingerprint, which
is all a basis depends on); it layers over the same disk store.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import repro.cache as artifact_cache
from repro.petrinet.fingerprint import structural_fingerprint
from repro.util import BoundedLRU
from repro.petrinet.net import PetriNet
from repro.scheduling.ep import (
    SchedulerOptions,
    SchedulerResult,
    SchedulingFailure,
    SearchCounters,
    find_schedule,
)
from repro.scheduling.serialize import result_from_record, result_to_record

#: Aggregate counters of the EP searches *actually executed* through the
#: warm-start layer in this process (replays contribute nothing).  This is
#: how a warm process proves it did zero search work: after a fully cached
#: workload, ``LIVE_SEARCH_COUNTERS.nodes_expanded`` is still 0 (asserted by
#: ``tests/test_cache.py`` and the CI cache smoke).
LIVE_SEARCH_COUNTERS = SearchCounters()

#: Guards merges into :data:`LIVE_SEARCH_COUNTERS`.  The serving executor
#: finishes searches on many threads at once, and ``int`` ``+=`` on a
#: dataclass attribute is a read-modify-write that can drop increments
#: under that interleaving.
_LIVE_COUNTERS_LOCK = threading.Lock()


def record_live_search(counters: SearchCounters) -> None:
    """Merge one *executed* (non-replayed) search into the process tally.

    The single choke point through which every live EP search run via the
    warm-start layer or the serving daemon is accounted; thread-safe so the
    "warm process did zero search work" invariant stays exact under the
    server's concurrent executor.
    """
    with _LIVE_COUNTERS_LOCK:
        LIVE_SEARCH_COUNTERS.merge(counters)


def options_cache_key(options: SchedulerOptions) -> Optional[Tuple]:
    """Hashable identity of the options, or ``None`` when uncacheable.

    Covers every :class:`SchedulerOptions` field that can change the search
    outcome *or its accounting* -- including the EP backend, whose replayed
    counters differ (``batched_expansions``).  A caller-supplied termination
    condition is an arbitrary object with no stable fingerprint, so those
    options are uncacheable.
    """
    if options.termination is not None:
        return None
    return (
        options.single_source,
        options.use_invariant_heuristic,
        options.max_nodes,
        # validate does not change the search outcome, but a schedule cached
        # under validate=False was never checked; keep the contracts separate
        options.validate,
        options.invariant_precheck,
        options.defer_sources,
        # backends are schedule-equivalent, but the counters they record
        # differ (batched_expansions / kernel_expansions); keep replayed
        # records honest
        options.backend,
        # the objective changes which schedule is selected, so "first"
        # records must never replay for "cost" requests (and vice versa);
        # candidate_limit is dead under "first" -- normalise it to 0 there
        # so it cannot fragment the first-objective key space
        options.objective,
        options.candidate_limit if options.objective == "cost" else 0,
        # the resolved kernel tier never changes results, but keying on it
        # keeps each tier's recorded counters/timings attributable (and a
        # pinned-options fan-out hits the same entries as its workers).
        # Kept last: tests address the tier entry as key[-1]
        _effective_kernel_tier(options),
        # intra_workers is deliberately NOT part of the key: intra-search
        # work stealing is byte-identical at any worker count (the
        # repro.scheduling.intra contract), so cache records are keyed on
        # the result, not the worker topology -- a search at intra_workers=4
        # warm-starts one at intra_workers=1 and vice versa
    )


def _effective_kernel_tier(options: SchedulerOptions) -> Optional[str]:
    """The kernel tier a search under ``options`` would run, or ``None``.

    ``None`` for searches that can never reach the kernel backend (explicit
    scalar/batched requests); otherwise the pinned ``options.kernel_tier``
    or the process-wide resolution (without triggering the fallback
    warning -- key derivation is not a search).
    """
    if options.backend not in ("auto", "kernel"):
        return None
    if options.kernel_tier is not None:
        return options.kernel_tier
    from repro.petrinet.kernel import resolve_kernel_tier

    return resolve_kernel_tier(warn=False)


@dataclass
class WarmStartStats:
    """Hit/miss accounting of one cache instance.

    ``hits`` counts in-memory (L1) replays, ``disk_hits`` replays loaded and
    validated from the disk store (L2), ``misses`` full misses that ran a
    real EP search, ``uncacheable`` pass-throughs (custom termination), and
    ``disk_rejected`` entries this cache's own lookups got quarantined
    (failed wire decode, identity check or replay validation) and had to
    recompute.
    """

    hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    uncacheable: int = 0
    disk_rejected: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "disk_rejected": self.disk_rejected,
        }


class ScheduleWarmStartCache:
    """Two-level (memory LRU + optional disk) store of scheduling outcomes.

    ``store`` pins an explicit :class:`repro.cache.CacheStore` as the disk
    level; by default the process-wide active store is consulted on every
    call (so ``repro.cache.activate()`` retroactively upgrades existing
    instances, including :data:`GLOBAL_SCHEDULE_CACHE`).  Pass
    ``store=False`` to keep an instance memory-only regardless.

    Example (the second call replays instead of re-searching)::

        >>> from repro.apps.paper_nets import figure_5
        >>> cache = ScheduleWarmStartCache()
        >>> cache.find_schedule(figure_5(), "a").from_cache
        False
        >>> cache.find_schedule(figure_5(), "a").from_cache
        True
    """

    def __init__(self, capacity: int = 64, store=None):
        self.stats = WarmStartStats()
        self._store = store
        self._l1: "BoundedLRU[Tuple, Dict[str, object]]" = BoundedLRU(capacity)
        # Guards the stats counters and composite L1+stats transitions; the
        # BoundedLRU is itself thread-safe, but "miss then store" / "hit then
        # count" must not interleave into corrupted accounting when the
        # serving executor drives one cache from many threads.
        self._lock = threading.RLock()

    def __len__(self) -> int:
        return len(self._l1)

    def clear(self) -> None:
        """Drop the in-memory level and reset stats (disk entries survive)."""
        with self._lock:
            self._l1.clear()
            self.stats = WarmStartStats()

    def drop_memory(self) -> None:
        """Drop the in-memory level only, keeping the hit/miss accounting.

        Used by the benchmarks to force the next lookup onto the disk path
        (measuring what a fresh process would pay) without losing the stats
        accumulated so far.
        """
        self._l1.clear()

    def _disk(self):
        """The disk store to consult, or ``None`` (memory-only)."""
        if self._store is False:
            return None
        if self._store is not None:
            return self._store
        return artifact_cache.active_store()

    # -- record-level API (shared with the parallel scheduler) --------------
    def lookup_record(
        self,
        net: PetriNet,
        source: str,
        options: SchedulerOptions,
        *,
        fingerprint: Optional[str] = None,
        analysis=None,
    ) -> Optional[Dict[str, object]]:
        """The cached net-free result record for ``(net, source, options)``.

        Checks L1 then, when a disk store is active, L2 with full replay
        validation; L2 hits are promoted into L1.  ``None`` means a real
        search is needed (or the options are uncacheable).
        """
        record, _origin = self.lookup_record_with_origin(
            net, source, options, fingerprint=fingerprint, analysis=analysis
        )
        return record

    def lookup_record_with_origin(
        self,
        net: PetriNet,
        source: str,
        options: SchedulerOptions,
        *,
        fingerprint: Optional[str] = None,
        analysis=None,
    ) -> Tuple[Optional[Dict[str, object]], Optional[str]]:
        """Like :meth:`lookup_record`, plus where the record came from.

        Returns ``(record, origin)`` with ``origin`` one of ``"l1"``
        (in-memory hit), ``"disk"`` (validated L2 hit, promoted into L1) or
        ``None`` (miss / uncacheable).  The serving daemon uses the tag to
        attribute its cache metrics without poking at this cache's internals.
        """
        opts_key = options_cache_key(options)
        if opts_key is None:
            return None, None
        fingerprint = fingerprint or structural_fingerprint(net)
        key = (fingerprint, source, opts_key)
        record = self._l1.get(key)
        if record is not None:
            with self._lock:
                self.stats.hits += 1
            return record, "l1"
        store = self._disk()
        if store is not None:
            quarantined_before = store.stats.quarantined
            record = artifact_cache.load_schedule_record(
                store,
                net,
                net_fingerprint=fingerprint,
                source=source,
                options_fp=artifact_cache.options_fingerprint(opts_key),
                analysis=analysis,
            )
            if record is not None:
                with self._lock:
                    self.stats.disk_hits += 1
                self._l1.put(key, record)
                return record, "disk"
            # count only quarantines caused by *this* lookup (wire decode,
            # identity check or replay validation), not store-wide history
            with self._lock:
                self.stats.disk_rejected += store.stats.quarantined - quarantined_before
        return None, None

    def store_record(
        self,
        net: PetriNet,
        source: str,
        options: SchedulerOptions,
        record: Mapping[str, object],
        *,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Write one search outcome through to L1 and (when active) the disk."""
        opts_key = options_cache_key(options)
        if opts_key is None:
            return
        fingerprint = fingerprint or structural_fingerprint(net)
        record = dict(record)
        self._l1.put((fingerprint, source, opts_key), record)
        store = self._disk()
        if store is not None:
            artifact_cache.store_schedule_record(
                store,
                net_fingerprint=fingerprint,
                source=source,
                options_fp=artifact_cache.options_fingerprint(opts_key),
                record=record,
            )

    # -- result-level API ----------------------------------------------------
    def find_schedule(
        self,
        net: PetriNet,
        source_transition: str,
        *,
        options: Optional[SchedulerOptions] = None,
        analysis=None,
        raise_on_failure: bool = False,
    ) -> SchedulerResult:
        """Drop-in for :func:`repro.scheduling.ep.find_schedule` with replay.

        Example::

            >>> from repro.apps.divisors import build_divisors_system
            >>> from repro.scheduling.warmstart import ScheduleWarmStartCache
            >>> cache = ScheduleWarmStartCache()
            >>> net = build_divisors_system().net
            >>> first = cache.find_schedule(net, "src.divisors.in")
            >>> replay = cache.find_schedule(net.copy(), "src.divisors.in")
            >>> (first.from_cache, replay.from_cache)
            (False, True)
        """
        options = options or SchedulerOptions()
        opts_key = options_cache_key(options)
        if opts_key is None:
            with self._lock:
                self.stats.uncacheable += 1
            result = find_schedule(
                net,
                source_transition,
                options=options,
                analysis=analysis,
                raise_on_failure=raise_on_failure,
            )
            record_live_search(result.counters)
            return result
        fingerprint = structural_fingerprint(net)
        record = self.lookup_record(
            net, source_transition, options, fingerprint=fingerprint, analysis=analysis
        )
        if record is not None:
            # from_cache marks the replay; the record keeps the original
            # search's wall clock and counters, which is what consumers
            # report (PfcExperimentSetup.scheduling_seconds) -- 0.0 would
            # corrupt those tables
            result = result_from_record(
                net, source_transition, record, from_cache=True
            )
        else:
            with self._lock:
                self.stats.misses += 1
            result = find_schedule(
                net, source_transition, options=options, analysis=analysis
            )
            record_live_search(result.counters)
            self.store_record(
                net,
                source_transition,
                options,
                result_to_record(result),
                fingerprint=fingerprint,
            )
        if raise_on_failure and not result.success:
            raise SchedulingFailure(
                f"no schedule found for {source_transition!r}: {result.failure_reason}"
            )
        return result


#: Process-wide default instance used by the experiment harnesses, the
#: cache-aware ``find_all_schedules`` paths and the benchmarks.
GLOBAL_SCHEDULE_CACHE = ScheduleWarmStartCache()


def cached_find_schedule(
    net: PetriNet,
    source_transition: str,
    *,
    options: Optional[SchedulerOptions] = None,
    analysis=None,
    raise_on_failure: bool = False,
) -> SchedulerResult:
    """Module-level convenience over :data:`GLOBAL_SCHEDULE_CACHE`.

    Identical to :meth:`ScheduleWarmStartCache.find_schedule` on the shared
    process-wide instance; with ``repro.cache.activate()`` (or
    ``REPRO_CACHE=1``) outcomes additionally persist to disk and replay in
    later processes.
    """
    return GLOBAL_SCHEDULE_CACHE.find_schedule(
        net,
        source_transition,
        options=options,
        analysis=analysis,
        raise_on_failure=raise_on_failure,
    )
