"""Warm-start cache for schedules, keyed on structural fingerprints.

`VideoAppConfig` sweeps (table1 / table2 / figure20, the benchmarks, the
examples) repeatedly rebuild *new* net objects with identical structure;
every per-object cache (``IndexedNet.analysis_cache``, ``lru_cache`` over
configs) goes cold with them.  The EP search is deterministic, so for a
structurally identical net -- same places, arcs, weights, initial tokens,
source kinds, bounds, as captured by
:func:`repro.petrinet.fingerprint.structural_fingerprint` -- the resulting
schedule is identical too and can simply be replayed from its canonical
serialized form instead of re-searched.

The cache stores successful *and* failed outcomes (a net that is not
single-source schedulable stays that way), remembers the original search
statistics (tree nodes, counters) and marks replayed results with
``SchedulerResult.from_cache``.  Only searches under a default termination
condition are cached: a caller-supplied :class:`TerminationCondition` is an
arbitrary object we cannot fingerprint, so those calls pass straight
through.

The companion warm start for the T-invariant basis lives in
:mod:`repro.petrinet.invariants` (keyed on the incidence fingerprint, which
is all a basis depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.petrinet.fingerprint import structural_fingerprint
from repro.util import BoundedLRU
from repro.petrinet.net import PetriNet
from repro.scheduling.ep import (
    SchedulerOptions,
    SchedulerResult,
    SchedulingFailure,
    find_schedule,
)
from repro.scheduling.serialize import result_from_record, result_to_record


def options_cache_key(options: SchedulerOptions) -> Optional[Tuple]:
    """Hashable identity of the options, or ``None`` when uncacheable."""
    if options.termination is not None:
        return None
    return (
        options.single_source,
        options.use_invariant_heuristic,
        options.max_nodes,
        # validate does not change the search outcome, but a schedule cached
        # under validate=False was never checked; keep the contracts separate
        options.validate,
        options.invariant_precheck,
        options.defer_sources,
        # backends are schedule-equivalent, but the counters they record
        # differ (batched_expansions); keep replayed records honest
        options.backend,
    )


@dataclass
class WarmStartStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
        }


class ScheduleWarmStartCache:
    """LRU of serialized scheduling outcomes keyed on net structure."""

    def __init__(self, capacity: int = 64):
        self.stats = WarmStartStats()
        self._store: "BoundedLRU[Tuple, Dict[str, object]]" = BoundedLRU(capacity)

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.stats = WarmStartStats()

    def find_schedule(
        self,
        net: PetriNet,
        source_transition: str,
        *,
        options: Optional[SchedulerOptions] = None,
        raise_on_failure: bool = False,
    ) -> SchedulerResult:
        """Drop-in for :func:`repro.scheduling.ep.find_schedule` with replay."""
        options = options or SchedulerOptions()
        opts_key = options_cache_key(options)
        if opts_key is None:
            self.stats.uncacheable += 1
            return find_schedule(
                net,
                source_transition,
                options=options,
                raise_on_failure=raise_on_failure,
            )
        key = (structural_fingerprint(net), source_transition, opts_key)
        record = self._store.get(key)
        if record is not None:
            self.stats.hits += 1
            # from_cache marks the replay; the record keeps the original
            # search's wall clock and counters, which is what consumers
            # report (PfcExperimentSetup.scheduling_seconds) -- 0.0 would
            # corrupt those tables
            result = result_from_record(net, source_transition, record, from_cache=True)
        else:
            self.stats.misses += 1
            result = find_schedule(net, source_transition, options=options)
            self._store.put(key, result_to_record(result))
        if raise_on_failure and not result.success:
            raise SchedulingFailure(
                f"no schedule found for {source_transition!r}: {result.failure_reason}"
            )
        return result


#: Process-wide default instance used by the experiment harnesses.
GLOBAL_SCHEDULE_CACHE = ScheduleWarmStartCache()


def cached_find_schedule(
    net: PetriNet,
    source_transition: str,
    *,
    options: Optional[SchedulerOptions] = None,
    raise_on_failure: bool = False,
) -> SchedulerResult:
    """Module-level convenience over :data:`GLOBAL_SCHEDULE_CACHE`."""
    return GLOBAL_SCHEDULE_CACHE.find_schedule(
        net,
        source_transition,
        options=options,
        raise_on_failure=raise_on_failure,
    )
