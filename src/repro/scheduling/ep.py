"""The scheduling algorithm: functions EP and EP_ECS (Section 5 of the paper).

The algorithm grows a rooted tree whose nodes carry reachable markings.  For
the source transition ``a`` it creates the root (initial marking) and its
child (marking after firing ``a``), then searches for an *entering point* of
the child that is the root itself.  ``EP(v, target)`` looks for an ancestor of
``target`` reachable from ``v`` no matter how the data-dependent choices
resolve; ``EP_ECS(E, v, target)`` does so for one enabled ECS by requiring an
entering point from every transition of the ECS.

Termination conditions (irrelevance criterion, place bounds, node budget)
prune the search space; Theorem 5.2 guarantees that a schedule is found if and
only if one exists in the pruned reachability tree.

After a successful search, post-processing retains only the chosen ECSs and
closes cycles by merging each leaf with the ancestor carrying the same
marking, yielding a :class:`~repro.scheduling.schedule.Schedule`.

Three observationally equivalent backends drive the hot loop
(``SchedulerOptions.backend``):

* ``"scalar"`` walks one transition at a time, exactly as the paper states
  the algorithm;
* ``"batched"`` expands a whole node's frontier at once -- the candidate
  transitions of every enabled ECS become one matrix of child markings, the
  marking-dependent termination conditions (irrelevance, place / channel
  bounds, depth) become boolean masks against the dense path-ancestor
  matrix, and the surviving children are interned in one
  :class:`MarkingStore` pass.  Node selection, ECS ordering and
  await-insertion stay scalar and deterministic, so all backends produce
  byte-identical canonical schedules and identical search counters (modulo
  the :data:`SearchCounters.BACKEND_ONLY` expansion tallies);
  ``tests/test_batched_ep.py`` pins the equivalence differentially.
* ``"kernel"`` keeps the batched orchestration but routes each node
  expansion through the fused kernel
  (:class:`~repro.petrinet.kernel.ExpansionKernel`): child rows, bound /
  depth verdicts and the over-degree pre-filter come from one call over
  contiguous int64 buffers (a ``numba``-compiled loop when available,
  ``REPRO_KERNEL=0`` or a missing compiler degrades to the NumPy tier with
  a ``RuntimeWarning``), and the irrelevance criterion is decided
  *incrementally* against the path marking index instead of the O(depth)
  ancestor broadcast.

``"auto"`` (the default) picks the kernel backend whenever the frontier
machinery applies: the termination condition must decompose into frontier
masks plus node budgets
(:func:`~repro.scheduling.termination.split_frontier_conditions`) and token
counts must stay safely inside int64 (see :func:`resolve_backend_for`).
"""

from __future__ import annotations

import sys
import time
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.petrinet.analysis import StructuralAnalysis
from repro.petrinet.indexed import IndexedNet, MarkingStore, MarkingVec
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet
from repro.scheduling.heuristics import (
    ECSLookahead,
    ECSOrderingHeuristic,
    HeuristicContext,
    InvariantGuidedOrdering,
    make_heuristic,
)
from repro.scheduling.schedule import Schedule
from repro.scheduling.termination import (
    CompositeCondition,
    FrontierSplit,
    TerminationCondition,
    default_termination,
    split_frontier_conditions,
)

try:  # the batched backend needs NumPy; the scalar one never touches it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in test dependency
    _np = None

ECS = FrozenSet[str]

UNDEF = None  # sentinel for "no entering point"


class SchedulingFailure(Exception):
    """Raised by :func:`find_schedule` when ``raise_on_failure`` is set."""


@dataclass
class SchedulerOptions:
    """Configuration of the scheduling algorithm.

    Fields (all keyword-friendly, all defaulted):

    * ``single_source`` -- enforce the Section 4.2 restriction: ECSs
      containing *other* uncontrollable sources are never fired, so the
      schedule reacts to one environment input at a time.
    * ``use_invariant_heuristic`` -- order candidate ECSs by the
      T-invariant-guided heuristic of Section 5.5.2 instead of the plain
      tie-break ordering (usually a large tree-size win).
    * ``termination`` -- an explicit :class:`TerminationCondition`;
      ``None`` builds the default composite (irrelevance criterion +
      user place bounds + ``max_nodes`` budget).  Custom conditions make
      the search uncacheable by the warm-start layers.
    * ``max_nodes`` -- hard budget on scheduling-tree nodes; exceeded
      searches fail with a budget reason instead of running forever.
    * ``validate`` -- run ``Schedule.validate`` (the five Section 4.1
      properties) on every schedule before returning it.
    * ``invariant_precheck`` -- fail fast when no T-invariant fires the
      source transition (Section 5.5.2's non-schedulability test).
    * ``defer_sources`` -- the Section 4.4 pruning rule: fire source ECSs
      only when nothing else yields an entering point.
    * ``backend`` -- the hot-loop implementation: ``"scalar"``,
      ``"batched"``, ``"kernel"``, or ``"auto"`` (default; the fused kernel
      whenever it applies, see :func:`resolve_backend_for`).  Backends are
      observationally equivalent; the knob trades wall clock only.
    * ``kernel_tier`` -- pins the kernel backend's execution tier
      (``"compiled"`` | ``"numpy"``); ``None`` resolves automatically
      (compiled when numba is available and ``REPRO_KERNEL`` allows it,
      NumPy otherwise -- see
      :func:`repro.petrinet.kernel.resolve_kernel_tier`).  Parallel
      fan-outs pin the resolved tier into the options they ship so every
      worker runs the coordinator's decision.
    * ``intra_workers`` -- parallelism *within* one EP search: with a value
      ``K > 1`` the search forks per-ECS subtrees to ``K - 1`` helper
      processes and splices their results back in canonical order
      (:mod:`repro.scheduling.intra`).  Results are byte-identical for
      every value, so this is a worker-topology knob, not part of the
      result identity -- the warm-start cache key deliberately ignores it.
    * ``objective`` -- the candidate-selection policy.  ``"first"`` (the
      default) returns the heuristically-first valid schedule, exactly as
      every release so far -- byte-identical output on every net, backend
      and worker count.  ``"cost"`` continues the search past the first
      success: untried candidate ECSs at the retained nodes are explored
      with the same backtracking machinery, up to ``candidate_limit``
      distinct valid schedules are collected, each is scored by the static
      objective (:mod:`repro.scheduling.objective`: context switches from
      await boundaries, communication classified intra- vs inter-task,
      latency/jitter under per-process WCET annotations) and the minimum
      ``(score, fingerprint)`` wins -- the fingerprint tie-break makes
      selection reproducible across backends, worker counts and
      enumeration orders.  Unlike ``intra_workers`` this *is* result
      identity: the warm-start cache key includes it, so ``"first"``
      records never serve ``"cost"`` requests.
    * ``candidate_limit`` -- upper bound on distinct candidate schedules
      enumerated per source under ``objective="cost"`` (including the
      first-found one); ignored under ``"first"``.

    Example::

        >>> options = SchedulerOptions(max_nodes=50_000, backend="scalar")
        >>> options.single_source
        True
    """

    single_source: bool = True
    use_invariant_heuristic: bool = True
    termination: Optional[TerminationCondition] = None
    max_nodes: int = 200_000
    validate: bool = True
    # Abort early when no T-invariant covers the source transition
    invariant_precheck: bool = True
    # "Fire a source transition only when the system cannot fire anything
    # else" (Section 4.4) applied as a pruning rule: source ECSs are only
    # explored at a node when every non-source ECS failed to produce an
    # entering point.  This keeps schedules small (few await nodes) and
    # avoids deferring part of a reaction to the next environment event.
    defer_sources: bool = True
    # Hot-loop implementation: "scalar" | "batched" | "kernel" | "auto".
    # The backends are observationally equivalent (same schedules, same
    # counters modulo the BACKEND_ONLY expansion tallies); "auto" resolves
    # per search via resolve_backend_for.
    backend: str = "auto"
    # Kernel-backend execution tier: "compiled" | "numpy" | None (auto).
    kernel_tier: Optional[str] = None
    # Intra-search work stealing: total executors for ONE search (the parent
    # plus intra_workers - 1 helper processes).  1 = the plain serial search.
    # Observationally a no-op: schedules, fingerprints and tree shapes are
    # byte-identical at any value (see repro.scheduling.intra).
    intra_workers: int = 1
    # Candidate-selection policy: "first" (default) returns the
    # heuristically-first valid schedule; "cost" enumerates up to
    # candidate_limit distinct valid schedules and returns the one with the
    # minimal static objective score, tie-broken on the canonical
    # fingerprint.  Part of the result identity (cache keys include it).
    objective: str = "first"
    # Distinct-candidate budget per source under objective="cost"
    # (including the first-found schedule); ignored under "first".
    candidate_limit: int = 8


@dataclass
class SearchCounters:
    """Profiling counters of one EP/EP_ECS search (exposed on the result)."""

    nodes_expanded: int = 0
    fires: int = 0
    enabled_scans: int = 0
    enabled_updates: int = 0
    interned_markings: int = 0
    # batched-backend only: whole-frontier expansions (matrix fire + masks).
    # Every other counter is backend-independent by the equivalence contract.
    batched_expansions: int = 0
    # kernel-backend only: whole-frontier expansions through the fused
    # ExpansionKernel (the kernel's analogue of batched_expansions).
    kernel_expansions: int = 0

    #: counters that legitimately differ between the scalar, batched and
    #: kernel backends; everything else must match exactly (the differential
    #: tests compare ``as_dict`` minus these keys).
    BACKEND_ONLY = ("batched_expansions", "kernel_expansions")

    def as_dict(self) -> Dict[str, int]:
        """Plain ``{counter: value}`` dict (JSON-friendly, cache-stable)."""
        return asdict(self)

    def merge(self, other: "SearchCounters") -> None:
        """Accumulate another search's counters into this one."""
        self.nodes_expanded += other.nodes_expanded
        self.fires += other.fires
        self.enabled_scans += other.enabled_scans
        self.enabled_updates += other.enabled_updates
        self.interned_markings += other.interned_markings
        self.batched_expansions += other.batched_expansions
        self.kernel_expansions += other.kernel_expansions

    @classmethod
    def aggregate(cls, counters: "Iterable[SearchCounters]") -> "SearchCounters":
        """Sum of several searches' counters (e.g. across worker processes)."""
        total = cls()
        for item in counters:
            total.merge(item)
        return total


@dataclass
class TreeNode:
    """A node of the scheduling tree.

    Markings are held as interned dense vectors of the indexed core; the
    facade :class:`Marking` is materialised lazily (``SchedulingTree.
    marking_of``) and cached, so only nodes that survive into the schedule or
    feed a heuristic pay the conversion.
    """

    index: int
    parent: Optional[int]
    depth: int
    vec: MarkingVec
    tid: Optional[int]  # transition ID fired on the edge from the parent
    transition: Optional[str]  # edge label from the parent
    total_tokens: int = 0
    children: List[int] = field(default_factory=list)
    ecs_choice: Optional[ECS] = None
    equal_ancestor: Optional[int] = None
    marking_cache: Optional[Marking] = None
    enabled: Optional[FrozenSet[int]] = None

    @property
    def marking(self) -> Marking:
        """Facade view; prefer ``SchedulingTree.marking_of`` (it caches)."""
        if self.marking_cache is None:
            raise AttributeError(
                "marking not materialised; use SchedulingTree.marking_of"
            )
        return self.marking_cache


class SchedulingTree:
    """The rooted tree grown by EP/EP_ECS, plus the current DFS path state.

    Runs entirely on the indexed core: nodes carry interned marking vectors,
    and each node's enabled transition set is derived incrementally from its
    parent's (only transitions adjacent to changed places are re-checked).
    """

    def __init__(
        self,
        net: PetriNet,
        counters: Optional[SearchCounters] = None,
    ):
        self.net = net
        self.inet: IndexedNet = net.indexed()
        self.counters = counters or SearchCounters()
        self.store = MarkingStore()
        self.nodes: List[TreeNode] = []
        # state of the current DFS path (root .. current node)
        self._path: List[int] = []
        self._markings_on_path: Dict[MarkingVec, int] = {}
        # multiset of the path markings' total token counts -- the running
        # ancestor-comparison state of the incremental irrelevance check
        # (a candidate witness marking can only exist on the path if some
        # path marking carries its exact token total)
        self._path_total_counts: Dict[int, int] = {}
        self._path_firings: Dict[str, int] = {}
        # dense mirrors of the path state (markings matrix, per-tid firing
        # counts), maintained only for the batched backend (enable_path_matrix)
        self._path_matrix = None
        self._fired_by_tid = None

    def enable_path_matrix(self) -> None:
        """Mirror the DFS-path state into dense int64 arrays.

        The batched backend evaluates termination masks for whole frontiers
        against the marking matrix (``path_matrix()``) and feeds the per-tid
        firing counts (``fired_vector()``) to the invariant-guided ordering
        heuristic; the scalar backend never pays for the bookkeeping.
        """
        capacity = max(64, 2 * len(self._path))
        self._path_matrix = _np.zeros(
            (capacity, len(self.inet.place_names)), dtype=_np.int64
        )
        self._fired_by_tid = _np.zeros(
            len(self.inet.transition_names), dtype=_np.int64
        )
        for index, node in enumerate(self._path):
            tree_node = self.nodes[node]
            self._path_matrix[index, :] = tree_node.vec
            if tree_node.tid is not None:
                self._fired_by_tid[tree_node.tid] += 1

    def path_matrix(self):
        """Markings on the current DFS path, root first (dense rows)."""
        return self._path_matrix[: len(self._path)]

    def fired_vector(self):
        """Per-transition-ID firing counts of the current path (live view).

        ``None`` unless :meth:`enable_path_matrix` was called.  Exact dense
        twin of :meth:`path_firings`; consumers must not hold on to it
        across tree operations.
        """
        return self._fired_by_tid

    # -- construction -----------------------------------------------------
    def add_root(self, vec: MarkingVec) -> int:
        assert not self.nodes
        vec = self.store.intern(vec)
        self.nodes.append(
            TreeNode(
                index=0,
                parent=None,
                depth=0,
                vec=vec,
                tid=None,
                transition=None,
                total_tokens=sum(vec),
            )
        )
        return 0

    def add_child(self, parent: int, tid: int, vec: MarkingVec) -> int:
        index = len(self.nodes)
        vec = self.store.intern(vec)
        parent_node = self.nodes[parent]
        node = TreeNode(
            index=index,
            parent=parent,
            depth=parent_node.depth + 1,
            vec=vec,
            tid=tid,
            transition=self.inet.transition_names[tid],
            total_tokens=parent_node.total_tokens + self.inet.token_delta[tid],
        )
        self.nodes.append(node)
        parent_node.children.append(index)
        return index

    def __len__(self) -> int:
        return len(self.nodes)

    # -- SchedulingTreeView protocol ---------------------------------------
    def vec_of(self, node: int) -> MarkingVec:
        return self.nodes[node].vec

    def depth_of(self, node: int) -> int:
        """Tree depth of ``node`` (root = 0); O(1) via the stored field.

        Termination conditions prefer this over counting
        :meth:`ancestors_of` -- same value, no O(depth) walk per query.
        """
        return self.nodes[node].depth

    def marking_of(self, node: int) -> Marking:
        tree_node = self.nodes[node]
        if tree_node.marking_cache is None:
            tree_node.marking_cache = self.inet.marking_of_vec(tree_node.vec)
        return tree_node.marking_cache

    def total_tokens_of(self, node: int) -> int:
        return self.nodes[node].total_tokens

    def ancestors_of(self, node: int):
        """Proper ancestors, nearest first (generator to avoid allocations)."""
        current = self.nodes[node].parent
        while current is not None:
            yield current
            current = self.nodes[current].parent

    # -- incremental enabled sets -------------------------------------------
    def enabled_of(self, node: int) -> FrozenSet[int]:
        """Enabled transition IDs at the node's marking.

        Computed incrementally from the nearest ancestor with a cached set
        (the root scans the net once); memoised per node.
        """
        chain: List[int] = []
        current = node
        tree_node = self.nodes[current]
        while tree_node.enabled is None and tree_node.parent is not None:
            chain.append(current)
            current = tree_node.parent
            tree_node = self.nodes[current]
        if tree_node.enabled is None:
            tree_node.enabled = frozenset(self.inet.enabled_vec(tree_node.vec))
            self.counters.enabled_scans += 1
        enabled = tree_node.enabled
        for index in reversed(chain):
            child = self.nodes[index]
            enabled = self.inet.enabled_after(enabled, child.tid, child.vec)
            self.counters.enabled_updates += 1
            child.enabled = enabled
        return enabled

    # -- DFS path bookkeeping -------------------------------------------------
    def push(self, node: int) -> None:
        tree_node = self.nodes[node]
        self._path.append(node)
        if self._path_matrix is not None:
            row = len(self._path) - 1
            if row >= self._path_matrix.shape[0]:
                grown = _np.zeros(
                    (2 * self._path_matrix.shape[0], self._path_matrix.shape[1]),
                    dtype=_np.int64,
                )
                grown[: self._path_matrix.shape[0]] = self._path_matrix
                self._path_matrix = grown
            self._path_matrix[row, :] = tree_node.vec
            if tree_node.tid is not None:
                self._fired_by_tid[tree_node.tid] += 1
        if tree_node.vec not in self._markings_on_path:
            self._markings_on_path[tree_node.vec] = node
        total = tree_node.total_tokens
        self._path_total_counts[total] = self._path_total_counts.get(total, 0) + 1
        if tree_node.transition is not None:
            self._path_firings[tree_node.transition] = (
                self._path_firings.get(tree_node.transition, 0) + 1
            )

    def pop(self, node: int) -> None:
        popped = self._path.pop()
        assert popped == node
        tree_node = self.nodes[node]
        if self._fired_by_tid is not None and tree_node.tid is not None:
            self._fired_by_tid[tree_node.tid] -= 1
        if self._markings_on_path.get(tree_node.vec) == node:
            del self._markings_on_path[tree_node.vec]
        total = tree_node.total_tokens
        remaining = self._path_total_counts[total] - 1
        if remaining:
            self._path_total_counts[total] = remaining
        else:
            del self._path_total_counts[total]
        if tree_node.transition is not None:
            self._path_firings[tree_node.transition] -= 1
            if not self._path_firings[tree_node.transition]:
                del self._path_firings[tree_node.transition]

    def path_probe_state(self, node: int):
        """Path state for the incremental irrelevance check, or ``None``.

        Returns ``(marking_index, total_counts)`` -- the vec -> node map and
        the token-total multiset of the current DFS path -- but only when
        ``node``'s proper ancestors are exactly the path markings: ``node``
        is the top of the path (then the path also holds its own marking,
        which the checker never probes since witnesses differ from the
        candidate) or a fresh child of the top (a scalar lookahead probe).
        Any other node gets ``None`` and the caller's ancestor walk.
        """
        if not self._path:
            return None
        top = self._path[-1]
        if top == node or self.nodes[node].parent == top:
            return self._markings_on_path, self._path_total_counts
        return None

    def equal_marking_ancestor(self, node: int) -> Optional[int]:
        """Proper ancestor on the current path carrying the same marking."""
        vec = self.nodes[node].vec
        candidate = self._markings_on_path.get(vec)
        if candidate is None or candidate == node:
            return None
        return candidate

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True if ``ancestor`` is on the path from the root to ``node``
        (assuming ``node`` lies on the current DFS path)."""
        if ancestor == node:
            return True
        depth = self.nodes[ancestor].depth
        if depth >= len(self._path):
            # node might not be on the path (defensive fallback: walk parents)
            current: Optional[int] = node
            while current is not None:
                if current == ancestor:
                    return True
                current = self.nodes[current].parent
            return False
        return self._path[depth] == ancestor and depth <= self.nodes[node].depth

    def path_firings(self) -> Mapping[str, int]:
        return dict(self._path_firings)


@dataclass
class SchedulerResult:
    """Outcome of one scheduling attempt."""

    source_transition: str
    schedule: Optional[Schedule]
    tree_nodes: int
    elapsed_seconds: float
    failure_reason: Optional[str] = None
    counters: SearchCounters = field(default_factory=SearchCounters)
    # True when the result was replayed from a warm-start cache rather than
    # searched (tree_nodes / counters then describe the original search).
    from_cache: bool = False
    # Intra-search work-stealing accounting (forks, steals, fallbacks) when
    # the search ran with intra_workers > 1; None otherwise.  Deliberately
    # NOT part of result_to_record: worker topology is not result identity,
    # so cache records and wire responses never carry it.
    intra_stats: Optional[Dict[str, object]] = None
    # Selection policy that produced the schedule ("first" | "cost"); under
    # "cost" the winning schedule's static objective score travels with the
    # result (and through result_to_record, unlike the enumeration stats).
    objective: str = "first"
    score: Optional[int] = None
    # Cost-mode enumeration accounting (candidates found, score spread,
    # first-vs-selected).  Like intra_stats this is process-local
    # diagnostics, not result identity: result_to_record never carries it.
    objective_stats: Optional[Dict[str, object]] = None

    @property
    def success(self) -> bool:
        """True when a schedule was found (``failure_reason`` is set otherwise)."""
        return self.schedule is not None


BACKENDS = ("auto", "scalar", "batched", "kernel")

#: candidate-selection policies (SchedulerOptions.objective)
OBJECTIVES = ("first", "cost")

#: backends that run the frontier machinery (dense path matrix, frontier
#: splits, batched lookahead); "kernel" additionally fuses each expansion.
MATRIX_BACKENDS = ("batched", "kernel")


def resolve_backend_for(
    net: PetriNet,
    options: SchedulerOptions,
    termination: Optional[TerminationCondition] = None,
) -> str:
    """Resolve ``options.backend`` to the concrete backend a search will use.

    ``"batched"`` and ``"kernel"`` apply when NumPy is importable, the
    termination condition decomposes into frontier masks plus node budgets,
    and the worst-case token count (initial tokens plus one delta per
    possible tree node) stays below the int64 guard -- otherwise the search
    falls back to ``"scalar"``, whose Python-int arithmetic is exact at any
    magnitude.  ``"auto"`` resolves to ``"kernel"`` (the fused superset of
    the batched path); which kernel *tier* runs is a separate, per-process
    decision (:func:`repro.petrinet.kernel.resolve_kernel_tier`) that never
    changes results.  The resolution is deterministic in (net structure,
    options), so parallel workers reach the same decision as the caller.
    """
    requested = options.backend
    if requested not in BACKENDS:
        raise ValueError(f"unknown scheduler backend {requested!r}; pick one of {BACKENDS}")
    if requested == "scalar":
        return "scalar"
    if _np is None:
        return "scalar"
    if termination is None:
        termination = options.termination or default_termination(
            net, max_nodes=options.max_nodes
        )
    if split_frontier_conditions(termination) is None:
        return "scalar"
    from repro.petrinet.batched import FRONTIER_TOKEN_GUARD

    inet = net.indexed()
    max_delta = max(
        (abs(d) for sparse in inet.delta for _pid, d in sparse), default=0
    )
    max_initial = max(inet.initial_vec, default=0)
    # The tree never outgrows options.max_nodes (EP_ECS checks before every
    # add_child), so no marking can exceed this bound along any path.
    if max_initial + (options.max_nodes + 8) * max_delta >= FRONTIER_TOKEN_GUARD:
        return "scalar"
    return "batched" if requested == "batched" else "kernel"


class _Frontier:
    """One node's batched expansion: child vectors plus termination bits.

    ``segments`` maps each expanded ECS to its ``[start, end)`` slice of
    ``vecs`` / ``pruned`` (candidates are laid out ECS by ECS, transitions in
    sorted-name order -- the exact order the scalar loop walks).
    """

    __slots__ = ("vecs", "pruned", "segments")

    def __init__(
        self,
        vecs: List[MarkingVec],
        pruned: List[bool],
        segments: Dict[ECS, Tuple[int, int]],
    ):
        self.vecs = vecs
        self.pruned = pruned
        self.segments = segments


class _EPSearch:
    """One run of the EP/EP_ECS search for a given source transition."""

    def __init__(
        self,
        net: PetriNet,
        source: str,
        options: SchedulerOptions,
        analysis: Optional[StructuralAnalysis] = None,
        heuristic: Optional[ECSOrderingHeuristic] = None,
    ):
        self.net = net
        self.source = source
        self.options = options
        if options.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown scheduler objective {options.objective!r}; "
                f"pick one of {OBJECTIVES}"
            )
        if options.objective == "cost" and options.candidate_limit < 1:
            raise ValueError("candidate_limit must be a positive integer")
        # True only while run() replays untried candidate ECSs for the
        # cost objective: the intra-search work-stealing overrides check it
        # and stay out of the way, so enumeration is strictly serial and
        # its outcome is independent of the worker topology.
        self._enum_serial = False
        if analysis is None or analysis.indexed_net is not net.indexed():
            # A caller-supplied analysis built before a structural mutation
            # carries transition IDs of a dead snapshot; rebuild rather than
            # silently mixing ID spaces.
            analysis = StructuralAnalysis.of(net)
        self.analysis = analysis
        self.termination = options.termination or default_termination(
            net, analysis=self.analysis, max_nodes=options.max_nodes
        )
        self.heuristic = heuristic or make_heuristic(
            net, self.analysis, source, use_invariants=options.use_invariant_heuristic
        )
        self.counters = SearchCounters()
        self.tree = SchedulingTree(net, counters=self.counters)
        self.inet = self.tree.inet
        self.other_uncontrollable = {
            t for t in self.analysis.uncontrollable if t != source
        }
        # ECS IDs excluded under the single-source restriction, and source ECS
        # IDs (deferred by the Section 4.4 pruning rule).
        self._excluded_ecs_ids = frozenset(
            ecs_id
            for ecs_id, ecs in enumerate(self.analysis.partition)
            if ecs & self.other_uncontrollable
        )
        self._source_ecs_ids = self.analysis.source_ecs_ids
        # per-ECS-ID minimum token delta (tie-break: drain channels first)
        token_delta = self.inet.token_delta
        tindex = self.inet.transition_index
        self._ecs_token_delta = tuple(
            min(token_delta[tindex[t]] for t in ecs)
            for ecs in self.analysis.partition
        )
        # frontier layout caches: per-ECS sorted transition names and IDs
        self._sorted_ecs = tuple(
            tuple(sorted(ecs)) for ecs in self.analysis.partition
        )
        self._ecs_tids = tuple(
            tuple(tindex[t] for t in names) for names in self._sorted_ecs
        )
        self._ecs_id_of = {
            ecs: ecs_id for ecs_id, ecs in enumerate(self.analysis.partition)
        }
        self.backend = resolve_backend_for(net, options, self.termination)
        self._split: Optional[FrontierSplit] = None
        self._kernel = None
        if self.backend in MATRIX_BACKENDS:
            self._split = split_frontier_conditions(self.termination)
            assert self._split is not None  # guaranteed by resolve_backend_for
            self.tree.enable_path_matrix()
            if self.backend == "kernel":
                from repro.petrinet.kernel import ExpansionKernel

                self._kernel = ExpansionKernel(
                    self.inet, self._split, tier=options.kernel_tier
                )

    def _fire(self, tid: int, vec) -> tuple:
        self.counters.fires += 1
        return self.inet.fire_vec(tid, vec)

    # -- batched frontier expansion -----------------------------------------
    def _expand(
        self, vec: MarkingVec, tids: Sequence[int], child_depth: int
    ) -> Tuple[List[MarkingVec], List[bool]]:
        """Children of one node for ``tids`` plus their termination bits.

        One broadcast against the delta matrix produces every child marking;
        the maskable termination conditions are evaluated for the whole
        frontier against the dense path-ancestor matrix.  The returned
        ``pruned[i]`` equals ``termination.holds`` on a node carrying
        ``vecs[i]`` at ``child_depth``, except for the node-budget leaves,
        which the caller checks per node (:meth:`FrontierSplit.budget_holds`)
        because a child's index is only known when it is created.

        Under the kernel backend the whole sequence is one fused
        :meth:`ExpansionKernel.expand` call (same contract, same bits).
        """
        if self._kernel is not None:
            self.counters.kernel_expansions += 1
            return self._kernel.expand(self.tree, vec, tids, child_depth)
        from repro.petrinet.batched import expand_children

        self.counters.batched_expansions += 1
        rows = expand_children(self.inet, vec, tids)
        ancestors = self.tree.path_matrix()
        mask = None
        for condition in self._split.maskable:
            bits = condition.frontier_mask(self.inet, ancestors, rows, child_depth)
            mask = bits if mask is None else (mask | bits)
        vecs = [tuple(row) for row in rows.tolist()]
        pruned = mask.tolist() if mask is not None else [False] * len(vecs)
        return vecs, pruned

    def _batched_lookahead(
        self, v: int, enabled_ids: Sequence[int], enabled: Sequence[ECS]
    ) -> Tuple[_Frontier, Dict[ECS, ECSLookahead]]:
        """Frontier-at-a-time version of the per-ECS one-step lookahead.

        Expands the transitions of every enabled non-source ECS as one
        matrix, then replays the scalar probing semantics (fire, cycle
        check, termination probe, early exit) over the precomputed rows so
        the ``fires`` counter and the interned-marking set stay identical to
        the scalar backend.  Surviving probe markings are interned in one
        :class:`MarkingStore` pass; the returned frontier is reused by
        :meth:`_ep_ecs` for the ECSs the search actually descends into.
        """
        vec = self.tree.vec_of(v)
        on_path = self.tree._markings_on_path
        candidate_tids: List[int] = []
        segments: Dict[ECS, Tuple[int, int]] = {}
        for ecs_id, ecs in zip(enabled_ids, enabled):
            if ecs_id in self._source_ecs_ids:
                continue
            start = len(candidate_tids)
            candidate_tids.extend(self._ecs_tids[ecs_id])
            segments[ecs] = (start, len(candidate_tids))
        if candidate_tids:
            child_depth = self.tree.nodes[v].depth + 1
            vecs, pruned = self._expand(vec, candidate_tids, child_depth)
        else:
            vecs, pruned = [], []
        # the index a probe node would get (every probe is popped again, so
        # all probes of this node share it) -- the node-budget verdict
        probe_budget = self._split.budget_holds(len(self.tree.nodes))
        lookahead: Dict[ECS, ECSLookahead] = {}
        survivors: List[MarkingVec] = []
        for ecs_id, ecs in zip(enabled_ids, enabled):
            hits = False
            closes = False
            segment = segments.get(ecs)
            if segment is not None:
                for index in range(segment[0], segment[1]):
                    self.counters.fires += 1
                    candidate = vecs[index]
                    if on_path.get(candidate) is not None:
                        closes = True
                        break
                    survivors.append(candidate)
                    if pruned[index] or probe_budget:
                        hits = True
                        break
            lookahead[ecs] = ECSLookahead(
                hits_termination=hits,
                closes_cycle=closes,
                token_delta=self._ecs_token_delta[ecs_id],
            )
        self.tree.store.intern_many(survivors)
        return _Frontier(vecs, pruned, segments), lookahead

    # -- ancestor ordering helpers -----------------------------------------
    def _closer_to_root(self, a: int, b: int) -> int:
        return a if self.tree.nodes[a].depth <= self.tree.nodes[b].depth else b

    # -- main entry -----------------------------------------------------------
    def run(self) -> SchedulerResult:
        start = time.monotonic()
        if self.options.invariant_precheck and isinstance(self.heuristic, InvariantGuidedOrdering):
            if not self.heuristic.source_is_coverable():
                return SchedulerResult(
                    source_transition=self.source,
                    schedule=None,
                    tree_nodes=0,
                    elapsed_seconds=time.monotonic() - start,
                    failure_reason=(
                        "no T-invariant fires the source transition; "
                        "no cyclic schedule can exist"
                    ),
                    objective=self.options.objective,
                )
        initial = self.inet.initial_vec
        root = self.tree.add_root(initial)
        self.tree.nodes[root].ecs_choice = frozenset({self.source})
        source_tid = self.inet.transition_index[self.source]
        child_vec = self._fire(source_tid, initial)
        child = self.tree.add_child(root, source_tid, child_vec)

        # Pure-Python recursion is heap-allocated on CPython >= 3.11, so a deep
        # schedule (one tree level per fired transition) only needs a higher
        # recursion limit, not a bigger C stack.
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            self.tree.push(root)
            child_pruned: Optional[bool] = None
            if self._split is not None:
                # the root's one-transition frontier: the source firing
                _vecs, pruned = self._expand(initial, (source_tid,), 1)
                child_pruned = pruned[0]
            self.tree.push(child)
            try:
                entering_point = self._ep(child, root, child_pruned)
            finally:
                self.tree.pop(child)
                self.tree.pop(root)
        finally:
            sys.setrecursionlimit(old_limit)

        self.counters.interned_markings = len(self.tree.store)
        if entering_point != root:
            return SchedulerResult(
                source_transition=self.source,
                schedule=None,
                tree_nodes=len(self.tree),
                elapsed_seconds=time.monotonic() - start,
                failure_reason="no entering point reaching the initial marking was found",
                counters=self.counters,
                objective=self.options.objective,
            )
        schedule = self._post_process(root)
        if self.options.validate:
            schedule.validate(self.analysis)
        score: Optional[int] = None
        objective_stats: Optional[Dict[str, object]] = None
        if self.options.objective == "cost":
            schedule, score, objective_stats = self._select_by_cost(root, schedule)
            self.counters.interned_markings = len(self.tree.store)
        return SchedulerResult(
            source_transition=self.source,
            schedule=schedule,
            tree_nodes=len(self.tree),
            elapsed_seconds=time.monotonic() - start,
            counters=self.counters,
            objective=self.options.objective,
            score=score,
            objective_stats=objective_stats,
        )

    # -- EP ----------------------------------------------------------------
    def _ep(self, v: int, target: int, pruned: Optional[bool] = None) -> Optional[int]:
        """EP at node ``v``.

        ``pruned`` is the batched backend's precomputed verdict of the
        maskable termination conditions for ``v`` (its marking was a row of
        the parent's frontier); the node-budget leaves are checked here
        against the node's actual index.  The scalar backend passes ``None``
        and evaluates the composite condition directly.
        """
        self.counters.nodes_expanded += 1
        if pruned is not None:
            if pruned or self._split.budget_holds(v):
                return UNDEF
        elif self.termination.holds(self.tree, v):
            return UNDEF
        equal = self.tree.equal_marking_ancestor(v)
        if equal is not None:
            self.tree.nodes[v].equal_ancestor = equal
            return equal

        non_source, source_ecss, frontier = self._candidate_ecss(v)
        if not non_source and not source_ecss:
            return UNDEF
        return self._run_ecs_loop(v, target, non_source, source_ecss, frontier)

    def _candidate_ecss(
        self, v: int
    ) -> Tuple[List[ECS], List[ECS], Optional[_Frontier]]:
        """The ordered candidate ECSs of ``v`` plus the shared frontier.

        The middle of EP, extracted so the cost-mode enumeration can
        recompute a retained node's candidate ordering when it resumes the
        search past the first success: enabled ECSs (filtered by the
        single-source restriction), the one-step lookahead, the heuristic
        ordering and the Section 4.4 defer-sources split.  ``v`` must be
        the top of the current DFS path.  Deterministic in (tree path, v),
        so a later recomputation reproduces the original ordering exactly.
        """
        enabled_tids = self.tree.enabled_of(v)
        enabled_ids = self.analysis.enabled_ecs_ids(enabled_tids)
        if self.options.single_source and self._excluded_ecs_ids:
            enabled_ids = [
                ecs_id for ecs_id in enabled_ids
                if ecs_id not in self._excluded_ecs_ids
            ]
        if not enabled_ids:
            return [], [], None
        partition = self.analysis.partition
        enabled = [partition[ecs_id] for ecs_id in enabled_ids]

        frontier: Optional[_Frontier] = None
        if len(enabled) == 1:
            ordered = list(enabled)
        else:
            if self._split is not None:
                frontier, lookahead = self._batched_lookahead(v, enabled_ids, enabled)
            else:
                vec = self.tree.vec_of(v)
                on_path = self.tree._markings_on_path
                tindex = self.inet.transition_index
                lookahead = {}
                for ecs_id, ecs in zip(enabled_ids, enabled):
                    hits = False
                    closes = False
                    delta = self._ecs_token_delta[ecs_id]
                    if ecs_id not in self._source_ecs_ids:
                        for transition in sorted(ecs):
                            candidate = self._fire(tindex[transition], vec)
                            if on_path.get(candidate) is not None:
                                closes = True
                                break
                            probe = self.tree.add_child(v, tindex[transition], candidate)
                            if self.termination.holds(self.tree, probe):
                                hits = True
                            # remove the probe node again (it was only a lookahead)
                            self.tree.nodes.pop()
                            self.tree.nodes[v].children.pop()
                            if hits:
                                break
                    lookahead[ecs] = ECSLookahead(
                        hits_termination=hits, closes_cycle=closes, token_delta=delta
                    )
            context = HeuristicContext(
                path_firings=self.tree.path_firings(),
                depth=self.tree.nodes[v].depth,
                lookahead=lookahead,
                marking_supplier=lambda: self.tree.marking_of(v),
                fired_by_tid=self.tree.fired_vector(),
            )
            ordered = self.heuristic.order(enabled, context)

        if self.options.defer_sources:
            non_source = [ecs for ecs in ordered if not self.analysis.is_source_ecs(ecs)]
            source_ecss = [ecs for ecs in ordered if self.analysis.is_source_ecs(ecs)]
        else:
            non_source = list(ordered)
            source_ecss = []
        return non_source, source_ecss, frontier

    def _run_ecs_loop(
        self,
        v: int,
        target: int,
        non_source: List[ECS],
        source_ecss: List[ECS],
        frontier: Optional[_Frontier],
    ) -> Optional[int]:
        """Consume the ordered candidate ECSs of ``v``, serially.

        The tail of EP: try every non-source ECS in heuristic order (early
        exit as soon as an entering point is an ancestor of ``target``,
        otherwise keep the shallowest), then -- only if none produced an
        entering point -- the deferred source ECSs (Section 4.4).  The
        intra-search work-stealing layer (:mod:`repro.scheduling.intra`)
        overrides this seam to speculatively fork the per-ECS subtrees while
        consuming the results in exactly this order.
        """
        best: Optional[int] = UNDEF
        for ecs in non_source:
            entering_point = self._ecs_entering_point(ecs, v, target, frontier)
            if entering_point is UNDEF:
                continue
            if self.tree.is_ancestor(entering_point, target):
                self.tree.nodes[v].ecs_choice = ecs
                return entering_point
            if best is UNDEF or self.tree.nodes[entering_point].depth < self.tree.nodes[best].depth:
                self.tree.nodes[v].ecs_choice = ecs
                best = entering_point
        if best is not UNDEF:
            return best
        for ecs in source_ecss:
            entering_point = self._ecs_entering_point(ecs, v, target, frontier)
            if entering_point is UNDEF:
                continue
            if self.tree.is_ancestor(entering_point, target):
                self.tree.nodes[v].ecs_choice = ecs
                return entering_point
            if best is UNDEF or self.tree.nodes[entering_point].depth < self.tree.nodes[best].depth:
                self.tree.nodes[v].ecs_choice = ecs
                best = entering_point
        return best

    def _ecs_entering_point(
        self, ecs: ECS, v: int, target: int, frontier: Optional[_Frontier]
    ) -> Optional[int]:
        """Entering point of one candidate ECS (the per-ECS subtree unit)."""
        return self._ep_ecs(ecs, v, target, frontier)

    # -- EP_ECS ---------------------------------------------------------------
    def _ep_ecs(
        self,
        ecs: ECS,
        v: int,
        target: int,
        frontier: Optional[_Frontier] = None,
    ) -> Optional[int]:
        entering_point: Optional[int] = UNDEF
        current_target = target
        vec = self.tree.vec_of(v)
        ecs_id = self._ecs_id_of[ecs]
        names = self._sorted_ecs[ecs_id]
        tids = self._ecs_tids[ecs_id]
        child_vecs: Optional[List[MarkingVec]] = None
        child_pruned: Optional[List[bool]] = None
        if self._split is not None:
            segment = frontier.segments.get(ecs) if frontier is not None else None
            if segment is not None:
                # the lookahead already fired this ECS's candidates
                child_vecs = frontier.vecs[segment[0] : segment[1]]
                child_pruned = frontier.pruned[segment[0] : segment[1]]
            else:
                child_depth = self.tree.nodes[v].depth + 1
                child_vecs, child_pruned = self._expand(vec, tids, child_depth)
        for index, transition in enumerate(names):
            if len(self.tree) >= self.options.max_nodes:
                return UNDEF
            tid = tids[index]
            if child_vecs is not None:
                self.counters.fires += 1
                child = self.tree.add_child(v, tid, child_vecs[index])
                pruned: Optional[bool] = child_pruned[index]
            else:
                child = self.tree.add_child(v, tid, self._fire(tid, vec))
                pruned = None
            self.tree.push(child)
            try:
                child_point = self._ep(child, current_target, pruned)
            finally:
                self.tree.pop(child)
            if child_point is UNDEF:
                return UNDEF
            if not (
                self.tree.is_ancestor(child_point, v) and child_point != v
            ):
                return UNDEF
            if entering_point is UNDEF:
                entering_point = child_point
            else:
                entering_point = self._closer_to_root(entering_point, child_point)
            if self.tree.is_ancestor(entering_point, target):
                current_target = v
        return entering_point

    # -- post-processing ------------------------------------------------------
    def _post_process(self, root: int) -> Schedule:
        retained: Set[int] = set()
        order: List[int] = []
        stack = [root]
        while stack:
            current = stack.pop()
            if current in retained:
                continue
            retained.add(current)
            order.append(current)
            node = self.tree.nodes[current]
            if node.ecs_choice is None:
                continue
            for child_index in node.children:
                child = self.tree.nodes[child_index]
                if child.transition in node.ecs_choice and child_index not in retained:
                    stack.append(child_index)

        # merged leaves: retained nodes that close a cycle on an equal-marking ancestor
        merged: Dict[int, int] = {}
        for index in retained:
            node = self.tree.nodes[index]
            if node.ecs_choice is None and node.equal_ancestor is not None:
                merged[index] = node.equal_ancestor

        schedule = Schedule(net=self.net, source_transition=self.source)
        index_map: Dict[int, int] = {}
        for index in sorted(retained):
            if index in merged:
                continue
            schedule_node = schedule.add_node(self.tree.marking_of(index))
            index_map[index] = schedule_node.index

        def resolve(index: int) -> int:
            while index in merged:
                index = merged[index]
            return index_map[index]

        for index in sorted(retained):
            if index in merged:
                continue
            node = self.tree.nodes[index]
            if node.ecs_choice is None:
                continue
            for child_index in node.children:
                child = self.tree.nodes[child_index]
                if child_index not in retained:
                    continue
                if child.transition not in node.ecs_choice:
                    continue
                schedule.add_edge(index_map[index], child.transition, resolve(child_index))
        schedule.root = index_map[root]
        return schedule

    # -- cost objective: enumerate -> score -> select -------------------------
    def _select_by_cost(
        self, root: int, first_schedule: Schedule
    ) -> Tuple[Schedule, int, Dict[str, object]]:
        """Score the enumerated candidates and pick the cheapest one.

        The first-found schedule always heads the candidate list;
        :meth:`_enumerate_alternatives` resumes the search past it.  Every
        candidate is scored by the static objective
        (:func:`repro.scheduling.objective.score_schedule`) and the minimum
        ``(score, fingerprint)`` pair wins -- a total order, so the winner
        is independent of backend, worker count and enumeration order.
        Cost-mode counters cover the whole enumeration (still identical
        across backends modulo ``SearchCounters.BACKEND_ONLY``).
        """
        from repro.scheduling.objective import score_schedule
        from repro.scheduling.serialize import schedule_fingerprint

        candidates: List[Tuple[str, Schedule]] = [
            (schedule_fingerprint(first_schedule), first_schedule)
        ]
        seen = {candidates[0][0]}
        if self.options.candidate_limit > 1:
            for fingerprint, alternative in self._enumerate_alternatives(root):
                if fingerprint in seen:
                    continue
                seen.add(fingerprint)
                candidates.append((fingerprint, alternative))
                if len(candidates) >= self.options.candidate_limit:
                    break
        scored = [
            (score_schedule(candidate), fingerprint, candidate)
            for fingerprint, candidate in candidates
        ]
        best_score, best_fingerprint, best = min(
            scored, key=lambda item: (item[0], item[1])
        )
        stats: Dict[str, object] = {
            "candidates": len(scored),
            "first_score": scored[0][0],
            "first_fingerprint": scored[0][1],
            "selected_score": best_score,
            "selected_fingerprint": best_fingerprint,
            "selected_is_first": best_fingerprint == scored[0][1],
            "score_min": min(item[0] for item in scored),
            "score_max": max(item[0] for item in scored),
        }
        return best, best_score, stats

    def _enumerate_alternatives(self, root: int):
        """Yield ``(fingerprint, schedule)`` for untried candidate ECSs.

        Resumes the search past the first success: for every node retained
        by the first-found schedule (in deterministic index order) the
        candidate ordering is recomputed with :meth:`_candidate_ecss` --
        same path state, same heuristic, so it reproduces the original
        order exactly -- and each candidate ECS the original search never
        descended into (no child of ``v`` fires one of its transitions;
        lookahead probes are always popped again, so surviving children
        mean a real attempt) is explored with the ordinary
        :meth:`_ep_ecs` backtracking on the same tree.  A success swaps
        the node's ``ecs_choice``, snapshots the schedule via
        :meth:`_post_process` and restores the choice, so later nodes
        still perturb the first-found schedule.  Candidates that fail
        Section 4.1 validation are dropped; the node budget keeps bounding
        the extra exploration.  Enumeration runs strictly serially
        (``_enum_serial`` parks the intra-search stealing overrides), so
        the candidate set is a function of (net, source, options) only.
        """
        from repro.scheduling.serialize import schedule_fingerprint

        retained: Set[int] = set()
        stack = [root]
        while stack:
            current = stack.pop()
            if current in retained:
                continue
            retained.add(current)
            node = self.tree.nodes[current]
            if node.ecs_choice is None:
                continue
            for child_index in node.children:
                child = self.tree.nodes[child_index]
                if child.transition in node.ecs_choice and child_index not in retained:
                    stack.append(child_index)

        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        self._enum_serial = True
        try:
            for v in sorted(retained):
                if v == root:
                    continue  # the root's only move is firing the source
                node = self.tree.nodes[v]
                if node.ecs_choice is None:
                    continue  # merged leaf: no choice was made here
                path: List[int] = []
                walk: Optional[int] = v
                while walk is not None:
                    path.append(walk)
                    walk = self.tree.nodes[walk].parent
                path.reverse()
                for item in path:
                    self.tree.push(item)
                try:
                    non_source, source_ecss, frontier = self._candidate_ecss(v)
                    tried = {
                        self.tree.nodes[child].transition
                        for child in node.children
                    }
                    for ecs in list(non_source) + list(source_ecss):
                        if ecs & tried:
                            continue  # the original search explored this one
                        entering_point = self._ep_ecs(ecs, v, root, frontier)
                        if entering_point is UNDEF:
                            continue
                        if (
                            not self.tree.is_ancestor(entering_point, v)
                            or entering_point == v
                        ):
                            continue
                        original_choice = node.ecs_choice
                        node.ecs_choice = ecs
                        try:
                            candidate = self._post_process(root)
                            try:
                                candidate.validate(self.analysis)
                            except Exception:
                                continue
                            yield schedule_fingerprint(candidate), candidate
                        finally:
                            node.ecs_choice = original_choice
                finally:
                    for item in reversed(path):
                        self.tree.pop(item)
        finally:
            self._enum_serial = False
            sys.setrecursionlimit(old_limit)


def find_schedule(
    net: PetriNet,
    source_transition: str,
    *,
    options: Optional[SchedulerOptions] = None,
    analysis: Optional[StructuralAnalysis] = None,
    heuristic: Optional[ECSOrderingHeuristic] = None,
    raise_on_failure: bool = False,
) -> SchedulerResult:
    """Find a (single-source) schedule for ``source_transition``.

    ``net`` is the linked Petri net, ``source_transition`` the name of the
    uncontrollable source to react to, ``options`` a
    :class:`SchedulerOptions` (defaults apply), ``analysis`` an optional
    pre-built :class:`StructuralAnalysis` to share across several searches
    of the same net, and ``heuristic`` an optional ECS-ordering override.

    Returns a :class:`SchedulerResult`; when ``raise_on_failure`` is set a
    :class:`SchedulingFailure` is raised instead of returning an unsuccessful
    result.

    Example::

        >>> from repro.apps.paper_nets import figure_5
        >>> result = find_schedule(figure_5(), "a", raise_on_failure=True)
        >>> (result.success, len(result.schedule) > 0)
        (True, True)
    """
    options = options or SchedulerOptions()
    if source_transition not in net.transitions:
        raise KeyError(f"unknown transition {source_transition!r}")
    if options.intra_workers > 1:
        from repro.scheduling.intra import IntraSearch

        search: _EPSearch = IntraSearch(
            net, source_transition, options, analysis=analysis, heuristic=heuristic
        )
    else:
        search = _EPSearch(
            net, source_transition, options, analysis=analysis, heuristic=heuristic
        )
    result = search.run()
    if raise_on_failure and not result.success:
        raise SchedulingFailure(
            f"no schedule found for {source_transition!r}: {result.failure_reason}"
        )
    return result


def find_all_schedules(
    net: PetriNet,
    *,
    options: Optional[SchedulerOptions] = None,
    sources: Optional[Sequence[str]] = None,
    raise_on_failure: bool = False,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
) -> Dict[str, SchedulerResult]:
    """Find one schedule per uncontrollable source transition.

    ``sources`` may restrict / extend the set of transitions scheduled (e.g.
    to include initially-enabled transitions per Property 4.3).

    With ``workers`` greater than one the independent per-source EP searches
    fan out over a process pool (see :mod:`repro.scheduling.parallel`); the
    results are value-identical to the serial path, merged back in the same
    deterministic source order.  With ``options.intra_workers`` greater than
    one each search is instead parallelised *internally* (subtree work
    stealing, :mod:`repro.scheduling.intra`) and sources run sequentially
    through that one shared pool -- the right shape for nets with few
    sources; ``intra_workers`` takes precedence over ``workers``.

    ``backend`` overrides ``options.backend`` ("scalar" | "batched" |
    "kernel" | "auto"); the hot-loop backends produce byte-identical
    schedules, so the knob only trades wall clock (and the per-backend
    expansion counters).

    When the persistent artifact cache is active (``repro.cache.activate()``
    or ``REPRO_CACHE=1``), each per-source search first consults the
    two-level warm-start cache and replayed results come back with
    ``from_cache=True`` -- a warm process runs zero EP search work.  With
    the cache inactive (the default) the searches always run.

    Example::

        >>> from repro.apps.workloads import random_multi_source_net
        >>> net = random_multi_source_net(2, 3, seed=1)
        >>> results = find_all_schedules(net)
        >>> [ (s, r.success) for s, r in results.items() ]
        [('r0.src', True), ('r1.src', True)]
    """
    options = options or SchedulerOptions()
    if backend is not None:
        options = replace(options, backend=backend)
    # Composition rule for the two parallel layers: with intra_workers > 1
    # the per-source fan-out is NOT nested on top -- sources run one after
    # another through the single intra-search worker pool (pools are shared
    # process-wide per helper count), so sources x subtrees share one pool
    # instead of multiplying process counts.
    if (
        workers is not None
        and workers > 1
        and options.intra_workers <= 1
    ):
        from repro.scheduling.parallel import find_all_schedules_parallel

        return find_all_schedules_parallel(
            net,
            options=options,
            sources=sources,
            workers=workers,
            raise_on_failure=raise_on_failure,
        )
    analysis = StructuralAnalysis.of(net)
    targets = list(sources) if sources is not None else net.uncontrollable_sources()
    finder = find_schedule
    if _active_disk_cache() is not None:
        from repro.scheduling.warmstart import GLOBAL_SCHEDULE_CACHE

        finder = GLOBAL_SCHEDULE_CACHE.find_schedule
    results: Dict[str, SchedulerResult] = {}
    for source in targets:
        results[source] = finder(
            net,
            source,
            options=options,
            analysis=analysis,
            raise_on_failure=raise_on_failure,
        )
    return results


def _active_disk_cache():
    """The process-wide persistent store, or ``None`` (lazy import shim)."""
    from repro.cache import active_store

    return active_store()
