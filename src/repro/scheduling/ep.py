"""The scheduling algorithm: functions EP and EP_ECS (Section 5 of the paper).

The algorithm grows a rooted tree whose nodes carry reachable markings.  For
the source transition ``a`` it creates the root (initial marking) and its
child (marking after firing ``a``), then searches for an *entering point* of
the child that is the root itself.  ``EP(v, target)`` looks for an ancestor of
``target`` reachable from ``v`` no matter how the data-dependent choices
resolve; ``EP_ECS(E, v, target)`` does so for one enabled ECS by requiring an
entering point from every transition of the ECS.

Termination conditions (irrelevance criterion, place bounds, node budget)
prune the search space; Theorem 5.2 guarantees that a schedule is found if and
only if one exists in the pruned reachability tree.

After a successful search, post-processing retains only the chosen ECSs and
closes cycles by merging each leaf with the ancestor carrying the same
marking, yielding a :class:`~repro.scheduling.schedule.Schedule`.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from repro.petrinet.analysis import StructuralAnalysis
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet
from repro.scheduling.heuristics import (
    ECSLookahead,
    ECSOrderingHeuristic,
    HeuristicContext,
    InvariantGuidedOrdering,
    make_heuristic,
)
from repro.scheduling.schedule import Schedule
from repro.scheduling.termination import (
    CompositeCondition,
    TerminationCondition,
    default_termination,
)

ECS = FrozenSet[str]

UNDEF = None  # sentinel for "no entering point"


class SchedulingFailure(Exception):
    """Raised by :func:`find_schedule` when ``raise_on_failure`` is set."""


@dataclass
class SchedulerOptions:
    """Configuration of the scheduling algorithm."""

    single_source: bool = True
    use_invariant_heuristic: bool = True
    termination: Optional[TerminationCondition] = None
    max_nodes: int = 200_000
    validate: bool = True
    # Abort early when no T-invariant covers the source transition
    invariant_precheck: bool = True
    # "Fire a source transition only when the system cannot fire anything
    # else" (Section 4.4) applied as a pruning rule: source ECSs are only
    # explored at a node when every non-source ECS failed to produce an
    # entering point.  This keeps schedules small (few await nodes) and
    # avoids deferring part of a reaction to the next environment event.
    defer_sources: bool = True


@dataclass
class TreeNode:
    """A node of the scheduling tree."""

    index: int
    parent: Optional[int]
    depth: int
    marking: Marking
    transition: Optional[str]  # edge label from the parent
    total_tokens: int = 0
    children: List[int] = field(default_factory=list)
    ecs_choice: Optional[ECS] = None
    equal_ancestor: Optional[int] = None


class SchedulingTree:
    """The rooted tree grown by EP/EP_ECS, plus the current DFS path state."""

    def __init__(self, net: PetriNet):
        self.net = net
        self.nodes: List[TreeNode] = []
        # state of the current DFS path (root .. current node)
        self._path: List[int] = []
        self._markings_on_path: Dict[Marking, int] = {}
        self._path_firings: Dict[str, int] = {}

    # -- construction -----------------------------------------------------
    def add_root(self, marking: Marking) -> int:
        assert not self.nodes
        self.nodes.append(
            TreeNode(
                index=0,
                parent=None,
                depth=0,
                marking=marking,
                transition=None,
                total_tokens=marking.total_tokens(),
            )
        )
        return 0

    def add_child(self, parent: int, transition: str, marking: Marking) -> int:
        index = len(self.nodes)
        node = TreeNode(
            index=index,
            parent=parent,
            depth=self.nodes[parent].depth + 1,
            marking=marking,
            transition=transition,
            total_tokens=marking.total_tokens(),
        )
        self.nodes.append(node)
        self.nodes[parent].children.append(index)
        return index

    def __len__(self) -> int:
        return len(self.nodes)

    # -- SchedulingTreeView protocol ---------------------------------------
    def marking_of(self, node: int) -> Marking:
        return self.nodes[node].marking

    def total_tokens_of(self, node: int) -> int:
        return self.nodes[node].total_tokens

    def ancestors_of(self, node: int):
        """Proper ancestors, nearest first (generator to avoid allocations)."""
        current = self.nodes[node].parent
        while current is not None:
            yield current
            current = self.nodes[current].parent

    # -- DFS path bookkeeping -------------------------------------------------
    def push(self, node: int) -> None:
        tree_node = self.nodes[node]
        self._path.append(node)
        if tree_node.marking not in self._markings_on_path:
            self._markings_on_path[tree_node.marking] = node
        if tree_node.transition is not None:
            self._path_firings[tree_node.transition] = (
                self._path_firings.get(tree_node.transition, 0) + 1
            )

    def pop(self, node: int) -> None:
        popped = self._path.pop()
        assert popped == node
        tree_node = self.nodes[node]
        if self._markings_on_path.get(tree_node.marking) == node:
            del self._markings_on_path[tree_node.marking]
        if tree_node.transition is not None:
            self._path_firings[tree_node.transition] -= 1
            if not self._path_firings[tree_node.transition]:
                del self._path_firings[tree_node.transition]

    def equal_marking_ancestor(self, node: int) -> Optional[int]:
        """Proper ancestor on the current path carrying the same marking."""
        marking = self.nodes[node].marking
        candidate = self._markings_on_path.get(marking)
        if candidate is None or candidate == node:
            return None
        return candidate

    def is_ancestor(self, ancestor: int, node: int) -> bool:
        """True if ``ancestor`` is on the path from the root to ``node``
        (assuming ``node`` lies on the current DFS path)."""
        if ancestor == node:
            return True
        depth = self.nodes[ancestor].depth
        if depth >= len(self._path):
            # node might not be on the path (defensive fallback: walk parents)
            current: Optional[int] = node
            while current is not None:
                if current == ancestor:
                    return True
                current = self.nodes[current].parent
            return False
        return self._path[depth] == ancestor and depth <= self.nodes[node].depth

    def path_firings(self) -> Mapping[str, int]:
        return dict(self._path_firings)


@dataclass
class SchedulerResult:
    """Outcome of one scheduling attempt."""

    source_transition: str
    schedule: Optional[Schedule]
    tree_nodes: int
    elapsed_seconds: float
    failure_reason: Optional[str] = None

    @property
    def success(self) -> bool:
        return self.schedule is not None


class _EPSearch:
    """One run of the EP/EP_ECS search for a given source transition."""

    def __init__(
        self,
        net: PetriNet,
        source: str,
        options: SchedulerOptions,
        analysis: Optional[StructuralAnalysis] = None,
        heuristic: Optional[ECSOrderingHeuristic] = None,
    ):
        self.net = net
        self.source = source
        self.options = options
        self.analysis = analysis or StructuralAnalysis.of(net)
        self.termination = options.termination or default_termination(
            net, analysis=self.analysis, max_nodes=options.max_nodes
        )
        self.heuristic = heuristic or make_heuristic(
            net, self.analysis, source, use_invariants=options.use_invariant_heuristic
        )
        self.tree = SchedulingTree(net)
        self.other_uncontrollable = {
            t for t in self.analysis.uncontrollable if t != source
        }
        self._token_deltas: Dict[str, int] = {
            t: sum(net.post[t].values()) - sum(net.pre[t].values())
            for t in net.transitions
        }

    def _token_delta(self, transition: str) -> int:
        return self._token_deltas[transition]

    # -- ancestor ordering helpers -----------------------------------------
    def _closer_to_root(self, a: int, b: int) -> int:
        return a if self.tree.nodes[a].depth <= self.tree.nodes[b].depth else b

    # -- main entry -----------------------------------------------------------
    def run(self) -> SchedulerResult:
        start = time.monotonic()
        if self.options.invariant_precheck and isinstance(self.heuristic, InvariantGuidedOrdering):
            if not self.heuristic.source_is_coverable():
                return SchedulerResult(
                    source_transition=self.source,
                    schedule=None,
                    tree_nodes=0,
                    elapsed_seconds=time.monotonic() - start,
                    failure_reason=(
                        "no T-invariant fires the source transition; "
                        "no cyclic schedule can exist"
                    ),
                )
        initial = self.net.initial_marking
        root = self.tree.add_root(initial)
        self.tree.nodes[root].ecs_choice = frozenset({self.source})
        child_marking = self.net.fire(self.source, initial)
        child = self.tree.add_child(root, self.source, child_marking)

        # Pure-Python recursion is heap-allocated on CPython >= 3.11, so a deep
        # schedule (one tree level per fired transition) only needs a higher
        # recursion limit, not a bigger C stack.
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            self.tree.push(root)
            self.tree.push(child)
            try:
                entering_point = self._ep(child, root)
            finally:
                self.tree.pop(child)
                self.tree.pop(root)
        finally:
            sys.setrecursionlimit(old_limit)

        elapsed = time.monotonic() - start
        if entering_point != root:
            return SchedulerResult(
                source_transition=self.source,
                schedule=None,
                tree_nodes=len(self.tree),
                elapsed_seconds=elapsed,
                failure_reason="no entering point reaching the initial marking was found",
            )
        schedule = self._post_process(root)
        if self.options.validate:
            schedule.validate(self.analysis)
        return SchedulerResult(
            source_transition=self.source,
            schedule=schedule,
            tree_nodes=len(self.tree),
            elapsed_seconds=elapsed,
        )

    # -- EP ----------------------------------------------------------------
    def _ep(self, v: int, target: int) -> Optional[int]:
        if self.termination.holds(self.tree, v):
            return UNDEF
        equal = self.tree.equal_marking_ancestor(v)
        if equal is not None:
            self.tree.nodes[v].equal_ancestor = equal
            return equal

        marking = self.tree.marking_of(v)
        enabled = self.analysis.enabled_ecss(marking)
        if self.options.single_source:
            enabled = [
                ecs for ecs in enabled if not (ecs & self.other_uncontrollable)
            ]
        if not enabled:
            return UNDEF

        if len(enabled) == 1:
            ordered = list(enabled)
        else:
            lookahead: Dict[ECS, ECSLookahead] = {}
            for ecs in enabled:
                hits = False
                closes = False
                delta = min(self._token_delta(transition) for transition in ecs)
                if not self.analysis.is_source_ecs(ecs):
                    for transition in ecs:
                        candidate = self.net.fire(transition, marking)
                        if self.tree._markings_on_path.get(candidate) is not None:
                            closes = True
                            break
                        probe = self.tree.add_child(v, transition, candidate)
                        if self.termination.holds(self.tree, probe):
                            hits = True
                        # remove the probe node again (it was only a lookahead)
                        self.tree.nodes.pop()
                        self.tree.nodes[v].children.pop()
                        if hits:
                            break
                lookahead[ecs] = ECSLookahead(
                    hits_termination=hits, closes_cycle=closes, token_delta=delta
                )
            context = HeuristicContext(
                marking=marking,
                path_firings=self.tree.path_firings(),
                depth=self.tree.nodes[v].depth,
                lookahead=lookahead,
            )
            ordered = self.heuristic.order(enabled, context)

        if self.options.defer_sources:
            non_source = [ecs for ecs in ordered if not self.analysis.is_source_ecs(ecs)]
            source_ecss = [ecs for ecs in ordered if self.analysis.is_source_ecs(ecs)]
        else:
            non_source = list(ordered)
            source_ecss = []

        best: Optional[int] = UNDEF
        for ecs in non_source:
            entering_point = self._ep_ecs(ecs, v, target)
            if entering_point is UNDEF:
                continue
            if self.tree.is_ancestor(entering_point, target):
                self.tree.nodes[v].ecs_choice = ecs
                return entering_point
            if best is UNDEF or self.tree.nodes[entering_point].depth < self.tree.nodes[best].depth:
                self.tree.nodes[v].ecs_choice = ecs
                best = entering_point
        if best is not UNDEF:
            return best
        for ecs in source_ecss:
            entering_point = self._ep_ecs(ecs, v, target)
            if entering_point is UNDEF:
                continue
            if self.tree.is_ancestor(entering_point, target):
                self.tree.nodes[v].ecs_choice = ecs
                return entering_point
            if best is UNDEF or self.tree.nodes[entering_point].depth < self.tree.nodes[best].depth:
                self.tree.nodes[v].ecs_choice = ecs
                best = entering_point
        return best

    # -- EP_ECS ---------------------------------------------------------------
    def _ep_ecs(self, ecs: ECS, v: int, target: int) -> Optional[int]:
        entering_point: Optional[int] = UNDEF
        current_target = target
        for transition in sorted(ecs):
            if len(self.tree) >= self.options.max_nodes:
                return UNDEF
            marking = self.net.fire(transition, self.tree.marking_of(v))
            child = self.tree.add_child(v, transition, marking)
            self.tree.push(child)
            try:
                child_point = self._ep(child, current_target)
            finally:
                self.tree.pop(child)
            if child_point is UNDEF:
                return UNDEF
            if not (
                self.tree.is_ancestor(child_point, v) and child_point != v
            ):
                return UNDEF
            if entering_point is UNDEF:
                entering_point = child_point
            else:
                entering_point = self._closer_to_root(entering_point, child_point)
            if self.tree.is_ancestor(entering_point, target):
                current_target = v
        return entering_point

    # -- post-processing ------------------------------------------------------
    def _post_process(self, root: int) -> Schedule:
        retained: Set[int] = set()
        order: List[int] = []
        stack = [root]
        while stack:
            current = stack.pop()
            if current in retained:
                continue
            retained.add(current)
            order.append(current)
            node = self.tree.nodes[current]
            if node.ecs_choice is None:
                continue
            for child_index in node.children:
                child = self.tree.nodes[child_index]
                if child.transition in node.ecs_choice and child_index not in retained:
                    stack.append(child_index)

        # merged leaves: retained nodes that close a cycle on an equal-marking ancestor
        merged: Dict[int, int] = {}
        for index in retained:
            node = self.tree.nodes[index]
            if node.ecs_choice is None and node.equal_ancestor is not None:
                merged[index] = node.equal_ancestor

        schedule = Schedule(net=self.net, source_transition=self.source)
        index_map: Dict[int, int] = {}
        for index in sorted(retained):
            if index in merged:
                continue
            schedule_node = schedule.add_node(self.tree.nodes[index].marking)
            index_map[index] = schedule_node.index

        def resolve(index: int) -> int:
            while index in merged:
                index = merged[index]
            return index_map[index]

        for index in sorted(retained):
            if index in merged:
                continue
            node = self.tree.nodes[index]
            if node.ecs_choice is None:
                continue
            for child_index in node.children:
                child = self.tree.nodes[child_index]
                if child_index not in retained:
                    continue
                if child.transition not in node.ecs_choice:
                    continue
                schedule.add_edge(index_map[index], child.transition, resolve(child_index))
        schedule.root = index_map[root]
        return schedule


def find_schedule(
    net: PetriNet,
    source_transition: str,
    *,
    options: Optional[SchedulerOptions] = None,
    analysis: Optional[StructuralAnalysis] = None,
    heuristic: Optional[ECSOrderingHeuristic] = None,
    raise_on_failure: bool = False,
) -> SchedulerResult:
    """Find a (single-source) schedule for ``source_transition``.

    Returns a :class:`SchedulerResult`; when ``raise_on_failure`` is set a
    :class:`SchedulingFailure` is raised instead of returning an unsuccessful
    result.
    """
    options = options or SchedulerOptions()
    if source_transition not in net.transitions:
        raise KeyError(f"unknown transition {source_transition!r}")
    search = _EPSearch(net, source_transition, options, analysis=analysis, heuristic=heuristic)
    result = search.run()
    if raise_on_failure and not result.success:
        raise SchedulingFailure(
            f"no schedule found for {source_transition!r}: {result.failure_reason}"
        )
    return result


def find_all_schedules(
    net: PetriNet,
    *,
    options: Optional[SchedulerOptions] = None,
    sources: Optional[Sequence[str]] = None,
    raise_on_failure: bool = False,
) -> Dict[str, SchedulerResult]:
    """Find one schedule per uncontrollable source transition.

    ``sources`` may restrict / extend the set of transitions scheduled (e.g.
    to include initially-enabled transitions per Property 4.3).
    """
    options = options or SchedulerOptions()
    analysis = StructuralAnalysis.of(net)
    targets = list(sources) if sources is not None else net.uncontrollable_sources()
    results: Dict[str, SchedulerResult] = {}
    for source in targets:
        results[source] = find_schedule(
            net,
            source,
            options=options,
            analysis=analysis,
            raise_on_failure=raise_on_failure,
        )
    return results
