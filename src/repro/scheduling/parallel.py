"""Parallel multi-source schedule search.

The paper's compile-time step builds one single-source schedule per
uncontrollable input (Section 4.2), and the EP/EP_ECS searches for distinct
sources are completely independent: they share only the immutable net, the
structural analysis and the T-invariant basis.  This module fans those
searches out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the net is pickled **once** and shipped to each worker, which rebuilds
  the indexed snapshot and the :class:`StructuralAnalysis` locally (dense
  IDs follow sorted-name order, so every process derives bit-identical
  search state -- the property PR 1's indexed core was designed around);
* workers cache the materialised net per structural fingerprint, so a
  long-lived executor reused across calls (or across property-test
  examples) pays the unpickle + analysis cost once per net, not per task;
* schedules travel back in canonical serialized form (never dragging the
  worker's copy of the net along) and are re-bound to the caller's net
  object, merged in deterministic source order;
* per-source :class:`SearchCounters` are preserved exactly and can be
  aggregated with :func:`aggregate_counters`.

Because the search is deterministic, ``find_all_schedules_parallel`` is an
observational no-op relative to the serial loop: same schedules (byte
identical under :func:`~repro.scheduling.serialize.schedule_to_json`),
same counters, same failure reasons -- only the wall clock changes.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.petrinet.analysis import StructuralAnalysis
from repro.util import BoundedLRU
from repro.petrinet.fingerprint import structural_fingerprint
from repro.petrinet.net import PetriNet
from repro.scheduling.ep import (
    SchedulerOptions,
    SchedulerResult,
    SchedulingFailure,
    SearchCounters,
    find_schedule,
    resolve_backend_for,
)
from repro.scheduling.serialize import result_from_record, result_to_record


def default_worker_count() -> int:
    """Default process fan-out: one worker per available CPU."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

# Per-process cache of materialised nets: fingerprint -> (net, analysis).
# Bounded so a worker serving many different nets (property tests) does not
# accumulate every snapshot it ever saw.
_MATERIALISED: "BoundedLRU[str, Tuple[PetriNet, StructuralAnalysis]]" = BoundedLRU(4)


def _materialise(
    fingerprint: str, payload: Optional[bytes]
) -> Tuple[PetriNet, StructuralAnalysis]:
    entry = _MATERIALISED.get(fingerprint)
    if entry is not None:
        return entry
    if payload is None:
        raise RuntimeError(
            f"worker has no materialised net for fingerprint {fingerprint[:12]}..."
            " and no payload was shipped"
        )
    net: PetriNet = pickle.loads(payload)
    entry = (net, StructuralAnalysis.of(net))
    _MATERIALISED.put(fingerprint, entry)
    return entry


def _preload_worker(fingerprint: str, payload: bytes) -> None:
    """Executor initializer: ship the net once per worker process."""
    from repro.cache import disable_in_subprocess

    disable_in_subprocess()
    _materialise(fingerprint, payload)


def _search_task(
    fingerprint: str,
    payload: Optional[bytes],
    source: str,
    options_blob: bytes,
) -> Dict[str, object]:
    """Run one EP search in the worker; return a net-free result record."""
    from repro.cache import disable_in_subprocess

    # all cache traffic is the parent's job; a worker must not use an
    # inherited (fork-unsafe) connection nor open a contending one.  Done
    # here as well as in the initializer so externally-supplied executors
    # get the same guarantee.
    disable_in_subprocess()
    net, analysis = _materialise(fingerprint, payload)
    options: SchedulerOptions = pickle.loads(options_blob)
    result = find_schedule(net, source, options=options, analysis=analysis)
    return result_to_record(result)


# ---------------------------------------------------------------------------
# caller side
# ---------------------------------------------------------------------------


def aggregate_counters(results: Iterable[SchedulerResult]) -> SearchCounters:
    """Sum the search counters over several per-source results."""
    return SearchCounters.aggregate(result.counters for result in results)


def _live_counters_merge(record: Dict[str, object]) -> None:
    """Account a worker-executed search in the process's live-search totals.

    Keeps :data:`repro.scheduling.warmstart.LIVE_SEARCH_COUNTERS` honest for
    cache-aware parallel runs: replayed sources contribute nothing, searches
    that actually ran in a worker contribute their full counters.
    """
    from repro.scheduling.warmstart import LIVE_SEARCH_COUNTERS

    LIVE_SEARCH_COUNTERS.merge(SearchCounters(**record["counters"]))


def find_all_schedules_parallel(
    net: PetriNet,
    *,
    options: Optional[SchedulerOptions] = None,
    sources: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    raise_on_failure: bool = False,
    executor: Optional[Executor] = None,
) -> Dict[str, SchedulerResult]:
    """Schedule every source transition, one EP search per pool task.

    Semantics match the serial :func:`~repro.scheduling.ep.find_all_schedules`
    exactly -- the result dict is keyed in the same deterministic source
    order and each :class:`SchedulerResult` is value-identical -- except
    that with ``raise_on_failure`` every search still runs to completion
    before the failure of the earliest source (in that order) is raised.

    ``executor`` lets callers amortise pool start-up across many calls
    (each task then carries the pickled net, which workers cache per
    structural fingerprint); by default a dedicated pool is created and the
    net is shipped once per worker via the pool initializer.

    When the persistent artifact cache is active (:mod:`repro.cache`), the
    *parent* performs a read-through before fanning out -- cached sources
    are replayed without ever reaching the pool -- and funnels the write of
    every fresh record itself.  Workers never open the store, so N
    processes cannot contend on one sqlite file, and the cache keys use the
    caller's original options (before backend pinning) so serial and
    parallel runs share entries.
    """
    options = options or SchedulerOptions()
    targets = list(sources) if sources is not None else net.uncontrollable_sources()
    for source in targets:
        if source not in net.transitions:
            raise KeyError(f"unknown transition {source!r}")
    if not targets:
        return {}

    fingerprint = structural_fingerprint(net)

    # Parent-side cache read-through (L1 + validated disk L2).  Keys use the
    # pre-pinning options so they line up with the serial path's.
    from repro.cache import active_store

    warm_cache = None
    cached_records: Dict[str, Dict[str, object]] = {}
    if active_store() is not None:
        from repro.scheduling.warmstart import GLOBAL_SCHEDULE_CACHE

        warm_cache = GLOBAL_SCHEDULE_CACHE
        # replay validation memoises its structural analysis on the net's
        # indexed snapshot, so N disk hits cost one analysis and an
        # all-miss cold run costs none
        for source in targets:
            record = warm_cache.lookup_record(
                net, source, options, fingerprint=fingerprint
            )
            if record is not None:
                cached_records[source] = record
    pending = [source for source in targets if source not in cached_records]
    cacheable_options = options

    records: List[Dict[str, object]] = []
    if pending:
        # Resolve "auto" on the caller: the decision is deterministic in (net,
        # options), but pinning the concrete backend into the shipped options
        # makes every worker's choice visible and independent of its environment.
        options = replace(options, backend=resolve_backend_for(net, options))
        payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
        options_blob = pickle.dumps(options, protocol=pickle.HIGHEST_PROTOCOL)

        own_pool = executor is None
        if own_pool:
            worker_count = min(workers or default_worker_count(), len(pending))
            executor = ProcessPoolExecutor(
                max_workers=max(1, worker_count),
                initializer=_preload_worker,
                initargs=(fingerprint, payload),
            )
            task_payload: Optional[bytes] = None  # shipped by the initializer
        else:
            task_payload = payload

        try:
            futures = [
                executor.submit(
                    _search_task, fingerprint, task_payload, source, options_blob
                )
                for source in pending
            ]
            records = [future.result() for future in futures]
        finally:
            if own_pool:
                executor.shutdown()

    results: Dict[str, SchedulerResult] = {}
    fresh = dict(zip(pending, records))
    for source in targets:
        if source in fresh:
            record = fresh[source]
            if warm_cache is not None:
                # writes funneled through the parent: one process, no
                # cross-process sqlite contention
                warm_cache.store_record(
                    net, source, cacheable_options, record, fingerprint=fingerprint
                )
                _live_counters_merge(record)
            results[source] = result_from_record(net, source, record)
        else:
            results[source] = result_from_record(
                net, source, cached_records[source], from_cache=True
            )
    if raise_on_failure:
        for source in targets:
            result = results[source]
            if not result.success:
                raise SchedulingFailure(
                    f"no schedule found for {source!r}: {result.failure_reason}"
                )
    return results
