"""Parallel multi-source schedule search.

The paper's compile-time step builds one single-source schedule per
uncontrollable input (Section 4.2), and the EP/EP_ECS searches for distinct
sources are completely independent: they share only the immutable net, the
structural analysis and the T-invariant basis.  This module fans those
searches out over a :class:`~concurrent.futures.ProcessPoolExecutor`:

* the net's immutable dense analysis is published once into the
  shared-memory plane (:mod:`repro.petrinet.shm`) and workers receive a
  small :class:`~repro.petrinet.shm.SharedNetHandle`: each worker attaches
  read-only views over the same physical pages and builds its snapshot from
  the borrowed arrays instead of rebuilding the analysis from scratch
  (dense IDs follow sorted-name order, so every process derives
  bit-identical search state -- the property PR 1's indexed core was
  designed around).  When shared memory is unavailable (platform,
  permissions, ``REPRO_SHM=0``, or ``workers=1``) the net is pickled
  **once** and shipped to each worker exactly as before -- the plane is a
  transport optimisation and never changes a schedule;
* workers cache the materialised net per structural fingerprint in a
  bounded LRU, so a long-lived executor reused across calls (or across
  property-test examples) pays the attach / unpickle cost once per net,
  not per task; evicted entries detach their shared-memory views
  deterministically;
* schedules travel back in canonical serialized form (never dragging the
  worker's copy of the net along) and are re-bound to the caller's net
  object, merged in deterministic source order;
* per-source :class:`SearchCounters` are preserved exactly and can be
  aggregated with :func:`aggregate_counters`.

Because the search is deterministic, ``find_all_schedules_parallel`` is an
observational no-op relative to the serial loop: same schedules (byte
identical under :func:`~repro.scheduling.serialize.schedule_to_json`),
same counters, same failure reasons -- only the wall clock changes.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import replace
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, Tuple

from repro.petrinet.analysis import StructuralAnalysis
from repro.util import BoundedLRU
from repro.petrinet.fingerprint import structural_fingerprint
from repro.petrinet.net import PetriNet
from repro.petrinet.shm import (
    AttachedNet,
    SharedNetHandle,
    acquire_shared_plane,
    attach_net,
)
from repro.scheduling.ep import (
    SchedulerOptions,
    SchedulerResult,
    SchedulingFailure,
    SearchCounters,
    find_schedule,
    resolve_backend_for,
)
from repro.scheduling.serialize import result_from_record, result_to_record


def default_worker_count() -> int:
    """Default process fan-out: one worker per available CPU."""
    return max(1, os.cpu_count() or 1)


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------

class _WorkerNet(NamedTuple):
    """One materialised net in a worker: facade, analysis, optional shm views."""

    net: PetriNet
    analysis: StructuralAnalysis
    attachment: Optional[AttachedNet]


def _release_worker_entry(_fingerprint: str, entry: _WorkerNet) -> None:
    """LRU eviction hook: detach shared-memory views deterministically."""
    if entry.attachment is not None:
        entry.attachment.close()


# Per-process cache of materialised nets: fingerprint -> _WorkerNet.  Bounded
# so a worker serving many different nets (property tests, a reused external
# executor) does not accumulate every snapshot -- and every attachment -- it
# ever saw; eviction closes the evictee's shared-memory views.
_MATERIALISED: "BoundedLRU[str, _WorkerNet]" = BoundedLRU(
    4, on_evict=_release_worker_entry
)


def _materialise(
    fingerprint: str,
    payload: Optional[bytes],
    handle: Optional[SharedNetHandle] = None,
) -> _WorkerNet:
    """Fingerprint-cached net materialisation: attach > unpickle > error.

    Prefers attaching the shared-memory plane described by ``handle``; any
    attach failure (stale block, fingerprint mismatch, platform refusal)
    falls back to the pickled ``payload`` with a warning -- degraded
    transport must never change a schedule.  With neither a usable handle
    nor a payload the worker cannot proceed and raises.
    """
    entry = _MATERIALISED.get(fingerprint)
    if entry is not None:
        return entry
    if handle is not None:
        try:
            attached = attach_net(handle)
        except Exception as exc:
            warnings.warn(
                f"shared-memory attach failed in worker {os.getpid()} ({exc}); "
                + (
                    "falling back to the pickled net"
                    if payload is not None
                    else "no pickled fallback was shipped"
                ),
                RuntimeWarning,
            )
        else:
            entry = _WorkerNet(attached.net, attached.analysis, attached)
            _MATERIALISED.put(fingerprint, entry)
            return entry
    if payload is None:
        raise RuntimeError(
            f"worker has no materialised net for fingerprint {fingerprint[:12]}..."
            " and no payload was shipped"
        )
    net: PetriNet = pickle.loads(payload)
    entry = _WorkerNet(net, StructuralAnalysis.of(net), None)
    _MATERIALISED.put(fingerprint, entry)
    return entry


def _preload_worker(
    fingerprint: str,
    payload: Optional[bytes],
    handle: Optional[SharedNetHandle] = None,
) -> None:
    """Executor initializer: materialise the net once per worker process.

    On the shared-memory path only the handle is shipped; an attach failure
    here (with no pickled fallback) breaks the pool, which the caller
    catches and retries over the pickle path.
    """
    from repro.cache import disable_in_subprocess

    disable_in_subprocess()
    _materialise(fingerprint, payload, handle)


def _search_task(
    fingerprint: str,
    payload: Optional[bytes],
    source: str,
    options_blob: bytes,
    handle: Optional[SharedNetHandle] = None,
) -> Dict[str, object]:
    """Run one EP search in the worker; return a net-free result record."""
    from repro.cache import disable_in_subprocess

    # all cache traffic is the parent's job; a worker must not use an
    # inherited (fork-unsafe) connection nor open a contending one.  Done
    # here as well as in the initializer so externally-supplied executors
    # get the same guarantee.
    disable_in_subprocess()
    worker_net = _materialise(fingerprint, payload, handle)
    options: SchedulerOptions = pickle.loads(options_blob)
    result = find_schedule(
        worker_net.net, source, options=options, analysis=worker_net.analysis
    )
    return result_to_record(result)


# ---------------------------------------------------------------------------
# caller side
# ---------------------------------------------------------------------------


def _run_own_pool(
    worker_count: int,
    fingerprint: str,
    payload_supplier,
    options_blob: bytes,
    pending: Sequence[str],
    plane,
) -> List[Dict[str, object]]:
    """Run the pending searches in a dedicated pool, shm first, pickle second.

    With a published plane the initializer ships only the handle -- no net
    bytes cross the pipe and ``payload_supplier`` (a zero-argument callable
    producing the pickled net) is never even called; if attaching breaks
    the workers -- e.g. the blocks vanished between publish and pool start
    -- the resulting :class:`BrokenProcessPool` is caught and the whole
    batch reruns over a fresh pool on the classic pickled-net path.
    Searches are deterministic and side-effect free in workers, so the
    retry is observationally invisible.
    """

    def run_batch(payload, handle) -> List[Dict[str, object]]:
        pool = ProcessPoolExecutor(
            max_workers=worker_count,
            initializer=_preload_worker,
            initargs=(fingerprint, payload, handle),
        )
        try:
            futures = [
                pool.submit(_search_task, fingerprint, None, source, options_blob)
                for source in pending
            ]
            return [future.result() for future in futures]
        finally:
            pool.shutdown()

    if plane is not None:
        try:
            return run_batch(None, plane.handle)
        except BrokenProcessPool:
            # could be the shared-memory preload, but also any worker crash
            # (OOM kill, native fault) mid-search -- a crash unrelated to
            # the transport will recur on the retry and propagate from there
            warnings.warn(
                "worker pool broke while running the batch over the "
                "shared-memory transport; retrying once over the "
                "pickled-net path",
                RuntimeWarning,
            )
    return run_batch(payload_supplier(), None)


def aggregate_counters(results: Iterable[SchedulerResult]) -> SearchCounters:
    """Sum the search counters over several per-source results."""
    return SearchCounters.aggregate(result.counters for result in results)


def _live_counters_merge(record: Dict[str, object]) -> None:
    """Account a worker-executed search in the process's live-search totals.

    Keeps :data:`repro.scheduling.warmstart.LIVE_SEARCH_COUNTERS` honest for
    cache-aware parallel runs: replayed sources contribute nothing, searches
    that actually ran in a worker contribute their full counters.
    """
    from repro.scheduling.warmstart import LIVE_SEARCH_COUNTERS

    LIVE_SEARCH_COUNTERS.merge(SearchCounters(**record["counters"]))


def find_all_schedules_parallel(
    net: PetriNet,
    *,
    options: Optional[SchedulerOptions] = None,
    sources: Optional[Sequence[str]] = None,
    workers: Optional[int] = None,
    raise_on_failure: bool = False,
    executor: Optional[Executor] = None,
) -> Dict[str, SchedulerResult]:
    """Schedule every source transition, one EP search per pool task.

    Semantics match the serial :func:`~repro.scheduling.ep.find_all_schedules`
    exactly -- the result dict is keyed in the same deterministic source
    order and each :class:`SchedulerResult` is value-identical -- except
    that with ``raise_on_failure`` every search still runs to completion
    before the failure of the earliest source (in that order) is raised.

    ``executor`` lets callers amortise pool start-up across many calls
    (each task then carries the shared-memory handle plus the pickled net
    as fallback; workers attach lazily and cache per structural
    fingerprint, detaching on LRU eviction); by default a dedicated pool is
    created and the analysis plane's handle -- or, with shared memory
    unavailable, the pickled net -- is shipped once per worker via the pool
    initializer.

    When the persistent artifact cache is active (:mod:`repro.cache`), the
    *parent* performs a read-through before fanning out -- cached sources
    are replayed without ever reaching the pool -- and funnels the write of
    every fresh record itself.  Workers never open the store, so N
    processes cannot contend on one sqlite file, and the cache keys use the
    caller's original options (before backend pinning) so serial and
    parallel runs share entries.
    """
    options = options or SchedulerOptions()
    targets = list(sources) if sources is not None else net.uncontrollable_sources()
    for source in targets:
        if source not in net.transitions:
            raise KeyError(f"unknown transition {source!r}")
    if not targets:
        return {}

    fingerprint = structural_fingerprint(net)

    # Parent-side cache read-through (L1 + validated disk L2).  Keys use the
    # pre-pinning options so they line up with the serial path's.
    from repro.cache import active_store

    warm_cache = None
    cached_records: Dict[str, Dict[str, object]] = {}
    if active_store() is not None:
        from repro.scheduling.warmstart import GLOBAL_SCHEDULE_CACHE

        warm_cache = GLOBAL_SCHEDULE_CACHE
        # replay validation memoises its structural analysis on the net's
        # indexed snapshot, so N disk hits cost one analysis and an
        # all-miss cold run costs none
        for source in targets:
            record = warm_cache.lookup_record(
                net, source, options, fingerprint=fingerprint
            )
            if record is not None:
                cached_records[source] = record
    pending = [source for source in targets if source not in cached_records]
    cacheable_options = options

    records: List[Dict[str, object]] = []
    if pending:
        # Resolve "auto" on the caller: the decision is deterministic in (net,
        # options), but pinning the concrete backend into the shipped options
        # makes every worker's choice visible and independent of its environment.
        # The kernel tier is pinned the same way -- workers run the
        # coordinator's compiled/numpy decision (and only the coordinator
        # emits the fallback RuntimeWarning), re-degrading locally only if
        # their own environment cannot honour a "compiled" pin.
        # intra_workers is pinned to 1: the composition rule is sources x
        # subtrees sharing ONE pool, owned by the coordinating process
        # (find_all_schedules routes to the intra layer instead of here when
        # intra_workers > 1) -- a per-source worker must never fork its own
        # helper pool underneath this fan-out.
        # objective / candidate_limit travel untouched in the shipped
        # options: each per-source search IS the serial point of its own
        # enumerate -> score -> select pass, so the worker scores candidates
        # exactly as the serial loop would and the record ships the same
        # (objective, score) pair -- selection is deterministic in (net,
        # source, options), never in the worker topology.
        resolved_backend = resolve_backend_for(net, options)
        resolved_tier = options.kernel_tier
        if resolved_backend == "kernel":
            from repro.petrinet.kernel import resolve_kernel_tier

            resolved_tier = resolve_kernel_tier(options.kernel_tier)
        options = replace(
            options,
            backend=resolved_backend,
            kernel_tier=resolved_tier,
            intra_workers=1,
        )
        options_blob = pickle.dumps(options, protocol=pickle.HIGHEST_PROTOCOL)

        def payload_supplier() -> bytes:
            return pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)

        if executor is None:
            worker_count = max(1, min(workers or default_worker_count(), len(pending)))
            # workers=1 gains nothing from the plane; publish only for a fan-out
            plane = (
                acquire_shared_plane(net, fingerprint) if worker_count > 1 else None
            )
            try:
                records = _run_own_pool(
                    worker_count,
                    fingerprint,
                    payload_supplier,
                    options_blob,
                    pending,
                    plane,
                )
            finally:
                if plane is not None:
                    plane.release()
        else:
            # Externally-supplied executor: its workers outlive this call, so
            # every task carries the handle (workers attach lazily, cache per
            # fingerprint, detach on LRU eviction) plus the pickled bytes as
            # the always-correct fallback.  The registry keeps the plane
            # alive across calls for pool reuse.
            payload = payload_supplier()
            plane = acquire_shared_plane(net, fingerprint)
            task_handle = plane.handle if plane is not None else None
            try:
                futures = [
                    executor.submit(
                        _search_task,
                        fingerprint,
                        payload,
                        source,
                        options_blob,
                        task_handle,
                    )
                    for source in pending
                ]
                records = [future.result() for future in futures]
            finally:
                if plane is not None:
                    plane.release()

    results: Dict[str, SchedulerResult] = {}
    fresh = dict(zip(pending, records))
    for source in targets:
        if source in fresh:
            record = fresh[source]
            if warm_cache is not None:
                # writes funneled through the parent: one process, no
                # cross-process sqlite contention
                warm_cache.store_record(
                    net, source, cacheable_options, record, fingerprint=fingerprint
                )
                _live_counters_merge(record)
            results[source] = result_from_record(net, source, record)
        else:
            results[source] = result_from_record(
                net, source, cached_records[source], from_cache=True
            )
    if raise_on_failure:
        for source in targets:
            result = results[source]
            if not result.success:
                raise SchedulingFailure(
                    f"no schedule found for {source!r}: {result.failure_reason}"
                )
    return results
