"""Termination conditions for the scheduling search (Section 4.4).

A termination condition is a predicate over nodes of the scheduling tree.
When it holds at a node, the algorithm stops exploring past that node (the
function EP returns UNDEF for it).  The paper discusses two conditions:

* **Pre-defined place bounds** (the approach of [13]): stop whenever any
  place exceeds a user-supplied bound.  Simple, but the bounds must be guessed
  a priori and no constant bound works for some schedulable nets (Figure 7).
* **The irrelevance criterion** (Definition 4.5): stop at a marking that
  covers an ancestor marking while only adding tokens to places that were
  already saturated (at or above their *degree*, Definition 4.4) in the
  ancestor.

Conditions are composable; a node budget provides a safety net for genuinely
unschedulable nets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Protocol, Sequence

from repro.petrinet.analysis import StructuralAnalysis, all_place_degrees
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet


class SchedulingTreeView(Protocol):
    """The part of the scheduling tree a termination condition can see.

    Trees built on the indexed core may additionally expose ``vec_of(node)``
    (a dense tuple of token counts) and an ``inet`` attribute (the
    :class:`~repro.petrinet.indexed.IndexedNet`); conditions use those as a
    fast path and fall back to ``marking_of`` otherwise.
    """

    def marking_of(self, node: int) -> Marking:  # pragma: no cover - protocol
        ...

    def ancestors_of(self, node: int) -> Iterable[int]:  # pragma: no cover - protocol
        """Proper ancestors of ``node``, nearest first."""
        ...


class TerminationCondition:
    """Base class: callable on (tree, node) -> bool.

    **Extending** -- subclasses must implement :meth:`holds`.  A condition
    whose verdict depends only on the candidate marking, its tree depth and
    the markings on the path to it should *also* implement
    :meth:`frontier_mask` and set :attr:`supports_frontier_mask`; that pair
    is the public extension point that keeps the batched and kernel EP
    backends available (a condition without it forces the scalar backend,
    see :func:`split_frontier_conditions`).  The contract is pinned by
    ``tests/test_kernel.py`` and worked through in
    ``docs/user_guide.md`` ("Custom termination conditions").
    """

    name = "termination"

    #: **Public extension point** (with :meth:`frontier_mask`).  True for
    #: conditions whose verdict depends only on the candidate marking, its
    #: depth and the markings on the path to it -- the ones the batched and
    #: kernel EP backends can evaluate for a whole frontier at once via
    #: :meth:`frontier_mask`.  Index-dependent conditions
    #: (:class:`NodeBudget`) and conditions inspecting other tree state must
    #: leave this False, which restricts searches using them to the scalar
    #: backend.
    supports_frontier_mask = False

    def holds(self, tree: SchedulingTreeView, node: int) -> bool:
        """True when the search must stop exploring past ``node``."""
        raise NotImplementedError

    def frontier_mask(self, inet, ancestors, children, child_depth: int):
        """Batched verdicts for a whole frontier (boolean, one per child row).

        **Public extension point** (with :attr:`supports_frontier_mask`):
        user-defined conditions that implement this pair are evaluated
        frontier-at-a-time and keep the batched/kernel backends instead of
        silently forcing the scalar one.

        ``inet`` is the :class:`~repro.petrinet.indexed.IndexedNet`
        snapshot, ``ancestors`` the ``(depth, n_places)`` int64 matrix of
        markings on the path from the root to the expanded node (the node
        included, rows in any order), ``children`` the ``(n_children,
        n_places)`` candidate child markings, and ``child_depth`` the tree
        depth every child would have (expanded node's depth + 1).  Returns
        a boolean array of ``n_children`` verdicts and must agree exactly
        with :meth:`holds` evaluated on a child node hanging off the
        expanded node -- the backends' byte-identical-schedule contract
        rests on that equivalence.  Only called when
        :attr:`supports_frontier_mask` is True.
        """
        raise NotImplementedError(f"{self.name} has no batched form")

    def __call__(self, tree: SchedulingTreeView, node: int) -> bool:
        return self.holds(tree, node)

    def describe(self) -> str:
        """Short human-readable identity (used in failure reasons / logs)."""
        return self.name


@dataclass
class IrrelevanceCriterion(TerminationCondition):
    """The irrelevance criterion of Definition 4.5.

    A node's marking ``M`` is irrelevant w.r.t. the current tree if some
    ancestor marking ``M̂`` (on the path from the root) satisfies:

    a. ``M`` is reachable from ``M̂`` (true by construction for ancestors);
    b. no place has more tokens in ``M̂`` than in ``M``;
    c. every place where ``M`` has strictly more tokens than ``M̂`` is already
       saturated in ``M̂``: ``M̂(p) >= degree(p)``.

    We additionally require ``M != M̂``; the equal-marking case is handled by
    the scheduling algorithm itself (it closes a cycle there instead of
    pruning).
    """

    degrees: Dict[str, int]
    name: str = "irrelevance"
    supports_frontier_mask = True
    # cached dense degree vector, keyed by the indexed net it was built for
    _degrees_vec_for: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _degrees_vec: tuple = field(default=(), init=False, repr=False, compare=False)
    _degrees_np: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _incremental_for: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _incremental: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __getstate__(self) -> Dict[str, object]:
        # The dense-degree cache pins an IndexedNet (and through it the whole
        # net); strip it so shipping a custom termination condition to a
        # scheduling worker never drags a second copy of the net along.
        state = dict(self.__dict__)
        state["_degrees_vec_for"] = None
        state["_degrees_vec"] = ()
        state["_degrees_np"] = None
        state["_incremental_for"] = None
        state["_incremental"] = None
        return state

    @classmethod
    def for_net(cls, net: PetriNet) -> "IrrelevanceCriterion":
        """Build the criterion from the place degrees of ``net`` (Definition 4.4)."""
        return cls(degrees=all_place_degrees(net))

    @classmethod
    def for_analysis(cls, analysis: StructuralAnalysis) -> "IrrelevanceCriterion":
        """Reuse the degrees a :class:`StructuralAnalysis` already computed."""
        return cls(degrees=dict(analysis.degrees))

    def degrees_vec(self, inet) -> tuple:
        """Dense degree vector for a snapshot (cached per indexed net)."""
        if self._degrees_vec_for is not inet:
            self._degrees_vec = tuple(
                self.degrees.get(name, 0) for name in inet.place_names
            )
            self._degrees_np = None
            self._degrees_vec_for = inet
        return self._degrees_vec

    def incremental_for(self, inet):
        """The depth-independent checker for a snapshot (cached, shared).

        One :class:`~repro.petrinet.kernel.IncrementalIrrelevance` per
        (criterion, snapshot): the scalar ``holds`` fast path and the fused
        kernel backend share it, so its op counters describe the whole
        search (the depth-regression tests assert on them).
        """
        if self._incremental_for is not inet:
            from repro.petrinet.kernel import IncrementalIrrelevance

            self._incremental = IncrementalIrrelevance(self.degrees_vec(inet))
            self._incremental_for = inet
        return self._incremental

    def frontier_mask(self, inet, ancestors, children, child_depth: int):
        """Batched Definition 4.5 over a whole frontier (one broadcast)."""
        import numpy as np

        from repro.petrinet.batched import irrelevance_frontier_mask

        degrees = self.degrees_vec(inet)
        if self._degrees_np is None:
            self._degrees_np = np.asarray(degrees, dtype=np.int64)
        return irrelevance_frontier_mask(children, ancestors, self._degrees_np)

    def irrelevant_rows(self, inet, matrix, ancestor_vec):
        """Batched form over a marking matrix (one row per marking).

        Returns a boolean vector marking the rows irrelevant w.r.t.
        ``ancestor_vec``; the caller supplies rows known to be reachable
        from the ancestor (condition (a) of Definition 4.5).
        """
        from repro.petrinet.batched import irrelevance_mask

        return irrelevance_mask(matrix, ancestor_vec, self.degrees_vec(inet))

    def is_irrelevant(self, marking: Marking, ancestor: Marking) -> bool:
        """The Definition 4.5 test of ``marking`` against one ``ancestor``."""
        if marking == ancestor:
            return False
        # (b) the ancestor must be covered by the marking
        for place, count in ancestor.items():
            if marking[place] < count:
                return False
        # (c) places that grew must already have been saturated
        for place, count in marking.items():
            previous = ancestor[place]
            if count > previous and previous < self.degrees.get(place, 0):
                return False
        return True

    def _holds_vec(self, tree, inet, node: int) -> bool:
        """Dense fast path over marking vectors (no Marking construction).

        When the tree exposes its path marking index
        (``path_probe_state``), the verdict comes from the incremental
        checker -- O(over-degree places) hash probes instead of an O(depth)
        ancestor walk, bitwise identical (the witness set enumerated by
        :class:`~repro.petrinet.kernel.IncrementalIrrelevance` is exactly
        the set of path markings satisfying Definition 4.5).  The walk
        remains as the exact fallback for capped children and for trees
        without path state.
        """
        degrees = self.degrees_vec(inet)
        probe_state = getattr(tree, "path_probe_state", None)
        if probe_state is not None:
            state = probe_state(node)
            if state is not None:
                verdict = self.incremental_for(inet).check(
                    tree.vec_of(node),
                    state[0],
                    state[1],
                    tree.total_tokens_of(node),
                )
                if verdict is not None:
                    return verdict
        vec = tree.vec_of(node)
        totals = tree.total_tokens_of
        current_total = totals(node)
        for ancestor in tree.ancestors_of(node):
            if totals(ancestor) > current_total:
                continue
            avec = tree.vec_of(ancestor)
            if avec is vec or avec == vec:
                continue
            irrelevant = True
            for count, previous, degree in zip(vec, avec, degrees):
                if count < previous or (count > previous and previous < degree):
                    irrelevant = False
                    break
            if irrelevant:
                return True
        return False

    def holds(self, tree: SchedulingTreeView, node: int) -> bool:
        vec_of = getattr(tree, "vec_of", None)
        inet = getattr(tree, "inet", None)
        if vec_of is not None and inet is not None:
            return self._holds_vec(tree, inet, node)
        marking = tree.marking_of(node)
        # Cheap pre-filter: an ancestor can only be covered by the current
        # marking if it does not hold more tokens in total.
        totals = getattr(tree, "total_tokens_of", None)
        current_total = totals(node) if totals is not None else None
        for ancestor in tree.ancestors_of(node):
            if current_total is not None and totals(ancestor) > current_total:
                continue
            if self.is_irrelevant(marking, tree.marking_of(ancestor)):
                return True
        return False


@dataclass
class PlaceBoundCondition(TerminationCondition):
    """Stop when any place exceeds a pre-defined bound (the approach of [13]).

    ``default_bound`` applies to places not listed in ``bounds``; ``None``
    means those places are unconstrained.
    """

    bounds: Dict[str, int] = field(default_factory=dict)
    default_bound: Optional[int] = None
    name: str = "place-bounds"
    supports_frontier_mask = True
    _bounds_vec_for: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _bounds_vec: tuple = field(default=(), init=False, repr=False, compare=False)

    @classmethod
    def uniform(cls, net: PetriNet, bound: int) -> "PlaceBoundCondition":
        """The same pre-defined bound on every place (the [13] approach)."""
        return cls(bounds={place: bound for place in net.places})

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_bounds_vec_for"] = None
        state["_bounds_vec"] = ()
        return state

    def _bounded_pids(self, inet) -> tuple:
        if self._bounds_vec_for is not inet:
            entries = []
            for pid, name in enumerate(inet.place_names):
                bound = self.bounds.get(name, self.default_bound)
                if bound is not None:
                    entries.append((pid, bound))
            self._bounds_vec = tuple(entries)
            self._bounds_vec_for = inet
        return self._bounds_vec

    def violation_rows(self, inet, matrix):
        """Batched form: rows of a marking matrix exceeding some bound."""
        from repro.petrinet.batched import bound_violation_mask

        return bound_violation_mask(matrix, self._bounded_pids(inet))

    def frontier_mask(self, inet, ancestors, children, child_depth: int):
        return self.violation_rows(inet, children)

    def holds(self, tree: SchedulingTreeView, node: int) -> bool:
        vec_of = getattr(tree, "vec_of", None)
        inet = getattr(tree, "inet", None)
        if vec_of is not None and inet is not None:
            vec = vec_of(node)
            for pid, bound in self._bounded_pids(inet):
                if vec[pid] > bound:
                    return True
            return False
        marking = tree.marking_of(node)
        for place, count in marking.items():
            bound = self.bounds.get(place, self.default_bound)
            if bound is not None and count > bound:
                return True
        return False


@dataclass
class UserBoundCondition(TerminationCondition):
    """Respect the per-channel bounds declared in the specification.

    Channel places carrying a ``bound`` attribute (set by the linker from the
    netlist) must never exceed it; this models the blocking-write semantics of
    bounded channels during scheduling.
    """

    bounds: Dict[str, int] = field(default_factory=dict)
    name: str = "user-channel-bounds"
    supports_frontier_mask = True
    _bounds_vec_for: Optional[object] = field(
        default=None, init=False, repr=False, compare=False
    )
    _bounds_vec: tuple = field(default=(), init=False, repr=False, compare=False)

    @classmethod
    def for_net(cls, net: PetriNet) -> "UserBoundCondition":
        """Collect the per-place ``bound`` attributes users set on ``net``."""
        bounds = {
            place: obj.bound for place, obj in net.places.items() if obj.bound is not None
        }
        return cls(bounds=bounds)

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state["_bounds_vec_for"] = None
        state["_bounds_vec"] = ()
        return state

    def _bounded_pids(self, inet) -> tuple:
        if self._bounds_vec_for is not inet:
            self._bounds_vec = tuple(
                (inet.place_index[place], bound)
                for place, bound in self.bounds.items()
                if place in inet.place_index
            )
            self._bounds_vec_for = inet
        return self._bounds_vec

    def violation_rows(self, inet, matrix):
        """Batched form: rows of a marking matrix exceeding a channel bound."""
        from repro.petrinet.batched import bound_violation_mask

        return bound_violation_mask(matrix, self._bounded_pids(inet))

    def frontier_mask(self, inet, ancestors, children, child_depth: int):
        return self.violation_rows(inet, children)

    def holds(self, tree: SchedulingTreeView, node: int) -> bool:
        if not self.bounds:
            return False
        vec_of = getattr(tree, "vec_of", None)
        inet = getattr(tree, "inet", None)
        if vec_of is not None and inet is not None:
            vec = vec_of(node)
            for pid, bound in self._bounded_pids(inet):
                if vec[pid] > bound:
                    return True
            return False
        marking = tree.marking_of(node)
        for place, bound in self.bounds.items():
            if marking[place] > bound:
                return True
        return False


@dataclass
class NodeBudget(TerminationCondition):
    """Safety net: prune once the tree has grown past ``max_nodes`` nodes.

    This keeps the search finite on nets that are not schedulable under the
    other conditions.  The budget is expressed on the node index, which grows
    monotonically with tree construction.
    """

    max_nodes: int = 200_000
    name: str = "node-budget"

    def holds(self, tree: SchedulingTreeView, node: int) -> bool:
        return node >= self.max_nodes


@dataclass
class MaxDepthCondition(TerminationCondition):
    """Prune strictly beyond a maximum tree depth (mostly for tests).

    Boundary contract (pinned by ``tests/test_termination_boundaries.py``):
    a node at ``depth == max_depth`` is **kept** -- it may still close a
    cycle or host an entering point -- and only nodes at ``depth >
    max_depth`` are pruned.  Both backends implement the same comparison:
    the scalar path evaluates ``holds`` on the node (its depth equals its
    proper-ancestor count), the batched path evaluates
    :meth:`frontier_mask` with ``child_depth`` (the depth every child of
    the expanded node would have, i.e. parent depth + 1), so the two
    terminate on the identical node set.
    """

    max_depth: int
    name: str = "max-depth"
    supports_frontier_mask = True

    def holds(self, tree: SchedulingTreeView, node: int) -> bool:
        depth_of = getattr(tree, "depth_of", None)
        if depth_of is not None:
            return depth_of(node) > self.max_depth
        depth = sum(1 for _ in tree.ancestors_of(node))
        return depth > self.max_depth

    def frontier_mask(self, inet, ancestors, children, child_depth: int):
        import numpy as np

        return np.full(children.shape[0], child_depth > self.max_depth, dtype=bool)


@dataclass
class CompositeCondition(TerminationCondition):
    """Disjunction of several conditions."""

    conditions: List[TerminationCondition] = field(default_factory=list)
    name: str = "composite"

    def holds(self, tree: SchedulingTreeView, node: int) -> bool:
        return any(condition.holds(tree, node) for condition in self.conditions)

    def describe(self) -> str:
        return " | ".join(condition.describe() for condition in self.conditions)


@dataclass
class FrontierSplit:
    """A termination condition decomposed for the batched EP backend.

    ``maskable`` are the marking/path-dependent leaves (evaluated for a whole
    frontier via :meth:`TerminationCondition.frontier_mask`); ``budgets`` the
    node-index thresholds of the :class:`NodeBudget` leaves, which the search
    checks per node at visit time (a child's index is only known then).
    Together they are the whole condition: ``holds(tree, node)`` equals
    ``any(mask) or any(node >= b for b in budgets)``.
    """

    maskable: List[TerminationCondition] = field(default_factory=list)
    budgets: List[int] = field(default_factory=list)

    def budget_holds(self, node_index: int) -> bool:
        for budget in self.budgets:
            if node_index >= budget:
                return True
        return False


def split_frontier_conditions(
    condition: TerminationCondition,
) -> Optional[FrontierSplit]:
    """Decompose a condition tree for frontier-at-a-time evaluation.

    Returns ``None`` when some leaf is neither frontier-maskable nor a
    :class:`NodeBudget` -- e.g. an arbitrary user-supplied condition, whose
    ``holds`` may inspect tree state the batched backend does not
    materialise.  The scheduler then falls back to the scalar backend.
    User conditions that *do* implement the
    :meth:`TerminationCondition.frontier_mask` extension point decompose
    like the built-ins and keep the batched/kernel backends.
    """
    split = FrontierSplit()

    def visit(cond: TerminationCondition) -> bool:
        if isinstance(cond, CompositeCondition):
            return all(visit(sub) for sub in cond.conditions)
        if isinstance(cond, NodeBudget):
            split.budgets.append(cond.max_nodes)
            return True
        if cond.supports_frontier_mask:
            split.maskable.append(cond)
            return True
        return False

    return split if visit(condition) else None


def default_termination(
    net: PetriNet,
    *,
    analysis: Optional[StructuralAnalysis] = None,
    max_nodes: int = 200_000,
    extra: Sequence[TerminationCondition] = (),
) -> CompositeCondition:
    """The default condition used by the scheduler.

    Irrelevance criterion + user channel bounds + a node budget, which is the
    configuration the paper advocates (Section 4.4) made robust against
    unschedulable inputs.
    """
    conditions: List[TerminationCondition] = []
    if analysis is not None:
        conditions.append(IrrelevanceCriterion.for_analysis(analysis))
    else:
        conditions.append(IrrelevanceCriterion.for_net(net))
    user_bounds = UserBoundCondition.for_net(net)
    if user_bounds.bounds:
        conditions.append(user_bounds)
    conditions.append(NodeBudget(max_nodes=max_nodes))
    conditions.extend(extra)
    return CompositeCondition(conditions=conditions)
