"""Canonical serialization of schedules.

One schedule has exactly one canonical dictionary form: nodes in index
order, markings as sorted ``[place, count]`` pairs, edges sorted by
transition name.  Byte-for-byte equality of :func:`schedule_to_json` (and
therefore of :func:`schedule_fingerprint`) is the equality notion used by

* the golden-schedule regression fixtures under ``tests/golden/``,
* the serial-vs-parallel equivalence tests of ``find_all_schedules``,
* the warm-start cache (:mod:`repro.scheduling.warmstart`), which replays
  a schedule for a structurally identical net from its serialized form.

Deserialization rebinds the schedule to a caller-supplied net, so a
schedule computed in a worker process (against that process's copy of the
net) merges back referencing the parent's net object.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet
from repro.scheduling.schedule import Schedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (ep imports nothing here)
    from repro.scheduling.ep import SchedulerResult


def marking_to_items(marking: Mapping[str, int]) -> List[List[object]]:
    """Sorted ``[place, count]`` pairs of the non-zero entries."""
    return [[place, int(count)] for place, count in sorted(marking.items()) if count]


def schedule_to_dict(schedule: Schedule) -> Dict[str, object]:
    """The canonical dictionary form of a schedule."""
    return {
        "source_transition": schedule.source_transition,
        "root": schedule.root,
        "nodes": [
            {
                "marking": marking_to_items(node.marking),
                "edges": {
                    transition: target
                    for transition, target in sorted(node.edges.items())
                },
            }
            for node in schedule.nodes
        ],
    }


def schedule_from_dict(net: PetriNet, data: Mapping[str, object]) -> Schedule:
    """Rebuild a schedule from its canonical form, bound to ``net``."""
    schedule = Schedule(net=net, source_transition=str(data["source_transition"]))
    nodes = data["nodes"]
    assert isinstance(nodes, list)
    for entry in nodes:
        schedule.add_node(Marking({place: count for place, count in entry["marking"]}))
    for index, entry in enumerate(nodes):
        for transition, target in entry["edges"].items():
            schedule.add_edge(index, transition, int(target))
    schedule.root = int(data["root"])
    return schedule


def schedule_to_json(schedule: Schedule) -> str:
    """Canonical JSON: sorted keys, no whitespace -- byte-stable."""
    return json.dumps(schedule_to_dict(schedule), sort_keys=True, separators=(",", ":"))


def schedule_dict_fingerprint(data: Mapping[str, object]) -> str:
    """SHA-256 of a schedule already in canonical dictionary form.

    Byte-identical to :func:`schedule_fingerprint` of the schedule the dict
    was derived from; used by consumers that hold the serialized record but
    no live :class:`Schedule` (cache replays, the serving daemon's wire
    responses).
    """
    body = json.dumps(data, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def schedule_fingerprint(schedule: Schedule) -> str:
    """SHA-256 of the canonical JSON form."""
    return schedule_dict_fingerprint(schedule_to_dict(schedule))


def verify_roundtrip(schedule: Schedule) -> str:
    """Assert serialize -> deserialize -> serialize is byte-stable.

    Returns the fingerprint on success and raises :class:`ValueError` when
    the round-tripped schedule diverges -- i.e. when the canonical form has
    stopped being canonical.  The corpus differential harness runs this on
    every schedule it synthesizes tasks from, so any drift between the
    serializer and the :class:`Schedule` structure is caught by the corpus
    before it can poison the cache or the serving daemon.
    """
    original = schedule_to_json(schedule)
    rebuilt = schedule_from_dict(schedule.net, json.loads(original))
    replayed = schedule_to_json(rebuilt)
    if replayed != original:
        raise ValueError(
            "schedule serialization is not round-trip stable for source "
            f"{schedule.source_transition!r}"
        )
    return schedule_fingerprint(schedule)


def result_to_record(result: "SchedulerResult") -> Dict[str, object]:
    """Net-free record of a scheduling outcome.

    The single encoder shared by the warm-start cache and the parallel
    workers; :func:`result_from_record` is its inverse.  Adding a field to
    :class:`SchedulerResult` that must survive a cache replay or a process
    boundary means extending exactly this pair.
    """
    return {
        "schedule": schedule_to_dict(result.schedule) if result.schedule else None,
        "tree_nodes": result.tree_nodes,
        "elapsed_seconds": result.elapsed_seconds,
        "failure_reason": result.failure_reason,
        "counters": result.counters.as_dict(),
        "objective": result.objective,
        "score": result.score,
    }


def result_from_record(
    net: PetriNet,
    source: str,
    record: Mapping[str, object],
    *,
    from_cache: bool = False,
) -> "SchedulerResult":
    """Rebuild a :class:`SchedulerResult` from a record, bound to ``net``."""
    from repro.scheduling.ep import SchedulerResult, SearchCounters

    schedule_data = record["schedule"]
    return SchedulerResult(
        source_transition=source,
        schedule=(
            schedule_from_dict(net, schedule_data)
            if schedule_data is not None
            else None
        ),
        tree_nodes=int(record["tree_nodes"]),
        elapsed_seconds=float(record["elapsed_seconds"]),
        failure_reason=record["failure_reason"],
        counters=SearchCounters(**record["counters"]),
        from_cache=from_cache,
        # records written before the cost objective existed carry neither key
        objective=str(record.get("objective", "first")),
        score=(int(record["score"]) if record.get("score") is not None else None),
    )


def schedule_summary(schedule: Optional[Schedule]) -> Dict[str, object]:
    """The shape facts the golden regression fixtures diff.

    Kept deliberately small and human-readable: node / edge / await counts
    plus the channel bounds the schedule implies (the quantities Section 8
    of the paper reports).
    """
    if schedule is None:
        return {"nodes": 0, "edges": 0, "await_nodes": 0, "channel_bounds": {}}
    return {
        "nodes": len(schedule),
        "edges": sum(node.out_degree for node in schedule.nodes),
        "await_nodes": len(schedule.await_nodes()),
        "channel_bounds": dict(sorted(schedule.channel_bounds().items())),
    }
