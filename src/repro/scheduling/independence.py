"""Schedule independence and static executability (Section 4.3).

Two single-source schedules are *mutually independent* iff for every place
involved in one schedule, the token count at that place is the same at every
await node of the other schedule (Definition 4.3).  An independent set of SS
schedules is executable (Proposition 4.2): any interleaving of environment
events can be served by traversing the schedules, and the schedules' node
markings give tight bounds on channel occupancy.

Proposition 4.3 states that for nets generated from FlowC every set of SS
schedules is independent; :func:`is_independent_set` lets tests confirm this
and guards against misuse of hand-built nets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.scheduling.schedule import Schedule


def involved_transitions(schedule: Schedule) -> Set[str]:
    """Transitions associated with at least one edge of ``schedule``."""
    return schedule.involved_transitions()


def involved_places(schedule: Schedule, *, include_postsets: bool = True) -> Set[str]:
    """Places whose token count the schedule can observe or modify.

    The paper defines an involved place as a predecessor of an involved
    transition; for the independence check we conservatively include the
    postsets as well (a place whose count a schedule modifies must also not be
    relied upon by another schedule).
    """
    return schedule.involved_places(include_postsets=include_postsets)


@dataclass
class IndependenceViolation:
    """Witness that two schedules interfere."""

    place: str
    schedule_a: str
    schedule_b: str
    counts_at_await_nodes: Tuple[int, ...]

    def __str__(self) -> str:
        return (
            f"place {self.place!r} involved in schedule for {self.schedule_a!r} has varying "
            f"counts {self.counts_at_await_nodes} at await nodes of the schedule for "
            f"{self.schedule_b!r}"
        )


def _await_counts(schedule: Schedule, place: str) -> Tuple[int, ...]:
    return tuple(node.marking[place] for node in schedule.await_nodes())


def ecs_place_footprint(net, transitions: Iterable[str]) -> Set[str]:
    """Places a set of transitions (typically one ECS) reads or writes.

    The structural analogue of :func:`involved_places` for search-time use:
    no schedule exists yet, only candidate ECSs.  Two ECSs with disjoint
    footprints fire into provably non-interfering parts of the marking, so
    the subtrees the EP search grows under them diverge immediately -- the
    preferred shape for speculative parallel exploration.
    """
    places: Set[str] = set()
    for transition in transitions:
        places.update(net.preset_of_transition(transition))
        places.update(net.postset_of_transition(transition))
    return places


def prefer_disjoint_forks(net, ecss: Sequence[Iterable[str]]) -> List[int]:
    """Order fork candidates so place-disjoint ECSs are forked first.

    Used by the intra-search work-stealing layer when it can only publish a
    subset of a node's candidate ECSs as subtree tasks: conflicting ECSs
    (overlapping place footprints) tend to re-explore overlapping markings,
    so the greedy pass admits the first candidate, then every candidate
    disjoint from all admitted ones, then the rest in original order.
    Returns indices into ``ecss``; the order only decides *which* subtrees
    are offered to workers -- results are consumed in canonical ECS order
    regardless, so this heuristic can never change a schedule.
    """
    footprints = [ecs_place_footprint(net, ecs) for ecs in ecss]
    admitted: List[int] = []
    covered: Set[str] = set()
    for index, footprint in enumerate(footprints):
        if not admitted or not (footprint & covered):
            admitted.append(index)
            covered |= footprint
    remaining = [index for index in range(len(ecss)) if index not in admitted]
    return admitted + remaining


def find_independence_violation(
    first: Schedule, second: Schedule
) -> Optional[IndependenceViolation]:
    """Return a violation of Definition 4.3 between two SS schedules, if any."""
    for place in involved_places(first):
        counts = _await_counts(second, place)
        if counts and len(set(counts)) > 1:
            return IndependenceViolation(
                place=place,
                schedule_a=first.source_transition,
                schedule_b=second.source_transition,
                counts_at_await_nodes=counts,
            )
    for place in involved_places(second):
        counts = _await_counts(first, place)
        if counts and len(set(counts)) > 1:
            return IndependenceViolation(
                place=place,
                schedule_a=second.source_transition,
                schedule_b=first.source_transition,
                counts_at_await_nodes=counts,
            )
    return None


def are_mutually_independent(first: Schedule, second: Schedule) -> bool:
    """Definition 4.3 for a pair of schedules."""
    return find_independence_violation(first, second) is None


def is_independent_set(schedules: Sequence[Schedule]) -> bool:
    """True when every pair of schedules in the set is mutually independent."""
    for i, first in enumerate(schedules):
        for second in schedules[i + 1 :]:
            if not are_mutually_independent(first, second):
                return False
    return True


def independence_report(schedules: Sequence[Schedule]) -> List[IndependenceViolation]:
    """All pairwise violations (empty list means the set is independent)."""
    violations: List[IndependenceViolation] = []
    for i, first in enumerate(schedules):
        for second in schedules[i + 1 :]:
            violation = find_independence_violation(first, second)
            if violation is not None:
                violations.append(violation)
    return violations


def combined_place_bounds(schedules: Sequence[Schedule]) -> Dict[str, int]:
    """Tight per-place bounds over an independent set of schedules.

    For each place, the bound is the maximum token count over the nodes of the
    schedules in which the place is involved (Proposition 4.2's observation);
    places involved in no schedule keep their initial count.
    """
    if not schedules:
        return {}
    net = schedules[0].net
    bounds: Dict[str, int] = {
        place: net.initial_tokens.get(place, 0) for place in net.places
    }
    for schedule in schedules:
        relevant = involved_places(schedule)
        for node in schedule.nodes:
            for place, count in node.marking.items():
                if place in relevant and count > bounds[place]:
                    bounds[place] = count
    return bounds


def channel_size_report(schedules: Sequence[Schedule]) -> Dict[str, int]:
    """Bounds restricted to channel/port places (the buffer sizes to allocate)."""
    if not schedules:
        return {}
    net = schedules[0].net
    bounds = combined_place_bounds(schedules)
    return {
        place: bound for place, bound in bounds.items() if net.places[place].is_port
    }
