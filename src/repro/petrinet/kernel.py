"""Fused EP expansion kernel: expand + terminate + admit in one call.

The batched EP backend (PR 3) already replaced the per-transition scalar
walk with whole-frontier NumPy calls, but each node expansion still pays a
*sequence* of dispatches -- ``expand_children`` for the child matrix, one
``frontier_mask`` per termination condition (the irrelevance mask being an
O(depth) broadcast), then the tuple conversion feeding
``MarkingStore.intern_many``.  This module fuses that sequence into one
kernel call over contiguous int64 buffers, with two tiers:

* **compiled** -- a ``numba.njit(cache=True)`` loop nest computing child
  rows, bound/depth verdicts and the over-degree pre-filter in a single
  pass.  Preferred whenever numba imports and compiles.
* **numpy** -- the always-available reference: the same outputs from a
  handful of vectorized NumPy expressions.  Both tiers are bit-identical by
  construction (and pinned so by ``tests/test_kernel.py``).

Tier selection mirrors the shared-memory plane's fallback contract
(:mod:`repro.petrinet.shm`): ``REPRO_KERNEL=0`` or a numba import/compile
failure degrades to the NumPy tier with a :class:`RuntimeWarning` (once per
process), never an error, and never a behaviour change.

The module also hosts the **incremental irrelevance** check that retires
the last O(depth) cost per node.  Definition 4.5 says a child marking ``C``
is irrelevant w.r.t. a path ancestor ``A`` iff ``A != C``, ``A <= C``
component-wise, and every place where ``C`` grew was already saturated in
``A`` (``A[p] >= degree[p]``).  Per place that pins ``A[p]`` to::

    A[p] == C[p]                      when C[p] <= degree[p]
    A[p] in [degree[p], C[p]]         when C[p] >  degree[p]

so the *only* markings that could witness irrelevance are the (usually
zero or a handful of) combinations over the over-degree places.  Instead
of comparing ``C`` against every ancestor row, we enumerate those candidate
markings and hash-probe them against the path's marking index, which
:class:`~repro.scheduling.ep.SchedulingTree` already maintains on
push/pop.  A child with no over-degree place can never be irrelevant --
one vectorized compare decides it.  Verdicts are bitwise identical to
:func:`repro.petrinet.batched.irrelevance_frontier_mask`; when the
combination count exceeds :data:`IRRELEVANCE_ENUM_CAP` the caller falls
back to that exact broadcast.
"""

from __future__ import annotations

import os
import warnings
from itertools import product
from typing import Dict, List, Optional, Sequence, Tuple

try:  # the fused tiers need NumPy; the incremental checker never does
    import numpy as np
except ImportError:  # pragma: no cover - numpy is a baked-in test dependency
    np = None

#: Environment knob of the compiled tier.  ``0`` / ``false`` / ``off`` /
#: ``no`` (any case) disables it; everything else (including unset) leaves
#: it on.  Mirrors ``REPRO_SHM`` / ``REPRO_CACHE``.
KERNEL_ENV = "REPRO_KERNEL"

#: The two kernel tiers, fastest first.  ``resolve_kernel_tier`` returns one
#: of these; ``SchedulerOptions.kernel_tier`` may pin one explicitly.
KERNEL_TIERS = ("compiled", "numpy")

#: Maximum number of candidate ancestor markings the incremental
#: irrelevance check enumerates per child before falling back to the full
#: ancestor-matrix broadcast.  The cap bounds per-child work by a constant;
#: in practice (saturated channels a token or two over degree) counts are
#: single-digit.
IRRELEVANCE_ENUM_CAP = 64


def kernel_enabled() -> bool:
    """True unless ``REPRO_KERNEL`` disables the compiled tier."""
    return os.environ.get(KERNEL_ENV, "1").strip().lower() not in {
        "0",
        "false",
        "off",
        "no",
    }


# -- compiled-tier loading ---------------------------------------------------

_UNSET = object()
_compiled_ops = _UNSET  # callable | None once probed
_compiled_error: Optional[str] = None
_warned_fallback = False


def _load_compiled():
    """Probe numba and compile the fused loop; ``None`` when unavailable.

    The result (including failure) is cached for the process, so the import
    and compile cost is paid at most once.
    """
    global _compiled_ops, _compiled_error
    if _compiled_ops is not _UNSET:
        return _compiled_ops
    try:
        import numba

        @numba.njit(cache=True)
        def _fused(base, delta, tids, bound_pids, bound_vals, degrees,
                   depth_pruned, check_degrees):  # pragma: no cover - needs numba
            k = tids.shape[0]
            n_places = base.shape[0]
            rows = np.empty((k, n_places), dtype=np.int64)
            pruned = np.zeros(k, dtype=np.bool_)
            over = np.zeros(k, dtype=np.bool_)
            for i in range(k):
                tid = tids[i]
                for p in range(n_places):
                    value = base[p] + delta[tid, p]
                    rows[i, p] = value
                    if check_degrees and value > degrees[p]:
                        over[i] = True
                if depth_pruned:
                    pruned[i] = True
                else:
                    for j in range(bound_pids.shape[0]):
                        if rows[i, bound_pids[j]] > bound_vals[j]:
                            pruned[i] = True
                            break
            return rows, pruned, over

        # force compilation now so a broken toolchain degrades at resolve
        # time (with the warning) instead of mid-search
        probe_base = np.zeros(1, dtype=np.int64)
        probe_delta = np.zeros((1, 1), dtype=np.int64)
        probe_ids = np.zeros(1, dtype=np.int64)
        probe_bounds = np.zeros(0, dtype=np.int64)
        _fused(probe_base, probe_delta, probe_ids, probe_bounds, probe_bounds,
               probe_base, False, False)
        _compiled_ops = _fused
    except Exception as exc:  # import error, compile error, bad install
        _compiled_ops = None
        _compiled_error = f"{type(exc).__name__}: {exc}"
    return _compiled_ops


def compiled_tier_available() -> bool:
    """True when numba imports and the fused loop compiles."""
    return _load_compiled() is not None


def reset_kernel_warning() -> None:
    """Re-arm the once-per-process fallback warning (test hook)."""
    global _warned_fallback
    _warned_fallback = False


def _warn_fallback(reason: str) -> None:
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    warnings.warn(
        f"compiled kernel tier unavailable ({reason}); "
        "EP searches run on the NumPy reference tier (same results, slower)",
        RuntimeWarning,
        stacklevel=3,
    )


def resolve_kernel_tier(requested: Optional[str] = None, *, warn: bool = True) -> str:
    """Resolve a kernel-tier request to ``"compiled"`` or ``"numpy"``.

    ``None`` (auto) prefers the compiled tier; ``REPRO_KERNEL=0`` or a numba
    import/compile failure degrades to ``"numpy"`` with a once-per-process
    :class:`RuntimeWarning` (suppress via ``warn=False`` for key-derivation
    callers).  An explicit ``"numpy"`` request is honoured silently -- it is
    a deliberate choice, e.g. the tier a parallel fan-out pinned into the
    shipped options after warning on the coordinator.
    """
    if requested is not None and requested not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel tier {requested!r}; pick one of {KERNEL_TIERS}"
        )
    if requested == "numpy":
        return "numpy"
    if not kernel_enabled():
        if warn:
            _warn_fallback(f"{KERNEL_ENV} disables it")
        return "numpy"
    if not compiled_tier_available():
        if warn:
            _warn_fallback(_compiled_error or "numba is not importable")
        return "numpy"
    return "compiled"


# -- incremental irrelevance -------------------------------------------------


class IncrementalIrrelevance:
    """Depth-independent Definition 4.5 verdicts via the path marking index.

    One instance accumulates op-count statistics across a search; the
    depth-regression tests assert bounds on these counters instead of wall
    clock.  ``check`` returns ``True`` / ``False``, or ``None`` when the
    candidate-combination count exceeds the enumeration cap and the caller
    must fall back to the exact ancestor-matrix broadcast.
    """

    __slots__ = (
        "degrees",
        "cap",
        "children_checked",
        "decided_by_degree_filter",
        "candidates_probed",
        "capped_children",
    )

    def __init__(self, degrees: Sequence[int], cap: int = IRRELEVANCE_ENUM_CAP):
        self.degrees = tuple(degrees)
        self.cap = cap
        self.children_checked = 0
        self.decided_by_degree_filter = 0
        self.candidates_probed = 0
        self.capped_children = 0

    def stats(self) -> Dict[str, int]:
        """Op counters accumulated so far (plain dict, test-friendly)."""
        return {
            "children_checked": self.children_checked,
            "decided_by_degree_filter": self.decided_by_degree_filter,
            "candidates_probed": self.candidates_probed,
            "capped_children": self.capped_children,
        }

    def check(
        self,
        vec: Sequence[int],
        path_index: Dict[Tuple[int, ...], int],
        total_counts: Dict[int, int],
        total: int,
    ) -> Optional[bool]:
        """Is ``vec`` irrelevant w.r.t. some marking in ``path_index``?

        ``path_index`` maps each marking on the current DFS path to a node,
        ``total_counts`` is the multiset of their total token counts (both
        maintained by ``SchedulingTree`` push/pop), ``total`` the token
        total of ``vec``.  Equal-marking path entries are never witnesses
        (Definition 4.5 requires ``A != C``; the search closes a cycle there
        instead), which the enumeration guarantees structurally: every
        candidate except the identity has a strictly smaller total.
        """
        self.children_checked += 1
        degrees = self.degrees
        over = [p for p, count in enumerate(vec) if count > degrees[p]]
        if not over:
            # no place exceeds its degree: condition (c) can never hold
            self.decided_by_degree_filter += 1
            return False
        combos = 1
        for p in over:
            combos *= vec[p] - degrees[p] + 1
            if combos > self.cap:
                self.capped_children += 1
                return None
        candidate = list(vec)
        spans = [range(degrees[p], vec[p] + 1) for p in over]
        for values in product(*spans):
            candidate_total = total
            for p, value in zip(over, values):
                candidate_total -= vec[p] - value
            if candidate_total == total:
                continue  # the identity assignment: A == C is not a witness
            if candidate_total not in total_counts:
                continue  # no path marking carries this token total
            for p, value in zip(over, values):
                candidate[p] = value
            self.candidates_probed += 1
            if tuple(candidate) in path_index:
                return True
        return False


# -- the fused expansion kernel ----------------------------------------------


def _numpy_fused(base, delta, tids, bound_pids, bound_vals, degrees,
                 depth_pruned, check_degrees):
    """NumPy reference tier: same outputs as the compiled loop."""
    rows = base + delta[tids]
    if depth_pruned:
        pruned = np.ones(rows.shape[0], dtype=bool)
    elif bound_pids.size:
        pruned = (rows[:, bound_pids] > bound_vals).any(axis=1)
    else:
        pruned = np.zeros(rows.shape[0], dtype=bool)
    if check_degrees:
        over = (rows > degrees).any(axis=1)
    else:
        over = np.zeros(rows.shape[0], dtype=bool)
    return rows, pruned, over


class ExpansionKernel:
    """One search's fused expand + terminate pipeline over int64 buffers.

    Built per :class:`~repro.scheduling.ep._EPSearch` from the search's
    :class:`~repro.scheduling.termination.FrontierSplit`.  The four built-in
    maskable conditions are folded into kernel inputs -- irrelevance into
    the incremental path check, place/channel bounds into one ``(pid,
    bound)`` array, max-depth into a single threshold; any *other* maskable
    condition (user-defined subclasses included) is still evaluated through
    the public ``frontier_mask`` protocol against the dense path matrix, so
    custom conditions keep the fused backend.  Admission stays with the
    caller (``add_child`` / ``intern_many``) so the interned-marking set is
    identical to the scalar backend's.
    """

    def __init__(self, inet, split, *, tier: Optional[str] = None):
        from repro.petrinet.batched import delta_matrix
        from repro.scheduling.termination import (
            IrrelevanceCriterion,
            MaxDepthCondition,
            PlaceBoundCondition,
            UserBoundCondition,
        )

        self.inet = inet
        # re-resolving an explicit "compiled" pin re-checks availability, so a
        # worker whose environment lost numba degrades (with the warning)
        # instead of crashing
        self.tier = resolve_kernel_tier(tier)
        ops = _load_compiled() if self.tier == "compiled" else None
        if ops is None:
            self.tier = "numpy"
            ops = _numpy_fused
        self._ops = ops
        self._delta = delta_matrix(inet)
        self._token_delta = inet.token_delta

        self.criterion = None
        self.incremental: Optional[IncrementalIrrelevance] = None
        self._degrees_np = None
        bounds: List[Tuple[int, int]] = []
        depth_cut: Optional[int] = None
        self.extra = []  # conditions evaluated via the frontier_mask protocol
        for condition in split.maskable:
            kind = type(condition)
            if kind is IrrelevanceCriterion:
                self.criterion = condition
                self.incremental = condition.incremental_for(inet)
                self._degrees_np = np.asarray(
                    condition.degrees_vec(inet), dtype=np.int64
                )
            elif kind is PlaceBoundCondition or kind is UserBoundCondition:
                bounds.extend(condition._bounded_pids(inet))
            elif kind is MaxDepthCondition:
                cut = condition.max_depth
                depth_cut = cut if depth_cut is None else min(depth_cut, cut)
            else:
                self.extra.append(condition)
        self._bound_pids = np.asarray([p for p, _ in bounds], dtype=np.int64)
        self._bound_vals = np.asarray([b for _, b in bounds], dtype=np.int64)
        self._depth_cut = depth_cut
        if self._degrees_np is None:
            # unused by the ops when check_degrees is False; any int64 row works
            self._degrees_np = np.zeros(len(inet.place_names), dtype=np.int64)
        # stats of the full-broadcast fallback (cap-exceeded children)
        self.fallback_children = 0
        self.fallback_ancestor_rows = 0

    def expand(self, tree, vec, tids: Sequence[int], child_depth: int):
        """Children of one node plus their termination verdicts.

        Returns ``(vecs, pruned)`` exactly like the un-fused batched path:
        one marking tuple and one boolean per candidate transition, with
        ``pruned[i]`` equal to the disjunction of every maskable condition
        on a child carrying ``vecs[i]`` at ``child_depth``.
        """
        from repro.petrinet.batched import (
            FRONTIER_TOKEN_GUARD,
            FrontierOverflowError,
            irrelevance_frontier_mask,
        )

        base = np.asarray(vec, dtype=np.int64)
        if base.size and int(np.abs(base).max()) >= FRONTIER_TOKEN_GUARD:
            raise FrontierOverflowError(
                "marking holds token counts >= 2**62; use the scalar backend"
            )
        tids_arr = np.asarray(tids, dtype=np.int64)
        depth_pruned = self._depth_cut is not None and child_depth > self._depth_cut
        rows, pruned, over = self._ops(
            base,
            self._delta,
            tids_arr,
            self._bound_pids,
            self._bound_vals,
            self._degrees_np,
            depth_pruned,
            self.incremental is not None,
        )
        vecs = list(map(tuple, rows.tolist()))
        if self.incremental is not None and over.any():
            path_index = tree._markings_on_path
            total_counts = tree._path_total_counts
            base_total = int(base.sum())
            token_delta = self._token_delta
            checker = self.incremental
            for i in np.nonzero(over)[0]:
                if pruned[i]:
                    continue  # already terminated; the verdict is a disjunction
                verdict = checker.check(
                    vecs[i],
                    path_index,
                    total_counts,
                    base_total + token_delta[tids[i]],
                )
                if verdict is None:
                    # cap exceeded: exact broadcast against the ancestor matrix
                    ancestors = tree.path_matrix()
                    self.fallback_children += 1
                    self.fallback_ancestor_rows += ancestors.shape[0]
                    verdict = bool(
                        irrelevance_frontier_mask(
                            rows[i : i + 1], ancestors, self._degrees_np
                        )[0]
                    )
                if verdict:
                    pruned[i] = True
        for condition in self.extra:
            pruned |= condition.frontier_mask(
                self.inet, tree.path_matrix(), rows, child_depth
            )
        return vecs, pruned.tolist()
