"""Structural analysis of Petri nets.

This module implements the structural notions of Section 2 and 4.4 of the
paper:

* **Equal conflict sets (ECS)** -- the equivalence classes of non-source
  transitions under "equal conflict" (identical presets, weights included).
  Each source transition forms its own singleton ECS.
* **Choice place classification** -- a choice place is *equal* if all its
  successors belong to one ECS; it is *unique* if at most one successor can be
  enabled at any reachable marking.  A net whose choice places are all equal
  or unique is a *unique-choice Petri net* (UCPN).
* **Place degree** -- the saturation threshold used by the irrelevance
  criterion (Definition 4.4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.petrinet.indexed import IndexedNet
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet


ECS = FrozenSet[str]


class ChoiceKind(enum.Enum):
    """Classification of a choice place."""

    NOT_A_CHOICE = "not-a-choice"
    EQUAL = "equal"
    UNIQUE = "unique"
    GENERAL = "general"


def compute_ecs_partition(net: PetriNet) -> List[ECS]:
    """Partition the transitions of ``net`` into equal conflict sets.

    Two non-source transitions are in equal conflict iff ``F(p, t1) == F(p, t2)``
    for every place ``p``.  Source transitions (empty preset) each form their
    own singleton ECS, per the special case in Section 2.
    """
    by_preset: Dict[Tuple[Tuple[str, int], ...], List[str]] = {}
    singletons: List[ECS] = []
    for name in net.transitions:
        preset = net.pre[name]
        if not preset:
            singletons.append(frozenset({name}))
            continue
        key = tuple(sorted(preset.items()))
        by_preset.setdefault(key, []).append(name)
    partition = [frozenset(group) for group in by_preset.values()]
    partition.extend(singletons)
    partition.sort(key=lambda ecs: sorted(ecs))
    return partition


def ecs_of_transition(net: PetriNet, transition: str, partition: Optional[Sequence[ECS]] = None) -> ECS:
    """The ECS containing ``transition``."""
    if partition is None:
        partition = compute_ecs_partition(net)
    for ecs in partition:
        if transition in ecs:
            return ecs
    raise KeyError(f"transition {transition!r} not in any ECS")


def enabled_ecss(net: PetriNet, marking: Marking, partition: Optional[Sequence[ECS]] = None) -> List[ECS]:
    """All ECSs enabled at ``marking``.

    An ECS is enabled iff any (equivalently every, for non-source sets) of its
    transitions is enabled.
    """
    if partition is None:
        partition = compute_ecs_partition(net)
    result = []
    for ecs in partition:
        representative = next(iter(ecs))
        if net.is_enabled(representative, marking):
            result.append(ecs)
    return result


def place_degree(net: PetriNet, place: str) -> int:
    """Degree of a place (Definition 4.4).

    ``max(max_in_weight + max_out_weight - 1, M0(p))`` where the weights are
    taken over input and output arcs of the place.  Places with no successors
    or no predecessors use 0 for the missing maximum.
    """
    in_weights = list(net.preset_of_place(place).values())
    out_weights = list(net.postset_of_place(place).values())
    max_in = max(in_weights) if in_weights else 0
    max_out = max(out_weights) if out_weights else 0
    structural = max_in + max_out - 1 if (in_weights or out_weights) else 0
    return max(structural, net.initial_tokens.get(place, 0))


def all_place_degrees(net: PetriNet) -> Dict[str, int]:
    """Degree of every place of the net."""
    return {place: place_degree(net, place) for place in net.places}


def classify_choice_place(
    net: PetriNet,
    place: str,
    partition: Optional[Sequence[ECS]] = None,
    reachable_markings: Optional[Iterable[Marking]] = None,
) -> ChoiceKind:
    """Classify a place as non-choice / equal / unique / general.

    The *unique* check is semantic ("no more than one successor transition can
    be enabled in any reachable marking").  When ``reachable_markings`` is not
    supplied we fall back to a structural sufficient condition: the successors
    of the place belong to distinct ECSs whose presets, restricted to non-port
    control-flow places of the same process, are disjoint singleton program
    counters -- which is the situation produced by the FlowC compiler when the
    same process reads one port at several program points.
    """
    successors = net.successors_of_place(place)
    if len(successors) <= 1:
        return ChoiceKind.NOT_A_CHOICE
    if partition is None:
        partition = compute_ecs_partition(net)
    ecss = {frozenset(ecs_of_transition(net, t, partition)) for t in successors}
    if len(ecss) == 1:
        return ChoiceKind.EQUAL
    if reachable_markings is not None:
        for marking in reachable_markings:
            enabled = [t for t in successors if net.is_enabled(t, marking)]
            if len(enabled) > 1:
                return ChoiceKind.GENERAL
        return ChoiceKind.UNIQUE
    # Structural sufficient condition for uniqueness: every successor also
    # consumes from some non-port place, and those controlling places are
    # pairwise different places of one sequential process (so at most one can
    # be marked at a time).
    controlling: List[str] = []
    processes = set()
    for transition in successors:
        others = [
            p
            for p in net.pre[transition]
            if p != place and not net.places[p].is_port
        ]
        if not others:
            return ChoiceKind.GENERAL
        controlling.extend(others)
        proc = net.transitions[transition].process
        processes.add(proc)
    if len(set(controlling)) == len(controlling) and len(processes) == 1 and None not in processes:
        return ChoiceKind.UNIQUE
    return ChoiceKind.GENERAL


def is_unique_choice_net(
    net: PetriNet,
    reachable_markings: Optional[Iterable[Marking]] = None,
) -> bool:
    """True if every choice place of the net is equal or unique (UCPN)."""
    markings = list(reachable_markings) if reachable_markings is not None else None
    partition = compute_ecs_partition(net)
    for place in net.choice_places():
        kind = classify_choice_place(net, place, partition, markings)
        if kind is ChoiceKind.GENERAL:
            return False
    return True


@dataclass
class StructuralAnalysis:
    """Bundle of the structural facts the scheduler consumes repeatedly.

    Building this once per net avoids recomputing the ECS partition and place
    degrees at every node of the scheduling tree.
    """

    net: PetriNet
    partition: List[ECS] = field(default_factory=list)
    ecs_by_transition: Dict[str, ECS] = field(default_factory=dict)
    degrees: Dict[str, int] = field(default_factory=dict)
    uncontrollable: FrozenSet[str] = frozenset()
    controllable: FrozenSet[str] = frozenset()
    # -- indexed-core view: ECS IDs are indices into ``partition`` ----------
    indexed_net: Optional[IndexedNet] = None
    ecs_id_by_tid: Tuple[int, ...] = ()
    source_ecs_ids: FrozenSet[int] = frozenset()

    @classmethod
    def of(
        cls, net: PetriNet, *, degrees: Optional[Dict[str, int]] = None
    ) -> "StructuralAnalysis":
        """Compute the bundle for ``net``.

        ``degrees`` optionally supplies precomputed place degrees (e.g. the
        shared-memory analysis plane's published degree row) instead of
        re-deriving them per place; values must match
        :func:`all_place_degrees` for the same net.
        """
        partition = compute_ecs_partition(net)
        by_transition: Dict[str, ECS] = {}
        for ecs in partition:
            for transition in ecs:
                by_transition[transition] = ecs
        indexed = net.indexed()
        ecs_id_by_tid = [0] * len(indexed.transition_names)
        source_ecs_ids = set()
        for ecs_id, ecs in enumerate(partition):
            for transition in ecs:
                ecs_id_by_tid[indexed.transition_index[transition]] = ecs_id
            if any(not net.pre[t] for t in ecs):
                source_ecs_ids.add(ecs_id)
        return cls(
            net=net,
            partition=partition,
            ecs_by_transition=by_transition,
            degrees=dict(degrees) if degrees is not None else all_place_degrees(net),
            uncontrollable=frozenset(net.uncontrollable_sources()),
            controllable=frozenset(net.controllable_sources()),
            indexed_net=indexed,
            ecs_id_by_tid=tuple(ecs_id_by_tid),
            source_ecs_ids=frozenset(source_ecs_ids),
        )

    def ecs_of(self, transition: str) -> ECS:
        return self.ecs_by_transition[transition]

    def enabled_ecs_ids(self, enabled_tids: Iterable[int]) -> List[int]:
        """ECS IDs containing an enabled transition (ascending = partition order)."""
        by_tid = self.ecs_id_by_tid
        return sorted({by_tid[tid] for tid in enabled_tids})

    def enabled_ecss(self, marking: Marking) -> List[ECS]:
        """ECSs enabled at ``marking`` (deterministic order)."""
        indexed = self.indexed_net
        # net.indexed() rebuilds on structural version changes, so comparing
        # against it (not the raw _indexed field, which mutators leave in
        # place) is what actually detects a stale snapshot.
        if indexed is not None and indexed is self.net.indexed():
            vec = indexed.vec_of_marking(marking)
            return [
                self.partition[ecs_id]
                for ecs_id in self.enabled_ecs_ids(indexed.enabled_vec(vec))
            ]
        result = []
        for ecs in self.partition:
            representative = min(ecs)
            if self.net.is_enabled(representative, marking):
                result.append(ecs)
        return result

    def is_uncontrollable_ecs(self, ecs: ECS) -> bool:
        return any(t in self.uncontrollable for t in ecs)

    def is_source_ecs(self, ecs: ECS) -> bool:
        return any(not self.net.pre[t] for t in ecs)

    def degree(self, place: str) -> int:
        return self.degrees[place]

    def ecs_label(self, ecs: ECS) -> str:
        """Stable label for an ECS (used by code generation)."""
        return "_".join(sorted(ecs))
