"""Petri net kernel used as the formal substrate of the scheduling flow.

The paper models the linked network of FlowC processes as a single Petri net
(Section 2).  This package provides:

* :mod:`repro.petrinet.net` -- places, transitions, weighted arcs, nets.
* :mod:`repro.petrinet.marking` -- immutable markings with firing rules.
* :mod:`repro.petrinet.analysis` -- equal conflict sets, choice-place
  classification, place degrees, unique-choice checks.
* :mod:`repro.petrinet.reachability` -- reachability graph / tree exploration.
* :mod:`repro.petrinet.invariants` -- incidence matrix and non-negative
  T-invariant basis (Farkas algorithm).
* :mod:`repro.petrinet.covering` -- heuristic binate covering solver used by
  the candidate-invariant selection of Section 5.5.2.
* :mod:`repro.petrinet.indexed` -- the integer-dense core the hot paths run
  on: dense place/transition IDs, tuple markings, precomputed firing deltas
  and incremental enabled-set maintenance (see ``docs/architecture.md``).
* :mod:`repro.petrinet.batched` -- NumPy marking-matrix backend (one row per
  marking) for sweeps: batched enabledness, covering, bound and irrelevance
  queries, frontier-at-a-time reachability.
* :mod:`repro.petrinet.fingerprint` -- stable structural hashes keying the
  warm-start caches across net objects.
* :mod:`repro.petrinet.shm` -- the shared-memory analysis plane: publish a
  net's immutable dense analysis once, attach read-only views from every
  scheduling worker (pickle fallback, refcounted lifecycle).
"""

from repro.petrinet.indexed import IndexedNet, MarkingStore
from repro.petrinet.marking import Marking
from repro.petrinet.net import (
    ArcError,
    PetriNet,
    Place,
    PetriNetError,
    SourceKind,
    Transition,
)
from repro.petrinet.analysis import (
    ChoiceKind,
    StructuralAnalysis,
    compute_ecs_partition,
    place_degree,
)
from repro.petrinet.fingerprint import incidence_fingerprint, structural_fingerprint
from repro.petrinet.reachability import (
    ReachabilityGraph,
    ReachabilityNode,
    build_reachability_graph,
    reachable_marking_matrix,
)
from repro.petrinet.invariants import (
    incidence_matrix,
    t_invariant_basis,
    is_t_invariant,
)
from repro.petrinet.covering import BinateCoveringProblem, solve_binate_covering
from repro.petrinet.shm import (
    AttachedNet,
    SharedNetHandle,
    SharedNetPlane,
    acquire_shared_plane,
    attach_net,
    publish_net,
    shm_enabled,
)

__all__ = [
    "ArcError",
    "AttachedNet",
    "BinateCoveringProblem",
    "ChoiceKind",
    "IndexedNet",
    "Marking",
    "MarkingStore",
    "PetriNet",
    "PetriNetError",
    "Place",
    "ReachabilityGraph",
    "ReachabilityNode",
    "SharedNetHandle",
    "SharedNetPlane",
    "SourceKind",
    "StructuralAnalysis",
    "Transition",
    "acquire_shared_plane",
    "attach_net",
    "publish_net",
    "shm_enabled",
    "build_reachability_graph",
    "compute_ecs_partition",
    "incidence_fingerprint",
    "incidence_matrix",
    "is_t_invariant",
    "place_degree",
    "reachable_marking_matrix",
    "solve_binate_covering",
    "structural_fingerprint",
    "t_invariant_basis",
]
