"""Incidence matrix and T-invariant computation.

Section 5.5.2 of the paper uses a non-negative basis of T-invariants (vectors
``x >= 0`` with ``C x = 0`` where ``C`` is the incidence matrix) to guide the
selection of ECSs during scheduling, and uses the *absence* of such a basis as
a sufficient condition for non-schedulability.

We compute minimal-support non-negative integer invariants with the classical
Farkas / Fourier-Motzkin elimination algorithm: start from ``[C^T | I]`` and
eliminate the columns of ``C^T`` one at a time by taking positive combinations
of rows with opposite signs, dropping rows whose support is a superset of
another row's support.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

import repro.cache as artifact_cache
from repro.petrinet.fingerprint import incidence_fingerprint
from repro.petrinet.net import PetriNet
from repro.util import BoundedLRU

# Warm-start store for computed bases, keyed on the *incidence fingerprint*
# (the basis depends on nothing else).  The per-snapshot analysis_cache dies
# whenever a config sweep rebuilds a structurally identical net object; this
# store survives and replays the basis instead of re-running the Farkas
# elimination.  Bounded LRU so long property-test runs cannot grow it.
# When the disk cache is active (repro.cache.activate / REPRO_CACHE=1) the
# same key additionally hits the persistent store, so the elimination is
# skipped across *processes*; loaded bases are re-verified against C x = 0
# before being trusted.
_BASIS_WARM_STORE: "BoundedLRU[Tuple[str, int], List[Dict[str, int]]]" = BoundedLRU(32)


def incidence_matrix(net: PetriNet) -> Tuple[np.ndarray, List[str], List[str]]:
    """Return ``(C, places, transitions)`` with ``C[i, j] = F(t_j, p_i) - F(p_i, t_j)``.

    Rows are indexed by places and columns by transitions, both in sorted name
    order so the matrix is reproducible.
    """
    indexed = net.indexed()
    places = list(indexed.place_names)
    transitions = list(indexed.transition_names)
    matrix = np.zeros((len(places), len(transitions)), dtype=np.int64)
    for tid, deltas in enumerate(indexed.delta):
        for pid, delta in deltas:
            matrix[pid, tid] = delta
    return matrix, places, transitions


def _normalise_row(row: np.ndarray) -> np.ndarray:
    """Divide a non-negative integer row by the gcd of its entries."""
    nonzero = [int(v) for v in row if v != 0]
    if not nonzero:
        return row
    divisor = 0
    for value in nonzero:
        divisor = gcd(divisor, abs(value))
    if divisor > 1:
        return row // divisor
    return row


def _drop_non_minimal(rows: List[np.ndarray], width: int) -> List[np.ndarray]:
    """Remove rows whose invariant-part support strictly contains another's.

    This is the hot loop of the Farkas elimination, so the all-pairs subset
    test runs as one dense boolean matrix product: ``support_j  support_i``
    iff support_j hits no column outside support_i.
    """
    n = len(rows)
    if n <= 1:
        return list(rows)
    supports = np.array([row[-width:] != 0 for row in rows])
    # contained[j, i] True iff support_j is a subset of support_i; float32
    # matmul routes through BLAS and is exact for these small counts
    contained = (supports.astype(np.float32) @ (~supports).astype(np.float32).T) == 0
    equal = contained & contained.T
    strict = contained & ~contained.T
    # drop row i when a strict subset exists, or an equal support came earlier
    # (triu(k=1)[j, i] is True exactly for j < i)
    earlier = np.triu(np.ones((n, n), dtype=bool), 1)
    dominated = (strict | (equal & earlier)).any(axis=0)
    return [row for row, drop in zip(rows, dominated) if not drop]


def t_invariant_basis(net: PetriNet, *, max_rows: int = 4096) -> List[Dict[str, int]]:
    """Minimal-support non-negative T-invariants of ``net``.

    Returns a list of sparse vectors (transition name -> positive count).  The
    empty list means the net admits no non-trivial T-invariant, which by the
    argument of Section 5.5.2 implies no cyclic schedule exists.

    ``max_rows`` caps the intermediate tableau to keep the elimination from
    exploding on pathological nets; when the cap is hit the result is still a
    set of valid invariants but may not contain every minimal one.

    The basis is cached at two levels: on the net's indexed snapshot (so
    repeated calls for the same structural version -- one per scheduled
    source transition -- pay the elimination only once), and in a
    process-wide warm-start store keyed on the incidence fingerprint, so a
    structurally identical net *rebuilt* by a config sweep replays the basis
    instead of re-eliminating.
    """
    cache_key = ("t_invariant_basis", max_rows)
    cache = net.indexed().analysis_cache
    cached = cache.get(cache_key)
    if cached is not None:
        return [dict(invariant) for invariant in cached]
    incidence_fp = incidence_fingerprint(net)
    warm_key = (incidence_fp, max_rows)
    warmed = _BASIS_WARM_STORE.get(warm_key)
    if warmed is not None:
        cache[cache_key] = [dict(invariant) for invariant in warmed]
        return [dict(invariant) for invariant in warmed]
    disk = artifact_cache.active_store()
    if disk is not None:
        loaded = artifact_cache.load_invariant_basis(
            disk, net, incidence_fp=incidence_fp, max_rows=max_rows
        )
        if loaded is not None:
            _BASIS_WARM_STORE.put(warm_key, [dict(inv) for inv in loaded])
            cache[cache_key] = [dict(inv) for inv in loaded]
            return loaded
    matrix, _places, transitions = incidence_matrix(net)
    n_places, n_transitions = matrix.shape
    if n_transitions == 0:
        return []
    # tableau rows: [C^T row | identity row]
    tableau = np.hstack([matrix.T, np.eye(n_transitions, dtype=np.int64)])
    rows: List[np.ndarray] = [tableau[i].copy() for i in range(n_transitions)]

    for column in range(n_places):
        positive = [row for row in rows if row[column] > 0]
        negative = [row for row in rows if row[column] < 0]
        zero = [row for row in rows if row[column] == 0]
        combined: List[np.ndarray] = list(zero)
        for prow in positive:
            for nrow in negative:
                a = int(prow[column])
                b = -int(nrow[column])
                factor = a * b // gcd(a, b)
                new_row = (factor // a) * prow + (factor // b) * nrow
                new_row = _normalise_row(new_row)
                combined.append(new_row)
                if len(combined) > max_rows:
                    break
            if len(combined) > max_rows:
                break
        rows = _drop_non_minimal(combined, n_transitions)
        if len(rows) > max_rows:
            rows = rows[:max_rows]

    invariants: List[Dict[str, int]] = []
    seen = set()
    for row in rows:
        invariant_part = row[-n_transitions:]
        if np.all(invariant_part == 0):
            continue
        if np.any(invariant_part < 0):
            continue
        key = tuple(int(v) for v in invariant_part)
        if key in seen:
            continue
        seen.add(key)
        invariants.append(
            {transitions[i]: int(v) for i, v in enumerate(invariant_part) if v != 0}
        )
    invariants.sort(key=lambda inv: (len(inv), sorted(inv.items())))
    cache[cache_key] = [dict(invariant) for invariant in invariants]
    _BASIS_WARM_STORE.put(warm_key, [dict(invariant) for invariant in invariants])
    if disk is not None:
        artifact_cache.store_invariant_basis(
            disk, incidence_fp=incidence_fp, max_rows=max_rows, basis=invariants
        )
    return invariants


def is_t_invariant(net: PetriNet, vector: Dict[str, int]) -> bool:
    """Check that ``vector`` (transition -> count) satisfies ``C x = 0``."""
    matrix, _places, transitions = incidence_matrix(net)
    x = np.zeros(len(transitions), dtype=np.int64)
    index = {t: i for i, t in enumerate(transitions)}
    for transition, count in vector.items():
        if transition not in index:
            return False
        if count < 0:
            return False
        x[index[transition]] = count
    return bool(np.all(matrix @ x == 0))


def invariant_support(invariant: Dict[str, int]) -> frozenset:
    """The set of transitions occurring in an invariant."""
    return frozenset(t for t, count in invariant.items() if count > 0)


def combine_invariants(invariants: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Component-wise sum of several invariants (itself an invariant)."""
    result: Dict[str, int] = {}
    for invariant in invariants:
        for transition, count in invariant.items():
            result[transition] = result.get(transition, 0) + count
    return {t: c for t, c in result.items() if c}


def firing_count_vector(sequence: Sequence[str]) -> Dict[str, int]:
    """Parikh vector of a firing sequence."""
    counts: Dict[str, int] = {}
    for transition in sequence:
        counts[transition] = counts.get(transition, 0) + 1
    return counts


def subtract_firings(invariant: Dict[str, int], fired: Dict[str, int]) -> Optional[Dict[str, int]]:
    """Subtract fired counts from an invariant, clipping at zero.

    Returns ``None`` if the invariant is exhausted (all entries consumed),
    which signals that the corresponding cyclic behaviour has completed.
    """
    remaining: Dict[str, int] = {}
    for transition, count in invariant.items():
        left = count - fired.get(transition, 0)
        if left > 0:
            remaining[transition] = left
    return remaining or None
