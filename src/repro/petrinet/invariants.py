"""Incidence matrix and T-invariant computation.

Section 5.5.2 of the paper uses a non-negative basis of T-invariants (vectors
``x >= 0`` with ``C x = 0`` where ``C`` is the incidence matrix) to guide the
selection of ECSs during scheduling, and uses the *absence* of such a basis as
a sufficient condition for non-schedulability.

We compute minimal-support non-negative integer invariants with the classical
Farkas / Fourier-Motzkin elimination algorithm: start from ``[C^T | I]`` and
eliminate the columns of ``C^T`` one at a time by taking positive combinations
of rows with opposite signs, dropping rows whose support is a superset of
another row's support.
"""

from __future__ import annotations

from math import gcd
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.petrinet.net import PetriNet


def incidence_matrix(net: PetriNet) -> Tuple[np.ndarray, List[str], List[str]]:
    """Return ``(C, places, transitions)`` with ``C[i, j] = F(t_j, p_i) - F(p_i, t_j)``.

    Rows are indexed by places and columns by transitions, both in sorted name
    order so the matrix is reproducible.
    """
    places = sorted(net.places)
    transitions = sorted(net.transitions)
    place_index = {p: i for i, p in enumerate(places)}
    matrix = np.zeros((len(places), len(transitions)), dtype=np.int64)
    for j, transition in enumerate(transitions):
        for place, weight in net.pre[transition].items():
            matrix[place_index[place], j] -= weight
        for place, weight in net.post[transition].items():
            matrix[place_index[place], j] += weight
    return matrix, places, transitions


def _normalise_row(row: np.ndarray) -> np.ndarray:
    """Divide a non-negative integer row by the gcd of its entries."""
    nonzero = [int(v) for v in row if v != 0]
    if not nonzero:
        return row
    divisor = 0
    for value in nonzero:
        divisor = gcd(divisor, abs(value))
    if divisor > 1:
        return row // divisor
    return row


def _support(row: np.ndarray) -> frozenset:
    return frozenset(int(i) for i in np.nonzero(row)[0])


def _drop_non_minimal(rows: List[np.ndarray], width: int) -> List[np.ndarray]:
    """Remove rows whose invariant-part support strictly contains another's."""
    supports = [_support(row[-width:]) for row in rows]
    keep: List[np.ndarray] = []
    for i, row in enumerate(rows):
        minimal = True
        for j, other in enumerate(rows):
            if i == j:
                continue
            if supports[j] < supports[i]:
                minimal = False
                break
            if supports[j] == supports[i] and j < i:
                minimal = False
                break
        if minimal:
            keep.append(row)
    return keep


def t_invariant_basis(net: PetriNet, *, max_rows: int = 4096) -> List[Dict[str, int]]:
    """Minimal-support non-negative T-invariants of ``net``.

    Returns a list of sparse vectors (transition name -> positive count).  The
    empty list means the net admits no non-trivial T-invariant, which by the
    argument of Section 5.5.2 implies no cyclic schedule exists.

    ``max_rows`` caps the intermediate tableau to keep the elimination from
    exploding on pathological nets; when the cap is hit the result is still a
    set of valid invariants but may not contain every minimal one.
    """
    matrix, _places, transitions = incidence_matrix(net)
    n_places, n_transitions = matrix.shape
    if n_transitions == 0:
        return []
    # tableau rows: [C^T row | identity row]
    tableau = np.hstack([matrix.T, np.eye(n_transitions, dtype=np.int64)])
    rows: List[np.ndarray] = [tableau[i].copy() for i in range(n_transitions)]

    for column in range(n_places):
        positive = [row for row in rows if row[column] > 0]
        negative = [row for row in rows if row[column] < 0]
        zero = [row for row in rows if row[column] == 0]
        combined: List[np.ndarray] = list(zero)
        for prow in positive:
            for nrow in negative:
                a = int(prow[column])
                b = -int(nrow[column])
                factor = a * b // gcd(a, b)
                new_row = (factor // a) * prow + (factor // b) * nrow
                new_row = _normalise_row(new_row)
                combined.append(new_row)
                if len(combined) > max_rows:
                    break
            if len(combined) > max_rows:
                break
        rows = _drop_non_minimal(combined, n_transitions)
        if len(rows) > max_rows:
            rows = rows[:max_rows]

    invariants: List[Dict[str, int]] = []
    seen = set()
    for row in rows:
        invariant_part = row[-n_transitions:]
        if np.all(invariant_part == 0):
            continue
        if np.any(invariant_part < 0):
            continue
        key = tuple(int(v) for v in invariant_part)
        if key in seen:
            continue
        seen.add(key)
        invariants.append(
            {transitions[i]: int(v) for i, v in enumerate(invariant_part) if v != 0}
        )
    invariants.sort(key=lambda inv: (len(inv), sorted(inv.items())))
    return invariants


def is_t_invariant(net: PetriNet, vector: Dict[str, int]) -> bool:
    """Check that ``vector`` (transition -> count) satisfies ``C x = 0``."""
    matrix, _places, transitions = incidence_matrix(net)
    x = np.zeros(len(transitions), dtype=np.int64)
    index = {t: i for i, t in enumerate(transitions)}
    for transition, count in vector.items():
        if transition not in index:
            return False
        if count < 0:
            return False
        x[index[transition]] = count
    return bool(np.all(matrix @ x == 0))


def invariant_support(invariant: Dict[str, int]) -> frozenset:
    """The set of transitions occurring in an invariant."""
    return frozenset(t for t, count in invariant.items() if count > 0)


def combine_invariants(invariants: Sequence[Dict[str, int]]) -> Dict[str, int]:
    """Component-wise sum of several invariants (itself an invariant)."""
    result: Dict[str, int] = {}
    for invariant in invariants:
        for transition, count in invariant.items():
            result[transition] = result.get(transition, 0) + count
    return {t: c for t, c in result.items() if c}


def firing_count_vector(sequence: Sequence[str]) -> Dict[str, int]:
    """Parikh vector of a firing sequence."""
    counts: Dict[str, int] = {}
    for transition in sequence:
        counts[transition] = counts.get(transition, 0) + 1
    return counts


def subtract_firings(invariant: Dict[str, int], fired: Dict[str, int]) -> Optional[Dict[str, int]]:
    """Subtract fired counts from an invariant, clipping at zero.

    Returns ``None`` if the invariant is exhausted (all entries consumed),
    which signals that the corresponding cyclic behaviour has completed.
    """
    remaining: Dict[str, int] = {}
    for transition, count in invariant.items():
        left = count - fired.get(transition, 0)
        if left > 0:
            remaining[transition] = left
    return remaining or None
