"""Batched NumPy reachability / covering backend: one row per marking.

The facade walks markings one at a time; the experiments that *sweep* many
markings at once (irrelevance studies, boundedness scans, covering queries
over a reachable set) were paying a Python-level loop per marking.  This
module gives them a dense alternative: a marking **matrix** ``M`` of shape
``(n_markings, n_places)`` with one row per marking, against which

* enabledness of every transition at every marking is ``n_transitions``
  vectorized comparisons (:func:`enabled_mask`),
* firing a transition over all rows is one broadcast add (:func:`fire_rows`),
* covering / place-bound / irrelevance queries are row-wise reductions
  (:func:`covers_mask`, :func:`bound_violation_mask`,
  :func:`irrelevance_mask`),
* bounded reachability explores a whole BFS frontier per step
  (:func:`reachable_matrix`).

All matrices derived from the net structure (consumption, delta) are cached
on ``IndexedNet.analysis_cache`` and die with the structural snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.petrinet.indexed import IndexedNet, MarkingVec
from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet

_CONSUME_KEY = ("batched", "consume_matrix")
_PRODUCE_KEY = ("batched", "produce_matrix")
_DELTA_KEY = ("batched", "delta_matrix")

#: Element budget for one intermediate of the (children x ancestors x places)
#: irrelevance broadcast.  :func:`irrelevance_frontier_mask` chunks over the
#: ancestor axis so no boolean intermediate outgrows this many elements --
#: deep schedules (one path row per fired transition) would otherwise
#: materialise an O(children x depth x places) cube per node expansion.
IRRELEVANCE_CHUNK_ELEMENTS = 1 << 20

#: Token counts at or above this magnitude are rejected by the frontier
#: primitives: one more firing could leave the exact-int semantics of the
#: facade and silently wrap in int64 arithmetic.  The scheduling backends
#: fall back to the (unbounded Python int) scalar path beyond it.
FRONTIER_TOKEN_GUARD = 2**62


class FrontierOverflowError(OverflowError):
    """A marking holds token counts too large for the int64 matrix backend."""


def consumption_matrix(inet: IndexedNet) -> np.ndarray:
    """``W[t, p] = F(p, t)``: tokens transition ``t`` needs from place ``p``."""
    cached = inet.analysis_cache.get(_CONSUME_KEY)
    if cached is None:
        matrix = np.zeros(
            (len(inet.transition_names), len(inet.place_names)), dtype=np.int64
        )
        for tid, sparse in enumerate(inet.consume):
            for pid, weight in sparse:
                matrix[tid, pid] = weight
        matrix.setflags(write=False)
        inet.analysis_cache[_CONSUME_KEY] = cached = matrix
    return cached


def production_matrix(inet: IndexedNet) -> np.ndarray:
    """``W+[t, p] = F(t, p)``: tokens transition ``t`` puts into place ``p``."""
    cached = inet.analysis_cache.get(_PRODUCE_KEY)
    if cached is None:
        matrix = np.zeros(
            (len(inet.transition_names), len(inet.place_names)), dtype=np.int64
        )
        for tid, sparse in enumerate(inet.produce):
            for pid, weight in sparse:
                matrix[tid, pid] = weight
        matrix.setflags(write=False)
        inet.analysis_cache[_PRODUCE_KEY] = cached = matrix
    return cached


def delta_matrix(inet: IndexedNet) -> np.ndarray:
    """``D[t, p]``: marking change at place ``p`` when ``t`` fires."""
    cached = inet.analysis_cache.get(_DELTA_KEY)
    if cached is None:
        matrix = np.zeros(
            (len(inet.transition_names), len(inet.place_names)), dtype=np.int64
        )
        for tid, sparse in enumerate(inet.delta):
            for pid, delta in sparse:
                matrix[tid, pid] = delta
        matrix.setflags(write=False)
        inet.analysis_cache[_DELTA_KEY] = cached = matrix
    return cached


def adopt_dense_analysis(
    inet: IndexedNet,
    *,
    consume: Optional[np.ndarray] = None,
    produce: Optional[np.ndarray] = None,
    delta: Optional[np.ndarray] = None,
) -> None:
    """Install externally-owned dense matrices into the snapshot's cache.

    The shared-memory analysis plane (:mod:`repro.petrinet.shm`) attaches
    read-only views over another process's published arrays; adopting them
    here means :func:`consumption_matrix` / :func:`production_matrix` /
    :func:`delta_matrix` borrow those views instead of rebuilding the
    matrices from the sparse structure.  Arrays must be int64 of shape
    ``(n_transitions, n_places)`` and are forced read-only; shape or dtype
    mismatches raise ``ValueError`` rather than corrupting the hot loop.
    """
    expected = (len(inet.transition_names), len(inet.place_names))
    for key, array in ((_CONSUME_KEY, consume), (_PRODUCE_KEY, produce), (_DELTA_KEY, delta)):
        if array is None:
            continue
        if tuple(array.shape) != expected or array.dtype != np.int64:
            raise ValueError(
                f"cannot adopt {key[1]}: expected int64 {expected}, "
                f"got {array.dtype} {tuple(array.shape)}"
            )
        if array.flags.writeable:
            array = array.view()
            array.setflags(write=False)
        inet.analysis_cache[key] = array


def discard_dense_analysis(inet: IndexedNet) -> None:
    """Drop any (adopted or built) dense matrices from the snapshot's cache.

    Used when a shared-memory attachment is released: the borrowed views
    must not outlive the mapping they point into, so they are evicted and
    the next query rebuilds process-local matrices from the sparse form.
    """
    for key in (_CONSUME_KEY, _PRODUCE_KEY, _DELTA_KEY):
        inet.analysis_cache.pop(key, None)


def marking_matrix(
    inet: IndexedNet, markings: Iterable[Mapping[str, int] | MarkingVec]
) -> np.ndarray:
    """Stack markings (facade mappings or dense vectors) into one matrix."""
    rows: List[MarkingVec] = []
    for marking in markings:
        if isinstance(marking, tuple):
            rows.append(marking)
        else:
            rows.append(inet.vec_of_marking(marking))
    if not rows:
        return np.zeros((0, len(inet.place_names)), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def markings_of_matrix(inet: IndexedNet, matrix: np.ndarray) -> List[Marking]:
    """Facade markings for every row of the matrix."""
    return [inet.marking_of_vec(tuple(int(v) for v in row)) for row in matrix]


# ---------------------------------------------------------------------------
# batched firing semantics
# ---------------------------------------------------------------------------


def enabled_mask(inet: IndexedNet, matrix: np.ndarray) -> np.ndarray:
    """Boolean ``(n_markings, n_transitions)``: which transition is enabled where.

    Looping over transitions (small, fixed) keeps the working set at one
    ``(n_markings, n_places)`` comparison per transition instead of a cubic
    broadcast, so sweeps over tens of thousands of markings stay in cache.
    """
    needs = consumption_matrix(inet)
    result = np.empty((matrix.shape[0], needs.shape[0]), dtype=bool)
    for tid in range(needs.shape[0]):
        result[:, tid] = (matrix >= needs[tid]).all(axis=1)
    return result


def fire_rows(inet: IndexedNet, matrix: np.ndarray, tid: int) -> np.ndarray:
    """Fire ``tid`` at every row (caller guarantees enabledness)."""
    return matrix + delta_matrix(inet)[tid]


# ---------------------------------------------------------------------------
# frontier expansion (the EP-search hot loop)
# ---------------------------------------------------------------------------


def expand_children(
    inet: IndexedNet, vec: MarkingVec, tids: Sequence[int]
) -> np.ndarray:
    """Child markings of one node for several transitions at once.

    Returns a ``(len(tids), n_places)`` matrix whose row ``i`` is ``vec``
    after firing ``tids[i]`` -- the whole search frontier of one tree node
    as a single broadcast add against the dense delta matrix.  The caller
    guarantees enabledness (for the EP search, candidates come from enabled
    ECSs whose member transitions share one preset).

    Raises :class:`FrontierOverflowError` when a token count is at or above
    :data:`FRONTIER_TOKEN_GUARD`, where int64 arithmetic could wrap; callers
    then take the exact scalar path instead.
    """
    base = np.asarray(vec, dtype=np.int64)
    if base.size and int(np.abs(base).max()) >= FRONTIER_TOKEN_GUARD:
        raise FrontierOverflowError(
            "marking holds token counts >= 2**62; use the scalar backend"
        )
    return base + delta_matrix(inet)[list(tids)]


def _irrelevance_block(
    children: np.ndarray, ancestors: np.ndarray, degrees: np.ndarray
) -> np.ndarray:
    """One broadcast block of :func:`irrelevance_frontier_mask` (any-ancestor)."""
    ge = children[:, None, :] >= ancestors[None, :, :]
    gt = children[:, None, :] > ancestors[None, :, :]
    cover = ge.all(axis=2)
    # under cover, "differs" is equivalent to "grew somewhere"
    differs = gt.any(axis=2)
    unsaturated = ancestors[None, :, :] < degrees[None, None, :]
    grew_unsaturated = (gt & unsaturated).any(axis=2)
    return (cover & differs & ~grew_unsaturated).any(axis=1)


def irrelevance_frontier_mask(
    children: np.ndarray,
    ancestors: np.ndarray,
    degrees: np.ndarray,
    *,
    chunk_elements: Optional[int] = None,
) -> np.ndarray:
    """Per child: irrelevant (Definition 4.5) w.r.t. *any* ancestor row.

    ``children`` is the ``(n_children, n_places)`` frontier of one node,
    ``ancestors`` the ``(depth, n_places)`` markings on the path from the
    root to that node (any row order), ``degrees`` the dense place-degree
    vector.  A child is irrelevant w.r.t. an ancestor when it covers it,
    differs from it, and only grew on places already saturated in the
    ancestor -- evaluated per (child, ancestor) pair as a broadcast instead
    of the scalar per-ancestor walk.

    The broadcast is chunked over the ancestor axis so no boolean
    intermediate holds more than ``chunk_elements`` elements
    (:data:`IRRELEVANCE_CHUNK_ELEMENTS` by default): the verdict is a
    disjunction over ancestors, so OR-ing per-chunk verdicts is bitwise
    identical to the single cube while keeping peak memory flat on
    depth-thousands schedules.  Children already known irrelevant are
    dropped from later chunks (another pure-disjunction shortcut).
    """
    n_children = children.shape[0]
    if n_children == 0 or ancestors.shape[0] == 0:
        return np.zeros(n_children, dtype=bool)
    budget = chunk_elements if chunk_elements is not None else IRRELEVANCE_CHUNK_ELEMENTS
    depth = ancestors.shape[0]
    per_row = max(1, n_children * children.shape[1])
    chunk_rows = max(1, budget // per_row)
    if chunk_rows >= depth:
        return _irrelevance_block(children, ancestors, degrees)
    result = np.zeros(n_children, dtype=bool)
    undecided = np.arange(n_children)
    pending = children
    for start in range(0, depth, chunk_rows):
        block = _irrelevance_block(
            pending, ancestors[start : start + chunk_rows], degrees
        )
        if block.any():
            result[undecided[block]] = True
            keep = ~block
            undecided = undecided[keep]
            if undecided.size == 0:
                break
            pending = pending[keep]
    return result


# ---------------------------------------------------------------------------
# batched covering / termination queries
# ---------------------------------------------------------------------------


def covers_mask(matrix: np.ndarray, target: np.ndarray) -> np.ndarray:
    """Rows that cover ``target`` (component-wise >=)."""
    return (matrix >= np.asarray(target, dtype=np.int64)).all(axis=1)


def bound_violation_mask(
    matrix: np.ndarray, bounds: Sequence[Tuple[int, int]]
) -> np.ndarray:
    """Rows where some bounded place exceeds its bound.

    ``bounds`` is a sequence of ``(place_id, bound)`` pairs -- the dense form
    the termination conditions already cache per snapshot.
    """
    result = np.zeros(matrix.shape[0], dtype=bool)
    for pid, bound in bounds:
        result |= matrix[:, pid] > bound
    return result


def irrelevance_mask(
    matrix: np.ndarray, ancestor: np.ndarray, degrees: np.ndarray
) -> np.ndarray:
    """Rows irrelevant w.r.t. ``ancestor`` under Definition 4.5.

    A row ``M`` is irrelevant when it covers the ancestor, differs from it,
    and every place where it grew was already saturated (``ancestor[p] >=
    degree[p]``).  Reachability from the ancestor (condition (a)) is the
    caller's knowledge -- e.g. rows drawn from the ancestor's reachability
    cone, or tree descendants.
    """
    ancestor = np.asarray(ancestor, dtype=np.int64)
    degrees = np.asarray(degrees, dtype=np.int64)
    cover = (matrix >= ancestor).all(axis=1)
    differs = (matrix != ancestor).any(axis=1)
    grew_unsaturated = ((matrix > ancestor) & (ancestor < degrees)).any(axis=1)
    return cover & differs & ~grew_unsaturated


# ---------------------------------------------------------------------------
# batched reachability
# ---------------------------------------------------------------------------


def reachable_matrix(
    net: PetriNet,
    *,
    max_nodes: int = 10000,
    max_tokens_per_place: Optional[int] = None,
) -> np.ndarray:
    """Bounded BFS over markings, one whole frontier per step.

    Explores the same marking set as
    :func:`repro.petrinet.reachability.build_reachability_graph` with the
    equivalent cut-offs, but expands the entire frontier at once: one
    :func:`enabled_mask` per BFS level, one broadcast add per (level,
    transition) pair, dedup via hashed rows.  Returns the matrix of explored
    markings (first row = initial marking, rows in BFS discovery order).
    """
    from repro.petrinet.indexed import MarkingStore

    inet = net.indexed()
    store = MarkingStore()  # canonical successor vectors via bulk interning
    seen: Dict[MarkingVec, int] = {}
    rows: List[MarkingVec] = []

    def admit(vec: MarkingVec) -> bool:
        if vec in seen or len(rows) >= max_nodes:
            return False
        seen[vec] = len(rows)
        rows.append(vec)
        return True

    admit(inet.initial_vec)
    frontier = [inet.initial_vec]
    while frontier and len(rows) < max_nodes:
        matrix = np.asarray(frontier, dtype=np.int64)
        if max_tokens_per_place is not None:
            expandable = (matrix <= max_tokens_per_place).all(axis=1)
            matrix = matrix[expandable]
            if matrix.shape[0] == 0:
                break
        enabled = enabled_mask(inet, matrix)
        next_frontier: List[MarkingVec] = []
        for tid in range(enabled.shape[1]):
            firing_rows = matrix[enabled[:, tid]]
            if firing_rows.shape[0] == 0:
                continue
            successors = fire_rows(inet, firing_rows, tid)
            for vec in store.intern_rows(successors):
                if admit(vec):
                    next_frontier.append(vec)
            if len(rows) >= max_nodes:
                break
        frontier = next_frontier
    return np.asarray(rows, dtype=np.int64)
