"""Immutable markings of a Petri net.

A marking maps place names to non-negative token counts.  Markings are
hashable so they can be used as keys in reachability structures and compared
for equality when the scheduler looks for an ancestor with the same marking
(Section 5.2 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Mapping, Tuple


class Marking(Mapping[str, int]):
    """An immutable mapping from place name to token count.

    Places with zero tokens are not stored, so two markings that agree on all
    non-zero places are equal regardless of which zero entries were supplied.
    Indexing a place that carries no tokens returns ``0``.
    """

    __slots__ = ("_data", "_items", "_hash")

    def __init__(self, tokens: Mapping[str, int] | Iterable[Tuple[str, int]] = ()):
        data: Dict[str, int] = {}
        items = tokens.items() if isinstance(tokens, Mapping) else tokens
        for place, count in items:
            if count < 0:
                raise ValueError(f"negative token count for place {place!r}: {count}")
            if count:
                data[place] = int(count)
        self._data = data
        self._items: Tuple[Tuple[str, int], ...] = tuple(sorted(data.items()))
        self._hash = hash(self._items)

    @classmethod
    def _from_sorted_items(cls, items: Tuple[Tuple[str, int], ...]) -> "Marking":
        """Internal fast path: build from already-sorted positive-count items.

        Used by the indexed core, whose place IDs follow sorted-name order, to
        skip the re-sort and validation of ``__init__``.
        """
        self = object.__new__(cls)
        self._data = dict(items)
        self._items = items
        self._hash = hash(items)
        return self

    # -- Mapping protocol -------------------------------------------------
    def __getitem__(self, place: str) -> int:
        return self._data.get(place, 0)

    def get(self, place: str, default: int = 0) -> int:  # type: ignore[override]
        """Token count of ``place`` (``default`` when absent / zero)."""
        return self._data.get(place, default)

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, place: object) -> bool:
        return place in self._data

    # -- equality / hashing ------------------------------------------------
    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Marking):
            return self._items == other._items
        if isinstance(other, Mapping):
            # Compare without constructing a throwaway Marking (and paying its
            # sort + hash): a marking equals a mapping iff the non-zero entries
            # agree.  Mappings with negative counts can never equal a marking.
            data = self._data
            seen = 0
            for place, count in other.items():
                if not count:
                    continue
                if data.get(place, 0) != count:
                    return False
                seen += 1
            return seen == len(data)
        return NotImplemented

    def __repr__(self) -> str:
        if not self._items:
            return "Marking({})"
        inner = ", ".join(f"{name!r}: {count}" for name, count in self._items)
        return f"Marking({{{inner}}})"

    def pretty(self) -> str:
        """Compact human-readable rendering such as ``p1 p2^2``."""
        if not self._items:
            return "<empty>"
        parts = []
        for name, count in self._items:
            parts.append(name if count == 1 else f"{name}^{count}")
        return " ".join(parts)

    # -- arithmetic helpers -------------------------------------------------
    def items_with_zero(self, places: Iterable[str]) -> Iterator[Tuple[str, int]]:
        """Iterate ``(place, count)`` for every place in ``places``."""
        for place in places:
            yield place, self._data.get(place, 0)

    def add(self, deltas: Mapping[str, int]) -> "Marking":
        """Return a new marking with ``deltas`` added (may be negative)."""
        data = dict(self._data)
        for place, delta in deltas.items():
            data[place] = data.get(place, 0) + delta
        return Marking(data)

    def covers(self, other: "Marking") -> bool:
        """True if every place has at least as many tokens as in ``other``."""
        return all(self[place] >= count for place, count in other.items())

    def total_tokens(self) -> int:
        """Sum of all token counts in the marking."""
        return sum(self._data.values())

    def restrict(self, places: Iterable[str]) -> "Marking":
        """Projection of the marking onto ``places``."""
        keep = set(places)
        return Marking({name: count for name, count in self._data.items() if name in keep})
