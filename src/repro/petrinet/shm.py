"""Shared-memory analysis plane: publish one net's dense analysis to all workers.

The parallel scheduling layer (:mod:`repro.scheduling.parallel`) fans the
per-source EP searches out over a process pool.  Before this module, every
worker unpickled the net and rebuilt the whole dense analysis -- incidence /
delta matrices, place degrees, the indexed snapshot -- from scratch, paying
the startup cost once per process per net.  The analysis is immutable and
identical in every process, so the parent now publishes it **once** into
``multiprocessing.shared_memory`` blocks and ships only a small picklable
:class:`SharedNetHandle`; workers attach read-only NumPy views over the same
physical pages and construct their snapshot from the borrowed arrays
(:meth:`IndexedNet.from_dense`, :func:`repro.petrinet.batched.adopt_dense_analysis`)
without copying.

Published per net (all int64, sorted-name ID order):

* ``consume`` -- the incidence pre-matrix ``W-[t, p]``,
* ``produce`` -- the post-matrix ``W+[t, p]``,
* ``delta`` -- the marking-change matrix ``D = W+ - W-``,
* ``degrees`` -- the place-degree row (Definition 4.4),
* ``initial`` -- the dense initial-marking row,

plus the pickled net itself (one block, read by every attacher instead of
travelling through a pipe per worker) and a metadata block carrying the
structural fingerprint, which attach verifies before trusting any bytes.

Lifecycle: a :class:`SharedNetPlane` owns its blocks and is refcounted --
the process-wide registry holds one reference (so repeated parallel calls
against a long-lived external executor reuse the same blocks) and every
in-flight ``find_all_schedules_parallel`` call holds another for its
duration.  When the count reaches zero the blocks are closed and unlinked;
an ``atexit`` hook releases whatever the registry still holds, and unlink
only ever runs in the process that created the blocks (fork-inherited
planes are left alone).  The ``resource_tracker`` stays the crash safety
net: registrations are a process-tree-wide set, the creator's ``unlink``
clears them on the clean path, and a killed publisher leaves the tracker
to reap the segments at shutdown.

Every failure mode -- platform without shared memory, permission errors,
stale or unlinked block names, fingerprint mismatches -- degrades to the
pickle-shipping path with a warning; the plane is a pure transport
optimisation and can never change a schedule.  Set ``REPRO_SHM=0`` to
disable it outright.
"""

from __future__ import annotations

import atexit
import os
import pickle
import secrets
import time
import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.petrinet.analysis import StructuralAnalysis, all_place_degrees
from repro.petrinet.fingerprint import structural_fingerprint
from repro.petrinet.net import PetriNet
from repro.util import BoundedLRU

try:  # pragma: no cover - exercised via shm_available()
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without shm support
    _shared_memory = None


class SharedPlaneError(RuntimeError):
    """Base class for shared-memory analysis-plane failures."""


class SharedPlaneUnavailable(SharedPlaneError):
    """Shared memory cannot be used here (platform, permissions, disabled)."""


class SharedAttachError(SharedPlaneError):
    """A handle could not be attached (stale block, foreign contents)."""


class FingerprintMismatchError(SharedAttachError):
    """The attached block describes a different net than the handle claims."""


def shm_enabled() -> bool:
    """True unless ``REPRO_SHM`` is set to ``0`` / ``false`` / ``off``."""
    return os.environ.get("REPRO_SHM", "1").strip().lower() not in {
        "0",
        "false",
        "off",
        "no",
    }


def shm_available() -> bool:
    """True when the interpreter ships ``multiprocessing.shared_memory``."""
    return _shared_memory is not None


# ---------------------------------------------------------------------------
# handle: the small picklable description shipped to workers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SharedArraySpec:
    """Location and layout of one published array."""

    key: str
    block: str
    dtype: str
    shape: Tuple[int, ...]


@dataclass(frozen=True)
class SharedNetHandle:
    """Picklable description of one net's published analysis plane.

    Carries everything an attacher needs -- the structural fingerprint, the
    per-array block names / dtypes / shapes, and the location of the pickled
    net -- and nothing else: shipping a handle costs a few hundred bytes
    regardless of net size.
    """

    fingerprint: str
    arrays: Tuple[SharedArraySpec, ...]
    payload_block: str
    payload_size: int
    meta_block: str


def _block_name() -> str:
    # short (macOS caps shm names around 31 bytes) and collision-free
    return f"rs_{secrets.token_hex(6)}"


def _create_block(data: bytes):
    shm = _shared_memory.SharedMemory(create=True, size=max(1, len(data)), name=_block_name())
    shm.buf[: len(data)] = data
    return shm


# ---------------------------------------------------------------------------
# publisher side
# ---------------------------------------------------------------------------


class SharedNetPlane:
    """Owner of one net's shared-memory blocks (refcounted).

    Created by :func:`publish_net`; every consumer balances
    :meth:`acquire` with :meth:`release`, and the blocks are closed and
    unlinked when the count reaches zero.  Unlinking only happens in the
    creating process -- fork-inherited copies merely close their mappings.
    """

    __slots__ = ("handle", "_blocks", "_refcount", "_owner_pid", "closed")

    def __init__(self, handle: SharedNetHandle, blocks: List[object]):
        self.handle = handle
        self._blocks = blocks
        self._refcount = 1
        self._owner_pid = os.getpid()
        self.closed = False

    def acquire(self) -> "SharedNetPlane":
        """Take one reference; the plane stays published until released."""
        if self.closed:
            raise SharedPlaneError("plane is already closed")
        self._refcount += 1
        return self

    def release(self) -> None:
        """Drop one reference; the last release closes and unlinks the blocks."""
        if self.closed:
            return
        self._refcount -= 1
        if self._refcount <= 0:
            self._destroy()

    def _destroy(self) -> None:
        self.closed = True
        is_owner = os.getpid() == self._owner_pid
        for shm in self._blocks:
            try:
                shm.close()
            except OSError:
                continue
            if is_owner:
                try:
                    shm.unlink()
                except (FileNotFoundError, OSError):
                    pass
        self._blocks = []


def publish_net(
    net: PetriNet, fingerprint: Optional[str] = None
) -> SharedNetPlane:
    """Publish ``net``'s dense analysis into shared memory.

    Returns a fresh :class:`SharedNetPlane` holding one reference.  Raises
    :class:`SharedPlaneUnavailable` when shared memory cannot be used
    (missing module, ``REPRO_SHM=0``, or the OS refusing block creation);
    callers fall back to shipping pickled bytes.
    """
    if _shared_memory is None:
        raise SharedPlaneUnavailable("multiprocessing.shared_memory is unavailable")
    if not shm_enabled():
        raise SharedPlaneUnavailable("disabled via REPRO_SHM")
    import numpy as np

    from repro.petrinet.batched import (
        consumption_matrix,
        delta_matrix,
        production_matrix,
    )

    fingerprint = fingerprint or structural_fingerprint(net)
    inet = net.indexed()
    degrees = all_place_degrees(net)
    planes: Dict[str, "np.ndarray"] = {
        "consume": consumption_matrix(inet),
        "produce": production_matrix(inet),
        "delta": delta_matrix(inet),
        "degrees": np.asarray(
            [degrees[name] for name in inet.place_names], dtype=np.int64
        ),
        "initial": np.asarray(inet.initial_vec, dtype=np.int64),
    }
    payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)

    blocks: List[object] = []
    specs: List[SharedArraySpec] = []
    try:
        for key, array in planes.items():
            data = np.ascontiguousarray(array).tobytes()
            shm = _create_block(data)
            blocks.append(shm)
            specs.append(
                SharedArraySpec(
                    key=key,
                    block=shm.name,
                    dtype=str(array.dtype),
                    shape=tuple(int(d) for d in array.shape),
                )
            )
        payload_shm = _create_block(payload)
        blocks.append(payload_shm)
        meta_shm = _create_block(fingerprint.encode("utf-8"))
        blocks.append(meta_shm)
    except (OSError, ValueError) as exc:
        for shm in blocks:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        raise SharedPlaneUnavailable(f"cannot create shared-memory blocks: {exc}")

    handle = SharedNetHandle(
        fingerprint=fingerprint,
        arrays=tuple(specs),
        payload_block=payload_shm.name,
        payload_size=len(payload),
        meta_block=meta_shm.name,
    )
    return SharedNetPlane(handle, blocks)


# -- process-wide registry: fingerprint -> live plane ------------------------

_REGISTRY_PID = os.getpid()
_PLANES: "BoundedLRU[str, SharedNetPlane]" = BoundedLRU(
    4, on_evict=lambda _fp, plane: plane.release()
)


def _registry() -> "BoundedLRU[str, SharedNetPlane]":
    """The per-process plane registry (reset, not inherited, across fork)."""
    global _PLANES, _REGISTRY_PID
    if os.getpid() != _REGISTRY_PID:
        # fork child: the inherited planes belong to the parent -- drop the
        # references without releasing (release would close live mappings
        # the parent still serves to other workers)
        _PLANES = BoundedLRU(4, on_evict=lambda _fp, plane: plane.release())
        _REGISTRY_PID = os.getpid()
    return _PLANES


def acquire_shared_plane(
    net: PetriNet, fingerprint: Optional[str] = None
) -> Optional[SharedNetPlane]:
    """Get-or-publish the plane for ``net`` and take a caller reference.

    Returns ``None`` (after a one-line warning) when publication fails for
    any reason -- the caller then uses the pickle path.  On success the
    caller must balance with :meth:`SharedNetPlane.release`; the registry
    keeps its own reference so later calls (and long-lived external
    executors) reuse the blocks.
    """
    if not (shm_enabled() and shm_available()):
        return None
    fingerprint = fingerprint or structural_fingerprint(net)
    registry = _registry()
    plane = registry.get(fingerprint)
    if plane is not None and not plane.closed:
        return plane.acquire()
    try:
        plane = publish_net(net, fingerprint)
    except SharedPlaneUnavailable as exc:
        warnings.warn(
            f"shared-memory analysis plane unavailable ({exc}); "
            "falling back to pickled-net shipping",
            RuntimeWarning,
            stacklevel=2,
        )
        return None
    registry.put(fingerprint, plane)  # registry holds the initial reference
    return plane.acquire()


@atexit.register
def _release_registry() -> None:  # pragma: no cover - exercised at exit
    if os.getpid() != _REGISTRY_PID:
        return
    for fingerprint in list(_PLANES):
        plane = _PLANES.get(fingerprint)
        if plane is not None and not plane.closed:
            plane._destroy()
    _PLANES.clear()


# ---------------------------------------------------------------------------
# attacher side
# ---------------------------------------------------------------------------


def _close_quietly(shm) -> None:
    """Close one block mapping, swallowing already-closed/OS races."""
    try:
        shm.close()
    except OSError:
        pass


class AttachedNet:
    """A worker's zero-copy view of a published plane.

    ``net`` is the unpickled facade (private to this process), ``analysis``
    its :class:`StructuralAnalysis`; the net's indexed snapshot borrows the
    published dense matrices as read-only views.  :meth:`close` detaches:
    the borrowed views are evicted from the snapshot first, and each block
    mapping is closed eagerly only when no view over it has escaped --
    ``SharedMemory.close`` unmaps unconditionally (NumPy keeps the raw
    pointer, not a buffer export, so neither a ``BufferError`` nor the
    view's reference to the ``mmap`` protects it, and ``__del__`` closes
    too), making a read through a dangling view a hard crash.  For an
    escaped view the block is instead kept alive by a ``weakref.finalize``
    tied to the view: the mapping closes the moment the last escapee is
    collected, never under it.
    """

    __slots__ = (
        "net",
        "analysis",
        "handle",
        "_view_blocks",
        "_views",
        "_inet",
        "_closed",
    )

    def __init__(self, net, analysis, handle, view_blocks, views, inet):
        self.net = net
        self.analysis = analysis
        self.handle = handle
        self._view_blocks = view_blocks  # key -> SharedMemory
        self._views = views  # key -> borrowed ndarray over that block
        self._inet = inet
        self._closed = False

    def close(self) -> None:
        """Detach: drop the borrowed views, unmap blocks with no escapees."""
        if self._closed:
            return
        self._closed = True
        import sys
        import weakref

        from repro.petrinet.batched import discard_dense_analysis

        discard_dense_analysis(self._inet)
        views = self._views
        self._views = {}
        blocks = self._view_blocks
        self._view_blocks = {}
        for key, shm in blocks.items():
            view = views.pop(key, None)
            # after the cache discard the only expected references are the
            # `view` local and getrefcount's argument; anything beyond that
            # is an escapee still pointing into the mapping
            if view is not None and sys.getrefcount(view) > 2:
                # keep the block object alive exactly as long as the escapee
                # (the finalizer's argument holds the only strong reference;
                # SharedMemory.__del__ would otherwise unmap under the view)
                weakref.finalize(view, _close_quietly, shm)
                del view
                continue
            del view
            _close_quietly(shm)


def attach_net(handle: SharedNetHandle) -> AttachedNet:
    """Attach to a published plane and materialise the net around it.

    Verifies the fingerprint stored *in* the metadata block against the
    handle -- a stale name reused by an unrelated publisher must never be
    trusted -- which proves every block belongs to the handle's publish
    batch; the payload is then trusted without a structural re-fingerprint
    of the unpickled net (the publisher wrote both in one batch), with the
    dtype/shape cross-checks against the net's name spaces as the backstop.
    Raises :class:`SharedAttachError` / :class:`FingerprintMismatchError`
    on any inconsistency; the caller falls back to its pickled copy.
    """
    if _shared_memory is None:
        raise SharedPlaneUnavailable("multiprocessing.shared_memory is unavailable")
    import numpy as np

    from repro.petrinet.batched import adopt_dense_analysis
    from repro.petrinet.indexed import IndexedNet

    blocks: List[object] = []
    try:
        try:
            meta_shm = _shared_memory.SharedMemory(name=handle.meta_block)
        except (FileNotFoundError, OSError, ValueError) as exc:
            raise SharedAttachError(
                f"metadata block {handle.meta_block!r} is gone: {exc}"
            )
        blocks.append(meta_shm)
        stored = bytes(meta_shm.buf[: len(handle.fingerprint.encode("utf-8"))])
        if stored.decode("utf-8", errors="replace") != handle.fingerprint:
            raise FingerprintMismatchError(
                "attached metadata block carries a different fingerprint "
                "than the handle"
            )

        views: Dict[str, "np.ndarray"] = {}
        array_shms: Dict[str, object] = {}
        for spec in handle.arrays:
            try:
                shm = _shared_memory.SharedMemory(name=spec.block)
            except (FileNotFoundError, OSError, ValueError) as exc:
                raise SharedAttachError(f"array block {spec.block!r} is gone: {exc}")
            blocks.append(shm)
            array_shms[spec.key] = shm
            count = 1
            for dim in spec.shape:
                count *= dim
            if count * np.dtype(spec.dtype).itemsize > shm.size:
                raise SharedAttachError(
                    f"array block {spec.block!r} is smaller than its spec"
                )
            view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
            view.setflags(write=False)
            views[spec.key] = view
        missing = {"consume", "produce", "delta", "degrees", "initial"} - set(views)
        if missing:
            raise SharedAttachError(f"handle is missing arrays: {sorted(missing)}")

        try:
            payload_shm = _shared_memory.SharedMemory(name=handle.payload_block)
        except (FileNotFoundError, OSError, ValueError) as exc:
            raise SharedAttachError(
                f"payload block {handle.payload_block!r} is gone: {exc}"
            )
        blocks.append(payload_shm)
        if handle.payload_size > payload_shm.size:
            raise SharedAttachError("payload block is smaller than its spec")
        try:
            net: PetriNet = pickle.loads(bytes(payload_shm.buf[: handle.payload_size]))
        except Exception as exc:
            raise SharedAttachError(f"cannot unpickle the published net: {exc}")

        try:
            inet = IndexedNet.from_dense(
                net,
                views["consume"],
                views["produce"],
                views["delta"],
                views["initial"],
            )
        except ValueError as exc:
            raise SharedAttachError(str(exc))
        adopt_dense_analysis(
            inet,
            consume=views["consume"],
            produce=views["produce"],
            delta=views["delta"],
        )
        net.adopt_indexed(inet)
        degrees = {
            name: int(views["degrees"][pid])
            for pid, name in enumerate(inet.place_names)
        }
        analysis = StructuralAnalysis.of(net, degrees=degrees)
        # the metadata, payload, degrees and initial blocks are fully
        # consumed (fingerprint compared, net unpickled, rows copied into
        # private ints): drop their views and close those mappings now, so
        # a worker caching several nets only keeps the matrix pages it
        # actually borrows
        views.pop("degrees", None)
        views.pop("initial", None)
        for consumed in (
            meta_shm,
            payload_shm,
            array_shms.pop("degrees"),
            array_shms.pop("initial"),
        ):
            blocks.remove(consumed)
            consumed.close()
        return AttachedNet(net, analysis, handle, array_shms, views, inet)
    except BaseException:
        for shm in blocks:
            try:
                shm.close()
            except (BufferError, OSError):
                pass
        raise


# ---------------------------------------------------------------------------
# benchmarking helper (runs inside pool workers)
# ---------------------------------------------------------------------------


def measure_attach_vs_rebuild(
    handle: SharedNetHandle, payload: bytes, repeats: int = 3
) -> Dict[str, object]:
    """Time a cold attach against a cold unpickle-and-rebuild, in this process.

    Submitted to pool workers by ``benchmarks/bench_scheduler.py`` so the
    recorded numbers are what an actual worker pays: ``attach_seconds``
    covers :func:`attach_net` end to end (open blocks, verify the
    fingerprint, unpickle the net from shared memory, borrow the dense
    views) and ``rebuild_seconds`` the status-quo path (unpickle shipped
    bytes, rebuild the indexed snapshot, the full structural analysis and
    the dense matrices the batched hot loop needs -- attach borrows those
    for free).  Both legs run ``repeats`` times interleaved (best-of
    reported): a one-shot sample would charge the leg that happens to run
    first with every warm-up cost, which matters on oversubscribed CI
    hosts.
    """
    from repro.petrinet.batched import (
        consumption_matrix,
        delta_matrix,
        production_matrix,
    )

    attach_seconds = rebuild_seconds = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        attached = attach_net(handle)
        attach_seconds = min(attach_seconds, time.perf_counter() - start)
        attached.close()

        start = time.perf_counter()
        net: PetriNet = pickle.loads(payload)
        StructuralAnalysis.of(net)
        inet = net.indexed()
        consumption_matrix(inet)
        production_matrix(inet)
        delta_matrix(inet)
        rebuild_seconds = min(rebuild_seconds, time.perf_counter() - start)
    return {
        "pid": os.getpid(),
        "attach_seconds": attach_seconds,
        "rebuild_seconds": rebuild_seconds,
    }
