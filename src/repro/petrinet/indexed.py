"""Indexed Petri-net core: the integer-dense substrate of the hot paths.

The public boundary of the package is the name-based facade
(:class:`~repro.petrinet.net.PetriNet` plus the immutable
:class:`~repro.petrinet.marking.Marking` mapping).  That representation is
convenient for construction, linking and reporting, but it makes the
compile-time scheduling search pay a dictionary copy and a sorted-tuple hash
per fired transition and a full transition scan per enabled-set query.

This module provides the dense view every marking-walking layer runs on:

* places and transitions get dense integer IDs (sorted-name order, so IDs are
  reproducible and ID order equals name order);
* a marking is a plain tuple of token counts indexed by place ID -- natively
  hashable with no sorting and cheap to compare;
* each transition carries precomputed ``consume`` / ``produce`` / ``delta``
  sparse vectors, so firing is a handful of integer adds on a list copy;
* per-place consumer adjacency supports *incremental* enabled-set maintenance:
  after firing ``t`` only the transitions consuming from a place whose count
  actually changed are re-checked, instead of rescanning the whole net;
* :class:`MarkingStore` hash-conses marking tuples so equal markings share one
  object (identity fast-paths and deduplicated memory in large search trees).

An :class:`IndexedNet` is built once per structural version of a
:class:`PetriNet` and cached on it (see :meth:`PetriNet.indexed`); any
structural mutation invalidates the cache.
"""

from __future__ import annotations

from itertools import islice
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Tuple

from repro.petrinet.marking import Marking

# A marking in dense form: token count per place ID.
MarkingVec = Tuple[int, ...]
# A sparse per-transition vector: ((place_id, amount), ...).
SparseVec = Tuple[Tuple[int, int], ...]


class MarkingStore:
    """Hash-consing store for marking vectors.

    ``intern`` returns a canonical tuple object for each distinct marking, so
    equal markings compare with a pointer check first and the search tree does
    not hold thousands of duplicate tuples.  ``len`` reports the number of
    distinct markings seen -- the ``interned_markings`` search counter.
    """

    __slots__ = ("_store",)

    def __init__(self) -> None:
        self._store: Dict[MarkingVec, MarkingVec] = {}

    def intern(self, vec: MarkingVec) -> MarkingVec:
        """Return the canonical instance of ``vec``, admitting it if new.

        Two structurally equal markings interned through the same store come
        back as the *same* tuple object, so the schedulers can compare path
        ancestors by identity instead of element-wise equality.
        """
        canonical = self._store.get(vec)
        if canonical is None:
            self._store[vec] = vec
            return vec
        return canonical

    def intern_many(self, vecs: Iterable[MarkingVec]) -> List[MarkingVec]:
        """Intern a whole frontier in one pass (order preserved).

        Used by the batched EP backend to admit the surviving children of a
        node expansion together instead of one dict probe per ``add_child``.
        """
        store = self._store
        result: List[MarkingVec] = []
        for vec in vecs:
            canonical = store.get(vec)
            if canonical is None:
                store[vec] = vec
                canonical = vec
            result.append(canonical)
        return result

    def intern_rows(self, matrix) -> List[MarkingVec]:
        """Bulk-intern the rows of a raw int64 buffer (order preserved).

        ``matrix`` is anything with NumPy's ``tolist`` ((n, n_places),
        typically a frontier or reachability matrix); conversion to marking
        tuples happens in one C-level pass instead of a Python ``int()``
        per element, then each row is admitted like :meth:`intern`.  This is
        the admission step of the fused kernel layer: matrix producers hand
        their buffer straight to the store and get canonical vectors back.
        """
        store = self._store
        result: List[MarkingVec] = []
        for vec in map(tuple, matrix.tolist()):
            canonical = store.get(vec)
            if canonical is None:
                store[vec] = vec
                canonical = vec
            result.append(canonical)
        return result

    def __len__(self) -> int:
        return len(self._store)

    def __contains__(self, vec: MarkingVec) -> bool:
        return vec in self._store

    def vecs_since(self, mark: int) -> List[MarkingVec]:
        """The canonical vectors admitted after the store held ``mark`` entries.

        Dicts preserve insertion order, so this is the exact admission-ordered
        delta since a ``len(store)`` snapshot.  The intra-search work-stealing
        layer ships each stolen subtree's delta back to the parent, which
        re-interns it so the parent's ``interned_markings`` total matches the
        serial search's (interning is idempotent; the sets are equal even if
        the admission order differs).
        """
        if mark <= 0:
            return list(self._store)
        return list(islice(self._store, mark, None))


class IndexedNet:
    """Dense integer view of a :class:`PetriNet` (structurally immutable).

    The view is a snapshot: it must not be used across structural mutations of
    the underlying net (the :meth:`PetriNet.indexed` accessor enforces this by
    rebuilding on a version counter).
    """

    __slots__ = (
        "net",
        "place_names",
        "place_index",
        "transition_names",
        "transition_index",
        "consume",
        "produce",
        "delta",
        "token_delta",
        "deltas_by_name",
        "consumers_of_place",
        "producers_of_place",
        "affected_by",
        "initial_vec",
        "analysis_cache",
    )

    def __init__(self, net) -> None:
        self._init_names(net)

        consume: List[SparseVec] = []
        produce: List[SparseVec] = []
        delta: List[SparseVec] = []
        token_delta: List[int] = []
        deltas_by_name: List[Dict[str, int]] = []
        for name in self.transition_names:
            pre = net.pre[name]
            post = net.post[name]
            consume.append(
                tuple(sorted((self.place_index[p], w) for p, w in pre.items()))
            )
            produce.append(
                tuple(sorted((self.place_index[p], w) for p, w in post.items()))
            )
            by_pid: Dict[int, int] = {}
            for p, w in pre.items():
                pid = self.place_index[p]
                by_pid[pid] = by_pid.get(pid, 0) - w
            for p, w in post.items():
                pid = self.place_index[p]
                by_pid[pid] = by_pid.get(pid, 0) + w
            sparse = tuple(sorted((pid, d) for pid, d in by_pid.items() if d))
            delta.append(sparse)
            token_delta.append(sum(d for _pid, d in sparse))
            deltas_by_name.append(
                {self.place_names[pid]: d for pid, d in sparse}
            )
        self.consume: Tuple[SparseVec, ...] = tuple(consume)
        self.produce: Tuple[SparseVec, ...] = tuple(produce)
        self.delta: Tuple[SparseVec, ...] = tuple(delta)
        self.token_delta: Tuple[int, ...] = tuple(token_delta)
        self.deltas_by_name: Tuple[Dict[str, int], ...] = tuple(deltas_by_name)

        self.initial_vec: MarkingVec = tuple(
            net.initial_tokens.get(name, 0) for name in self.place_names
        )
        self._init_adjacency()

    def _init_names(self, net) -> None:
        """Dense ID assignment: sorted-name order for places and transitions."""
        self.net = net
        self.place_names: Tuple[str, ...] = tuple(sorted(net.places))
        self.place_index: Dict[str, int] = {
            name: pid for pid, name in enumerate(self.place_names)
        }
        self.transition_names: Tuple[str, ...] = tuple(sorted(net.transitions))
        self.transition_index: Dict[str, int] = {
            name: tid for tid, name in enumerate(self.transition_names)
        }

    def _init_adjacency(self) -> None:
        """Derive adjacency (consumers/producers/affected) from the sparse form."""
        consumers: List[List[Tuple[int, int]]] = [[] for _ in self.place_names]
        producers: List[List[Tuple[int, int]]] = [[] for _ in self.place_names]
        for tid, vec in enumerate(self.consume):
            for pid, w in vec:
                consumers[pid].append((tid, w))
        for tid, vec in enumerate(self.produce):
            for pid, w in vec:
                producers[pid].append((tid, w))
        self.consumers_of_place: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(entries) for entries in consumers
        )
        self.producers_of_place: Tuple[Tuple[Tuple[int, int], ...], ...] = tuple(
            tuple(entries) for entries in producers
        )

        # Transitions whose enabledness can change when ``tid`` fires: the
        # consumers of every place whose count actually changes.
        affected: List[Tuple[int, ...]] = []
        for tid, sparse in enumerate(self.delta):
            touched = set()
            for pid, _d in sparse:
                touched.update(t for t, _w in self.consumers_of_place[pid])
            affected.append(tuple(sorted(touched)))
        self.affected_by: Tuple[Tuple[int, ...], ...] = tuple(affected)

        # Scratch space for analyses keyed to this structural snapshot (e.g.
        # the T-invariant basis); dies with the snapshot on net mutation.
        self.analysis_cache: Dict[object, object] = {}

    @classmethod
    def from_dense(cls, net, consume, produce, delta, initial) -> "IndexedNet":
        """Build the snapshot from dense int64 arrays instead of the facade dicts.

        ``consume`` / ``produce`` / ``delta`` are ``(n_transitions, n_places)``
        matrices and ``initial`` the dense initial-marking row, all in
        sorted-name ID order -- exactly what the shared-memory analysis plane
        (:mod:`repro.petrinet.shm`) publishes.  The arrays are only *read*
        (sparse vectors come out of per-row ``nonzero``), never copied or
        retained, so borrowed read-only shared-memory views are fine; the
        resulting snapshot is field-for-field identical to ``IndexedNet(net)``.

        Shape mismatches against ``net``'s sorted name spaces raise
        ``ValueError`` -- the caller (attach) treats that as a stale or
        foreign block and falls back to rebuilding from the net.
        """
        import numpy as np

        self = cls.__new__(cls)
        self._init_names(net)
        n_transitions = len(self.transition_names)
        n_places = len(self.place_names)
        for label, array, shape in (
            ("consume", consume, (n_transitions, n_places)),
            ("produce", produce, (n_transitions, n_places)),
            ("delta", delta, (n_transitions, n_places)),
            ("initial", initial, (n_places,)),
        ):
            if tuple(array.shape) != shape:
                raise ValueError(
                    f"dense {label} array has shape {tuple(array.shape)}, "
                    f"expected {shape} for net {net.name!r}"
                )
        place_names = self.place_names

        def sparse_rows(matrix) -> List[List[Tuple[int, int]]]:
            # one whole-matrix nonzero (row-major: per-row entries stay in
            # ascending pid order) instead of one numpy call per transition
            rows: List[List[Tuple[int, int]]] = [[] for _ in range(n_transitions)]
            tids, pids = np.nonzero(matrix)
            values = matrix[tids, pids]
            for tid, pid, value in zip(tids.tolist(), pids.tolist(), values.tolist()):
                rows[tid].append((pid, value))
            return rows

        delta_sparse = sparse_rows(delta)
        token_delta: List[int] = []
        deltas_by_name: List[Dict[str, int]] = []
        for sparse in delta_sparse:
            token_delta.append(sum(d for _pid, d in sparse))
            deltas_by_name.append({place_names[pid]: d for pid, d in sparse})
        self.consume = tuple(tuple(row) for row in sparse_rows(consume))
        self.produce = tuple(tuple(row) for row in sparse_rows(produce))
        self.delta = tuple(tuple(row) for row in delta_sparse)
        self.token_delta = tuple(token_delta)
        self.deltas_by_name = tuple(deltas_by_name)
        self.initial_vec = tuple(int(v) for v in initial)
        self._init_adjacency()
        return self

    # ------------------------------------------------------------------
    # facade conversions
    # ------------------------------------------------------------------
    def vec_of_marking(self, marking: Mapping[str, int]) -> MarkingVec:
        """Dense vector for a name-keyed marking (zero for unknown places)."""
        get = marking.get
        return tuple(get(name, 0) for name in self.place_names)

    def marking_of_vec(self, vec: MarkingVec) -> Marking:
        """Facade :class:`Marking` for a dense vector.

        Place IDs follow sorted-name order, so the non-zero items are already
        sorted and the Marking can be built without re-sorting.
        """
        names = self.place_names
        items = tuple(
            (names[pid], count) for pid, count in enumerate(vec) if count
        )
        return Marking._from_sorted_items(items)

    # ------------------------------------------------------------------
    # firing semantics
    # ------------------------------------------------------------------
    def is_enabled_vec(self, tid: int, vec: MarkingVec) -> bool:
        for pid, weight in self.consume[tid]:
            if vec[pid] < weight:
                return False
        return True

    def fire_vec(self, tid: int, vec: MarkingVec) -> MarkingVec:
        """Fire transition ``tid`` at ``vec`` and return the successor vector."""
        for pid, weight in self.consume[tid]:
            if vec[pid] < weight:
                from repro.petrinet.net import PetriNetError

                raise PetriNetError(
                    f"transition {self.transition_names[tid]!r} is not enabled "
                    f"(place {self.place_names[pid]!r} holds {vec[pid]} < {weight})"
                )
        counts = list(vec)
        for pid, d in self.delta[tid]:
            counts[pid] += d
        return tuple(counts)

    def fire_sequence_vec(
        self, tids: Iterable[int], vec: MarkingVec
    ) -> MarkingVec:
        for tid in tids:
            vec = self.fire_vec(tid, vec)
        return vec

    def enabled_vec(self, vec: MarkingVec) -> Tuple[int, ...]:
        """All enabled transition IDs (ascending ID == ascending name)."""
        result = []
        for tid, needs in enumerate(self.consume):
            for pid, weight in needs:
                if vec[pid] < weight:
                    break
            else:
                result.append(tid)
        return tuple(result)

    def enabled_after(
        self, prev_enabled: FrozenSet[int], tid: int, new_vec: MarkingVec
    ) -> FrozenSet[int]:
        """Enabled set after firing ``tid``, updated incrementally.

        ``prev_enabled`` must be the enabled set of the marking ``tid`` was
        fired at; only the transitions adjacent to places whose count changed
        are re-checked.  Source transitions (empty preset) are never adjacent
        to anything and stay enabled forever, which the update preserves.
        """
        affected = self.affected_by[tid]
        if not affected:
            return prev_enabled
        updated = set(prev_enabled)
        for other in affected:
            if self.is_enabled_vec(other, new_vec):
                updated.add(other)
            else:
                updated.discard(other)
        return frozenset(updated)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def names_of(self, tids: Iterable[int]) -> List[str]:
        names = self.transition_names
        return [names[tid] for tid in sorted(tids)]

    def total_tokens(self, vec: MarkingVec) -> int:
        return sum(vec)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"IndexedNet({self.net.name!r}, places={len(self.place_names)}, "
            f"transitions={len(self.transition_names)})"
        )
