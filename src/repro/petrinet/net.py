"""Core Petri net data structures.

The net follows the definition of Section 2 of the paper: a tuple
``(P, T, F, M0)`` where ``F`` maps ``(P x T) U (T x P)`` to non-negative
integer weights.  Transitions additionally carry the annotations produced by
the FlowC compiler (code fragments, condition labels, process of origin,
source kind) and places carry the attributes used by linking (port/channel
identity, user-defined bounds, condition expressions for choice places).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.petrinet.marking import Marking

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.petrinet.indexed import IndexedNet


class PetriNetError(Exception):
    """Base class for structural errors in a Petri net."""


class ArcError(PetriNetError):
    """Raised when an arc refers to unknown nodes or has an invalid weight."""


class SourceKind(enum.Enum):
    """Classification of source transitions attached to environment ports."""

    NONE = "none"
    CONTROLLABLE = "controllable"
    UNCONTROLLABLE = "uncontrollable"


@dataclass
class Place:
    """A place of the net.

    Attributes
    ----------
    name:
        Unique identifier within the net.
    bound:
        Optional user-defined bound on the number of tokens (channel bound).
    is_port:
        True for places that model a FlowC port / channel.
    channel:
        Name of the channel this place implements, when ``is_port``.
    process:
        Name of the process the place belongs to (``None`` for merged channel
        places shared by two processes).
    condition:
        For choice places introduced by ``if``/``while`` statements, the
        source expression whose run-time value selects the successor.
    """

    name: str
    bound: Optional[int] = None
    is_port: bool = False
    channel: Optional[str] = None
    process: Optional[str] = None
    condition: Optional[object] = None

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class Transition:
    """A transition of the net.

    Attributes
    ----------
    name:
        Unique identifier within the net.
    code:
        Opaque annotation carrying the FlowC statements executed when the
        transition fires (a list of AST statements, or ``None`` for silent
        transitions).
    process:
        Name of the originating FlowC process (``None`` for environment
        source/sink transitions).
    source_kind:
        Whether the transition is an environment source and of which class.
    is_sink:
        True for environment sink transitions attached to primary outputs.
    guard:
        For transitions that resolve a data-dependent choice, ``True`` or
        ``False`` depending on the branch they represent; ``None`` otherwise.
    select_priority:
        Priority used to resolve SELECT choices (lower value = higher
        priority); ``None`` for transitions not created by SELECT.
    """

    name: str
    code: object = None
    process: Optional[str] = None
    source_kind: SourceKind = SourceKind.NONE
    is_sink: bool = False
    guard: Optional[bool] = None
    select_priority: Optional[int] = None

    @property
    def is_source(self) -> bool:
        """True for any environment-port transition (either source kind)."""
        return self.source_kind is not SourceKind.NONE

    @property
    def is_uncontrollable_source(self) -> bool:
        """True when the environment decides when this transition fires."""
        return self.source_kind is SourceKind.UNCONTROLLABLE

    @property
    def is_controllable_source(self) -> bool:
        """True when the scheduler decides when this transition fires."""
        return self.source_kind is SourceKind.CONTROLLABLE

    def __hash__(self) -> int:
        return hash(self.name)


@dataclass
class PetriNet:
    """A weighted Petri net with an initial marking."""

    name: str = "net"
    places: Dict[str, Place] = field(default_factory=dict)
    transitions: Dict[str, Transition] = field(default_factory=dict)
    # pre[t][p] = F(p, t); post[t][p] = F(t, p)
    pre: Dict[str, Dict[str, int]] = field(default_factory=dict)
    post: Dict[str, Dict[str, int]] = field(default_factory=dict)
    initial_tokens: Dict[str, int] = field(default_factory=dict)
    # Optional per-process WCET annotations (FlowC ``WCET(n)``), in abstract
    # cycles per transition of the process.  Empty for unannotated nets; the
    # structural fingerprint appends them only when present, so unannotated
    # nets keep their historical fingerprints.  Read by the cost objective's
    # latency/jitter terms (repro.scheduling.objective).
    process_wcet: Dict[str, int] = field(default_factory=dict)

    # -- derived caches (not part of the value of the net) -----------------
    # Structural version: bumped on every mutation so the indexed view and
    # the place adjacency can detect staleness.
    _version: int = field(default=0, init=False, repr=False, compare=False)
    _indexed: Optional["IndexedNet"] = field(
        default=None, init=False, repr=False, compare=False
    )
    _indexed_version: int = field(default=-1, init=False, repr=False, compare=False)
    # place -> {transition: weight} adjacency, maintained incrementally by
    # add_place/add_arc and rebuilt lazily after invalidate_caches().
    _place_in: Dict[str, Dict[str, int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _place_out: Dict[str, Dict[str, int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _adjacency_dirty: bool = field(default=False, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Constructor-supplied dicts bypass add_place/add_arc; rebuild lazily.
        if self.places or self.pre or self.post:
            self._adjacency_dirty = True

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle only the value of the net, never the derived caches.

        The indexed snapshot and the place adjacency are rebuilt lazily on
        first use in the receiving process; shipping them would roughly
        double the payload the parallel scheduler sends to each worker and
        would drag the ``analysis_cache`` (numpy arrays, invariant bases)
        across the process boundary.
        """
        state = dict(self.__dict__)
        state["_indexed"] = None
        state["_indexed_version"] = -1
        state["_place_in"] = {}
        state["_place_out"] = {}
        state["_adjacency_dirty"] = True
        return state

    # ------------------------------------------------------------------
    # cache management
    # ------------------------------------------------------------------
    def invalidate_caches(self) -> None:
        """Declare a structural mutation done outside the ``add_*`` methods.

        Code that pokes ``pre``/``post``/``places``/``initial_tokens``
        directly (the linker's place merging, the compiler's epsilon
        collapse) must call this afterwards so the indexed view and the
        place adjacency are rebuilt before their next use.
        """
        self._version += 1
        self._indexed = None
        self._adjacency_dirty = True

    def indexed(self) -> "IndexedNet":
        """The cached integer-dense view of this net (see ``petrinet.indexed``).

        Rebuilt automatically when the structural version changed; callers
        must not keep using an old view across mutations.
        """
        if self._indexed is None or self._indexed_version != self._version:
            from repro.petrinet.indexed import IndexedNet

            self._indexed = IndexedNet(self)
            self._indexed_version = self._version
        return self._indexed

    def adopt_indexed(self, indexed: "IndexedNet") -> None:
        """Install a pre-built :class:`IndexedNet` as this net's snapshot.

        Used by the shared-memory analysis plane, which constructs the
        snapshot from published dense arrays (``IndexedNet.from_dense``)
        instead of walking the facade dicts; afterwards ``self.indexed()``
        returns it until the next structural mutation.  The snapshot must
        have been built *for this net object* -- a foreign snapshot would
        mix ID spaces, so it is rejected.
        """
        if indexed.net is not self:
            raise ValueError("cannot adopt an IndexedNet built for a different net")
        self._indexed = indexed
        self._indexed_version = self._version

    def _adjacency(self) -> Tuple[Dict[str, Dict[str, int]], Dict[str, Dict[str, int]]]:
        if self._adjacency_dirty:
            place_in: Dict[str, Dict[str, int]] = {p: {} for p in self.places}
            place_out: Dict[str, Dict[str, int]] = {p: {} for p in self.places}
            for transition, places in self.pre.items():
                for place, weight in places.items():
                    place_out[place][transition] = weight
            for transition, places in self.post.items():
                for place, weight in places.items():
                    place_in[place][transition] = weight
            self._place_in = place_in
            self._place_out = place_out
            self._adjacency_dirty = False
        return self._place_in, self._place_out

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_place(
        self,
        name: str,
        tokens: int = 0,
        *,
        bound: Optional[int] = None,
        is_port: bool = False,
        channel: Optional[str] = None,
        process: Optional[str] = None,
        condition: Optional[object] = None,
    ) -> Place:
        """Add a place; raises if the name is already used."""
        if name in self.places:
            raise PetriNetError(f"duplicate place {name!r}")
        if name in self.transitions:
            raise PetriNetError(f"name {name!r} already used by a transition")
        if tokens < 0:
            raise PetriNetError(f"negative initial tokens for place {name!r}")
        place = Place(
            name=name,
            bound=bound,
            is_port=is_port,
            channel=channel,
            process=process,
            condition=condition,
        )
        self.places[name] = place
        if tokens:
            self.initial_tokens[name] = tokens
        if not self._adjacency_dirty:
            self._place_in[name] = {}
            self._place_out[name] = {}
        self._version += 1
        return place

    def add_transition(
        self,
        name: str,
        *,
        code: object = None,
        process: Optional[str] = None,
        source_kind: SourceKind = SourceKind.NONE,
        is_sink: bool = False,
        guard: Optional[bool] = None,
        select_priority: Optional[int] = None,
    ) -> Transition:
        """Add a transition; raises if the name is already used."""
        if name in self.transitions:
            raise PetriNetError(f"duplicate transition {name!r}")
        if name in self.places:
            raise PetriNetError(f"name {name!r} already used by a place")
        transition = Transition(
            name=name,
            code=code,
            process=process,
            source_kind=source_kind,
            is_sink=is_sink,
            guard=guard,
            select_priority=select_priority,
        )
        self.transitions[name] = transition
        self.pre[name] = {}
        self.post[name] = {}
        self._version += 1
        return transition

    def add_arc(self, src: str, dst: str, weight: int = 1) -> None:
        """Add an arc from ``src`` to ``dst`` with the given weight.

        One endpoint must be a place and the other a transition.  Adding an
        arc that already exists accumulates the weight.
        """
        if weight <= 0:
            raise ArcError(f"arc weight must be positive, got {weight}")
        if src in self.places and dst in self.transitions:
            total = self.pre[dst].get(src, 0) + weight
            self.pre[dst][src] = total
            if not self._adjacency_dirty:
                self._place_out[src][dst] = total
        elif src in self.transitions and dst in self.places:
            total = self.post[src].get(dst, 0) + weight
            self.post[src][dst] = total
            if not self._adjacency_dirty:
                self._place_in[dst][src] = total
        else:
            raise ArcError(f"arc ({src!r}, {dst!r}) does not connect a place and a transition")
        self._version += 1

    # ------------------------------------------------------------------
    # weights / structure queries
    # ------------------------------------------------------------------
    def weight_pt(self, place: str, transition: str) -> int:
        """F(p, t): weight of the arc from ``place`` to ``transition``."""
        return self.pre.get(transition, {}).get(place, 0)

    def weight_tp(self, transition: str, place: str) -> int:
        """F(t, p): weight of the arc from ``transition`` to ``place``."""
        return self.post.get(transition, {}).get(place, 0)

    def preset_of_transition(self, transition: str) -> Dict[str, int]:
        """Places feeding ``transition`` with their weights."""
        return dict(self.pre[transition])

    def postset_of_transition(self, transition: str) -> Dict[str, int]:
        """Places fed by ``transition`` with their weights."""
        return dict(self.post[transition])

    def preset_of_place(self, place: str) -> Dict[str, int]:
        """Transitions feeding ``place`` with their weights."""
        place_in, _place_out = self._adjacency()
        return dict(place_in.get(place, ()))

    def postset_of_place(self, place: str) -> Dict[str, int]:
        """Transitions consuming from ``place`` with their weights."""
        _place_in, place_out = self._adjacency()
        return dict(place_out.get(place, ()))

    def successors_of_place(self, place: str) -> List[str]:
        """Names of the transitions consuming from ``place``, sorted."""
        return sorted(self.postset_of_place(place))

    def predecessors_of_place(self, place: str) -> List[str]:
        """Names of the transitions producing into ``place``, sorted."""
        return sorted(self.preset_of_place(place))

    # ------------------------------------------------------------------
    # marking / firing semantics
    # ------------------------------------------------------------------
    @property
    def initial_marking(self) -> Marking:
        """The initial marking ``M0`` as an immutable :class:`Marking`."""
        return Marking(self.initial_tokens)

    def set_initial_tokens(self, place: str, tokens: int) -> None:
        """Set ``M0(place) = tokens`` (structural mutation: bumps the version)."""
        if place not in self.places:
            raise PetriNetError(f"unknown place {place!r}")
        if tokens < 0:
            raise PetriNetError("initial token count must be non-negative")
        if tokens:
            self.initial_tokens[place] = tokens
        else:
            self.initial_tokens.pop(place, None)
        # Token counts are not arc structure: the indexed snapshot's delta and
        # adjacency tables stay valid, only its initial vector must refresh.
        if self._indexed is not None and self._indexed_version == self._version:
            indexed = self._indexed
            indexed.initial_vec = tuple(
                self.initial_tokens.get(name, 0) for name in indexed.place_names
            )

    def is_enabled(self, transition: str, marking: Marking) -> bool:
        """True if ``transition`` is enabled at ``marking``."""
        if transition not in self.transitions:
            raise PetriNetError(f"unknown transition {transition!r}")
        return all(marking[place] >= weight for place, weight in self.pre[transition].items())

    def fire(self, transition: str, marking: Marking) -> Marking:
        """Fire ``transition`` at ``marking`` and return the new marking."""
        if not self.is_enabled(transition, marking):
            raise PetriNetError(f"transition {transition!r} is not enabled at {marking.pretty()}")
        indexed = self.indexed()
        return marking.add(indexed.deltas_by_name[indexed.transition_index[transition]])

    def fire_sequence(self, sequence: Sequence[str], marking: Optional[Marking] = None) -> Marking:
        """Fire a sequence of transitions, raising if any is not enabled."""
        current = self.initial_marking if marking is None else marking
        for transition in sequence:
            current = self.fire(transition, current)
        return current

    def is_fireable_sequence(self, sequence: Sequence[str], marking: Optional[Marking] = None) -> bool:
        """True if the sequence can be fired from ``marking`` (default M0)."""
        current = self.initial_marking if marking is None else marking
        for transition in sequence:
            if not self.is_enabled(transition, current):
                return False
            current = self.fire(transition, current)
        return True

    def enabled_transitions(self, marking: Marking) -> List[str]:
        """All transitions enabled at ``marking`` (sorted by name)."""
        indexed = self.indexed()
        vec = indexed.vec_of_marking(marking)
        names = indexed.transition_names
        # transition IDs follow sorted-name order, so the result is sorted
        return [names[tid] for tid in indexed.enabled_vec(vec)]

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------
    def source_transitions(self) -> List[str]:
        """Structural sources: transitions with an empty preset."""
        return sorted(t for t in self.transitions if not self.pre[t])

    def uncontrollable_sources(self) -> List[str]:
        """The environment inputs -- one single-source schedule is built per entry."""
        return sorted(
            t for t, obj in self.transitions.items() if obj.source_kind is SourceKind.UNCONTROLLABLE
        )

    def controllable_sources(self) -> List[str]:
        """Source transitions the scheduler itself may choose to fire."""
        return sorted(
            t for t, obj in self.transitions.items() if obj.source_kind is SourceKind.CONTROLLABLE
        )

    def choice_places(self) -> List[str]:
        """Places with more than one successor transition."""
        return sorted(p for p in self.places if len(self.postset_of_place(p)) > 1)

    def port_places(self) -> List[str]:
        """Places that model environment ports or inter-process channels."""
        return sorted(p for p, obj in self.places.items() if obj.is_port)

    # ------------------------------------------------------------------
    # utility
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check referential integrity of arcs and the initial marking."""
        for transition, places in list(self.pre.items()) + list(self.post.items()):
            if transition not in self.transitions:
                raise PetriNetError(f"arc refers to unknown transition {transition!r}")
            for place in places:
                if place not in self.places:
                    raise PetriNetError(f"arc refers to unknown place {place!r}")
        for place in self.initial_tokens:
            if place not in self.places:
                raise PetriNetError(f"initial marking refers to unknown place {place!r}")

    def copy(self, name: Optional[str] = None) -> "PetriNet":
        """Deep-ish copy of the net (place/transition objects are shared-free)."""
        clone = PetriNet(name=name or self.name)
        for place in self.places.values():
            clone.add_place(
                place.name,
                self.initial_tokens.get(place.name, 0),
                bound=place.bound,
                is_port=place.is_port,
                channel=place.channel,
                process=place.process,
                condition=place.condition,
            )
        for transition in self.transitions.values():
            clone.add_transition(
                transition.name,
                code=transition.code,
                process=transition.process,
                source_kind=transition.source_kind,
                is_sink=transition.is_sink,
                guard=transition.guard,
                select_priority=transition.select_priority,
            )
        for transition, places in self.pre.items():
            for place, weight in places.items():
                clone.add_arc(place, transition, weight)
        for transition, places in self.post.items():
            for place, weight in places.items():
                clone.add_arc(transition, place, weight)
        clone.process_wcet = dict(self.process_wcet)
        return clone

    def stats(self) -> Dict[str, int]:
        """Basic size statistics of the net."""
        arcs = sum(len(places) for places in self.pre.values())
        arcs += sum(len(places) for places in self.post.values())
        return {
            "places": len(self.places),
            "transitions": len(self.transitions),
            "arcs": arcs,
            "tokens": sum(self.initial_tokens.values()),
        }

    def to_dot(self) -> str:
        """Render the net in Graphviz dot syntax (for documentation)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=TB;"]
        for place in sorted(self.places):
            tokens = self.initial_tokens.get(place, 0)
            label = place if not tokens else f"{place}\\n{tokens}"
            shape = "ellipse" if not self.places[place].is_port else "doublecircle"
            lines.append(f'  "{place}" [shape={shape}, label="{label}"];')
        for transition in sorted(self.transitions):
            lines.append(f'  "{transition}" [shape=box];')
        for transition, places in sorted(self.pre.items()):
            for place, weight in sorted(places.items()):
                suffix = f' [label="{weight}"]' if weight != 1 else ""
                lines.append(f'  "{place}" -> "{transition}"{suffix};')
        for transition, places in sorted(self.post.items()):
            for place, weight in sorted(places.items()):
                suffix = f' [label="{weight}"]' if weight != 1 else ""
                lines.append(f'  "{transition}" -> "{place}"{suffix};')
        lines.append("}")
        return "\n".join(lines)

    def __iter__(self) -> Iterator[str]:
        return iter(self.transitions)

    def __contains__(self, name: str) -> bool:
        return name in self.transitions or name in self.places


def merge_nets(nets: Iterable[PetriNet], name: str = "linked") -> PetriNet:
    """Disjoint union of several nets (no merging of same-named nodes).

    Raises :class:`PetriNetError` if node names collide; the linker is
    responsible for prefixing names per process before calling this.
    """
    merged = PetriNet(name=name)
    for net in nets:
        for place in net.places.values():
            merged.add_place(
                place.name,
                net.initial_tokens.get(place.name, 0),
                bound=place.bound,
                is_port=place.is_port,
                channel=place.channel,
                process=place.process,
                condition=place.condition,
            )
        for transition in net.transitions.values():
            merged.add_transition(
                transition.name,
                code=transition.code,
                process=transition.process,
                source_kind=transition.source_kind,
                is_sink=transition.is_sink,
                guard=transition.guard,
                select_priority=transition.select_priority,
            )
        for transition, places in net.pre.items():
            for place, weight in places.items():
                merged.add_arc(place, transition, weight)
        for transition, places in net.post.items():
            for place, weight in places.items():
                merged.add_arc(transition, place, weight)
    return merged
