"""Structural fingerprints of Petri nets.

A fingerprint is a stable hash over the *value* of a net -- names, arcs,
weights, initial tokens, source kinds, bounds -- and deliberately excludes
the derived caches (`PetriNet._indexed`, adjacency) and the opaque code
annotations carried by transitions.  Two nets built independently but with
identical structure produce identical fingerprints, which is what lets the
warm-start caches (:mod:`repro.scheduling.warmstart`, the T-invariant basis
store in :mod:`repro.petrinet.invariants`) survive across net *objects*:
the per-snapshot ``IndexedNet.analysis_cache`` dies whenever a config sweep
rebuilds the same system, a fingerprint-keyed store does not.

Two granularities are provided:

* :func:`incidence_fingerprint` covers exactly what the incidence matrix
  sees (transitions, places, arc weights).  T-invariants depend on nothing
  else, so this is the key for basis reuse.
* :func:`structural_fingerprint` additionally covers the initial marking,
  source kinds, sink flags, guards and user channel bounds -- everything
  the scheduling search reads.  Identical fingerprints imply the EP search
  is deterministic-identical, so schedules can be replayed from a cache.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.petrinet.net import PetriNet


def _hash_items(items: Iterable[Tuple]) -> str:
    digest = hashlib.sha256()
    for item in items:
        digest.update(repr(item).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


def incidence_fingerprint(net: "PetriNet") -> str:
    """Hash of the weighted flow relation (what ``C x = 0`` depends on)."""
    items: list = [("places", tuple(sorted(net.places)))]
    for transition in sorted(net.transitions):
        items.append(
            (
                "t",
                transition,
                tuple(sorted(net.pre[transition].items())),
                tuple(sorted(net.post[transition].items())),
            )
        )
    return _hash_items(items)


def structural_fingerprint(net: "PetriNet") -> str:
    """Hash of everything the scheduling search reads from a net."""
    items: list = []
    for name in sorted(net.places):
        place = net.places[name]
        items.append(
            (
                "p",
                name,
                net.initial_tokens.get(name, 0),
                place.bound,
                place.is_port,
                place.channel,
                place.process,
            )
        )
    for name in sorted(net.transitions):
        transition = net.transitions[name]
        items.append(
            (
                "t",
                name,
                tuple(sorted(net.pre[name].items())),
                tuple(sorted(net.post[name].items())),
                transition.source_kind.value,
                transition.is_sink,
                transition.guard,
                transition.select_priority,
                transition.process,
            )
        )
    # WCET annotations feed the cost objective's latency/jitter terms, so
    # they are result identity for objective="cost" searches.  Appended
    # only when present: unannotated nets -- every golden fixture, every
    # record cached before the annotation existed -- keep their bytes.
    if net.process_wcet:
        for process in sorted(net.process_wcet):
            items.append(("wcet", process, net.process_wcet[process]))
    return _hash_items(items)
