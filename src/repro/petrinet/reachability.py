"""Reachability graph and tree exploration.

The reachability graph of the linked net is infinite in general (because of
source transitions), so exploration is always bounded, either by an explicit
node budget, a marking predicate (e.g. place bounds), or a token cap.  The
scheduler in :mod:`repro.scheduling` builds its own tree; this module serves
the analyses that need plain reachability: the semantic unique-choice check,
boundedness diagnostics, and tests against the small nets from the paper's
figures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.petrinet.marking import Marking
from repro.petrinet.net import PetriNet


class ReachabilityLimitExceeded(Exception):
    """Raised when exploration exceeds the allotted node budget."""


@dataclass
class ReachabilityNode:
    """A node of the reachability graph: one reachable marking."""

    index: int
    marking: Marking
    # successors: transition name -> index of the successor node
    successors: Dict[str, int] = field(default_factory=dict)


@dataclass
class ReachabilityGraph:
    """Explicit reachability graph over a (bounded) set of markings."""

    net: PetriNet
    nodes: List[ReachabilityNode] = field(default_factory=list)
    index_of: Dict[Marking, int] = field(default_factory=dict)
    complete: bool = True

    @property
    def markings(self) -> List[Marking]:
        return [node.marking for node in self.nodes]

    def node_for(self, marking: Marking) -> ReachabilityNode:
        return self.nodes[self.index_of[marking]]

    def __len__(self) -> int:
        return len(self.nodes)

    def edges(self) -> Iterable[Tuple[Marking, str, Marking]]:
        for node in self.nodes:
            for transition, target in node.successors.items():
                yield node.marking, transition, self.nodes[target].marking

    def max_tokens_per_place(self) -> Dict[str, int]:
        """Maximum observed token count per place over all explored markings."""
        result: Dict[str, int] = {place: 0 for place in self.net.places}
        for node in self.nodes:
            for place, count in node.marking.items():
                if count > result[place]:
                    result[place] = count
        return result


def build_reachability_graph(
    net: PetriNet,
    *,
    max_nodes: int = 10000,
    marking_filter: Optional[Callable[[Marking], bool]] = None,
    max_tokens_per_place: Optional[int] = None,
    raise_on_limit: bool = False,
) -> ReachabilityGraph:
    """Breadth-first exploration of the reachability graph.

    Parameters
    ----------
    max_nodes:
        Hard cap on the number of distinct markings explored.
    marking_filter:
        Optional predicate; markings for which it returns ``False`` are not
        expanded (they are still recorded as nodes).
    max_tokens_per_place:
        Convenience cut-off: markings where any place exceeds this count are
        not expanded.  This corresponds to exploring with uniform pre-defined
        place bounds (the approach of [13] discussed in Section 4.4).
    raise_on_limit:
        If True, raise :class:`ReachabilityLimitExceeded` when ``max_nodes``
        is hit; otherwise return a graph flagged ``complete=False``.
    """
    # The exploration runs on the indexed core: markings are dense tuples,
    # firing applies precomputed deltas, and each node's enabled set is
    # derived incrementally from its BFS predecessor's.  The public graph
    # still exposes facade Markings (one conversion per distinct node).
    indexed = net.indexed()
    graph = ReachabilityGraph(net=net)
    initial_vec = indexed.initial_vec
    initial = indexed.marking_of_vec(initial_vec)
    graph.nodes.append(ReachabilityNode(index=0, marking=initial))
    graph.index_of[initial] = 0
    index_of_vec = {initial_vec: 0}
    vecs = [initial_vec]
    enabled_sets: List[Optional[frozenset]] = [None]
    frontier = deque([0])
    transition_names = indexed.transition_names

    def expandable(marking: Marking) -> bool:
        if marking_filter is not None and not marking_filter(marking):
            return False
        if max_tokens_per_place is not None:
            if any(count > max_tokens_per_place for count in marking.values()):
                return False
        return True

    while frontier:
        index = frontier.popleft()
        node = graph.nodes[index]
        if not expandable(node.marking):
            continue
        vec = vecs[index]
        enabled = enabled_sets[index]
        if enabled is None:
            enabled = frozenset(indexed.enabled_vec(vec))
            enabled_sets[index] = enabled
        # ascending transition ID == ascending name: matches the facade order
        for tid in sorted(enabled):
            successor_vec = indexed.fire_vec(tid, vec)
            transition = transition_names[tid]
            existing = index_of_vec.get(successor_vec)
            if existing is not None:
                node.successors[transition] = existing
                continue
            if len(graph.nodes) >= max_nodes:
                graph.complete = False
                if raise_on_limit:
                    raise ReachabilityLimitExceeded(
                        f"reachability exploration exceeded {max_nodes} nodes"
                    )
                continue
            new_index = len(graph.nodes)
            successor = indexed.marking_of_vec(successor_vec)
            graph.nodes.append(ReachabilityNode(index=new_index, marking=successor))
            graph.index_of[successor] = new_index
            index_of_vec[successor_vec] = new_index
            vecs.append(successor_vec)
            enabled_sets.append(indexed.enabled_after(enabled, tid, successor_vec))
            node.successors[transition] = new_index
            frontier.append(new_index)
    return graph


def reachable_markings(
    net: PetriNet,
    *,
    max_nodes: int = 10000,
    max_tokens_per_place: Optional[int] = None,
) -> List[Marking]:
    """Convenience wrapper returning just the explored markings."""
    graph = build_reachability_graph(
        net, max_nodes=max_nodes, max_tokens_per_place=max_tokens_per_place
    )
    return graph.markings


def reachable_marking_matrix(
    net: PetriNet,
    *,
    max_nodes: int = 10000,
    max_tokens_per_place: Optional[int] = None,
):
    """Bounded reachable set as a dense NumPy matrix (one row per marking).

    Delegates to the batched backend (:mod:`repro.petrinet.batched`), which
    expands a whole BFS frontier per step; use this when the caller sweeps
    the reachable set with matrix queries (covering, bounds, irrelevance)
    rather than walking the successor structure edge by edge.
    """
    from repro.petrinet.batched import reachable_matrix

    return reachable_matrix(
        net, max_nodes=max_nodes, max_tokens_per_place=max_tokens_per_place
    )


def is_bounded(
    net: PetriNet,
    bound: int,
    *,
    max_nodes: int = 10000,
) -> bool:
    """Heuristic boundedness check: explore up to ``max_nodes`` markings and
    report whether any place ever exceeds ``bound`` tokens.

    A ``False`` result is definitive (a violating marking was found); a
    ``True`` result is only as strong as the exploration budget.  The sweep
    runs on the batched backend: one matrix of explored markings, one
    vectorized comparison against the bound.
    """
    matrix = reachable_marking_matrix(net, max_nodes=max_nodes)
    return not bool((matrix > bound).any())


def find_deadlocks(
    net: PetriNet,
    *,
    max_nodes: int = 10000,
    ignore_sources: bool = True,
) -> List[Marking]:
    """Markings (within the explored prefix) with no enabled transition.

    When ``ignore_sources`` is True, source transitions do not count as
    enabling the marking -- a marking whose only activity is an environment
    input is still a "system deadlock" from the scheduler's perspective.
    """
    graph = build_reachability_graph(net, max_nodes=max_nodes)
    deadlocks = []
    for node in graph.nodes:
        enabled = net.enabled_transitions(node.marking)
        if ignore_sources:
            enabled = [t for t in enabled if net.pre[t]]
        if not enabled:
            deadlocks.append(node.marking)
    return deadlocks
