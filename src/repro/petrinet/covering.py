"""Heuristic binate covering solver.

Section 5.5.2 reduces the choice of a *candidate invariant* (a subset of the
T-invariant base whose sum satisfies the necessary fireability condition of
Theorem 5.3) to a binate covering problem:

* columns correspond to the invariants of the base;
* each row encodes, for a pseudo-enabled ECS and an offending invariant ``b``
  (an invariant whose process appears but which contains no transition of the
  ECS), the clause "either do not pick ``b``, or also pick some invariant that
  contains a transition of the ECS".

A feasible solution is a subset of columns such that every row either has no
selected column with a ``0`` entry, or has at least one selected column with a
``1`` entry.  We implement the classical greedy feasible-solution heuristic
referenced in the paper ([10]): repeatedly satisfy violated rows by adding the
column that fixes the most of them, or by removing an offending column when no
addition helps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple


# Cell values: 1 means "selecting this column satisfies the row",
# 0 means "selecting this column violates the row unless some 1-column is
# also selected", None ('-') means "irrelevant".
Cell = Optional[int]


@dataclass
class BinateCoveringProblem:
    """A binate covering instance over named columns."""

    columns: List[str]
    rows: List[Dict[str, Cell]] = field(default_factory=list)
    # optional per-column weight (to be minimised); defaults to 1
    weights: Dict[str, int] = field(default_factory=dict)

    def add_row(self, entries: Dict[str, int]) -> None:
        """Add a row; ``entries`` maps column name -> 0 or 1."""
        unknown = set(entries) - set(self.columns)
        if unknown:
            raise ValueError(f"row refers to unknown columns: {sorted(unknown)}")
        self.rows.append(dict(entries))

    def weight(self, column: str) -> int:
        return self.weights.get(column, 1)

    def row_satisfied(self, row: Dict[str, Cell], selection: Set[str]) -> bool:
        """A row is satisfied if some selected column has a 1, or no selected
        column has a 0."""
        has_positive = any(row.get(col) == 1 for col in selection)
        if has_positive:
            return True
        has_negative = any(row.get(col) == 0 for col in selection)
        return not has_negative

    def is_feasible(self, selection: Set[str]) -> bool:
        return all(self.row_satisfied(row, selection) for row in self.rows)

    def violated_rows(self, selection: Set[str]) -> List[Dict[str, Cell]]:
        return [row for row in self.rows if not self.row_satisfied(row, selection)]


def solve_binate_covering(
    problem: BinateCoveringProblem,
    *,
    initial: Optional[Set[str]] = None,
    max_iterations: int = 1000,
) -> Optional[Set[str]]:
    """Find a feasible (heuristically small) solution, or ``None``.

    The search starts from ``initial`` (default: all columns selected, the
    most permissive candidate invariant) and alternates two repair moves on
    violated rows:

    1. add a column whose selection satisfies the largest number of currently
       violated rows without breaking satisfied unate rows;
    2. otherwise remove a selected column that appears with a ``0`` in some
       violated row.

    After reaching feasibility, a greedy minimisation pass removes columns
    whose removal keeps the solution feasible (preferring heavier columns).

    Internally the solver runs on dense integer bitmasks: columns get dense
    IDs, each row collapses to a ``(ones, zeros)`` mask pair, the selection is
    one integer, and "row satisfied" is two bitwise ANDs.
    """
    columns = list(problem.columns)
    column_id = {column: i for i, column in enumerate(columns)}
    ones_masks: List[int] = []
    zeros_masks: List[int] = []
    for row in problem.rows:
        ones = 0
        zeros = 0
        for column, value in row.items():
            if value == 1:
                ones |= 1 << column_id[column]
            elif value == 0:
                zeros |= 1 << column_id[column]
        ones_masks.append(ones)
        zeros_masks.append(zeros)
    n_rows = len(ones_masks)

    def mask_of(names: Set[str]) -> int:
        mask = 0
        for name in names:
            bit = column_id.get(name)
            if bit is not None:
                mask |= 1 << bit
        return mask

    def feasible(mask: int) -> bool:
        for i in range(n_rows):
            if not (mask & ones_masks[i]) and (mask & zeros_masks[i]):
                return False
        return True

    selection = (1 << len(columns)) - 1 if initial is None else mask_of(set(initial))

    for _ in range(max_iterations):
        violated = [
            i
            for i in range(n_rows)
            if not (selection & ones_masks[i]) and (selection & zeros_masks[i])
        ]
        if not violated:
            break
        # Move 1: try adding a column with a 1 in as many violated rows as possible.
        gain: Dict[str, int] = {}
        for i in violated:
            remaining = ones_masks[i] & ~selection
            while remaining:
                bit = remaining & -remaining
                column = columns[bit.bit_length() - 1]
                gain[column] = gain.get(column, 0) + 1
                remaining ^= bit
        if gain:
            best = max(sorted(gain), key=lambda c: (gain[c], -problem.weight(c)))
            selection |= 1 << column_id[best]
            continue
        # Move 2: remove an offending column (one with a 0 in a violated row).
        offenders: Dict[str, int] = {}
        for i in violated:
            remaining = zeros_masks[i] & selection
            while remaining:
                bit = remaining & -remaining
                column = columns[bit.bit_length() - 1]
                offenders[column] = offenders.get(column, 0) + 1
                remaining ^= bit
        if not offenders:
            return None
        worst = max(sorted(offenders), key=lambda c: (offenders[c], problem.weight(c)))
        selection &= ~(1 << column_id[worst])
    else:
        return None

    if not feasible(selection):
        return None

    # Minimisation pass: drop columns that are not needed.
    selected_names = [
        column for column in columns if selection & (1 << column_id[column])
    ]
    for column in sorted(selected_names, key=lambda c: -problem.weight(c)):
        candidate = selection & ~(1 << column_id[column])
        if feasible(candidate):
            selection = candidate
    return {column for column in columns if selection & (1 << column_id[column])}


def build_candidate_invariant_problem(
    invariant_names: Sequence[str],
    pseudo_enabled_rows: Sequence[Tuple[str, FrozenSet[str]]],
) -> BinateCoveringProblem:
    """Build the covering problem of Section 5.5.2.

    Parameters
    ----------
    invariant_names:
        Names (column ids) of the invariants in the base.
    pseudo_enabled_rows:
        One entry per (offending invariant, set of invariants containing a
        transition of the pseudo-enabled ECS).  The offending invariant gets a
        0 cell, the helpers get 1 cells.
    """
    problem = BinateCoveringProblem(columns=list(invariant_names))
    for offender, helpers in pseudo_enabled_rows:
        row: Dict[str, int] = {offender: 0}
        for helper in helpers:
            if helper != offender:
                row[helper] = 1
        problem.add_row(row)
    return problem
