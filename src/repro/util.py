"""Small shared utilities with no dependencies on the rest of the package."""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Generic, Iterator, List, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class BoundedLRU(Generic[K, V]):
    """A dictionary with least-recently-used eviction beyond ``capacity``.

    Backs the process-wide warm-start stores (materialised nets in the
    scheduling workers, T-invariant bases, serialized schedules): ``get``
    refreshes recency, ``put`` inserts and evicts the stalest entries.

    ``on_evict`` (optional) is called with ``(key, value)`` for every entry
    the store lets go of -- LRU displacement, overwrite of an existing key,
    and :meth:`clear` -- so values owning external resources (e.g. attached
    shared-memory views in a scheduling worker) can release them
    deterministically instead of waiting for garbage collection.  Exceptions
    raised by the callback propagate to the mutating call.

    All operations are thread-safe: the scheduling-as-a-service executor
    runs ``lookup``/``store`` from many threads against one shared L1, and
    an unlocked ``OrderedDict`` corrupts its recency order (or double-fires
    ``on_evict``, double-closing the owned resource) under that load.  A
    re-entrant lock serializes every mutation *including* the ``on_evict``
    callbacks, so each displaced value is released exactly once.
    """

    __slots__ = ("capacity", "_store", "on_evict", "_lock")

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[K, V], None]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.on_evict = on_evict
        self._store: "OrderedDict[K, V]" = OrderedDict()
        # re-entrant: an on_evict callback may legitimately touch the LRU
        # (e.g. to log its size) without deadlocking the mutating thread
        self._lock = threading.RLock()

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        with self._lock:
            if key in self._store:
                self._store.move_to_end(key)
                return self._store[key]
            return default

    def put(self, key: K, value: V) -> None:
        displaced: List[Tuple[K, V]] = []
        with self._lock:
            previous = self._store.get(key)
            self._store[key] = value
            self._store.move_to_end(key)
            if previous is not None and previous is not value:
                displaced.append((key, previous))
            while len(self._store) > self.capacity:
                displaced.append(self._store.popitem(last=False))
            if self.on_evict:
                # fire inside the lock: a concurrent put must not observe
                # (and re-evict) a value whose callback has not finished
                for evicted_key, evicted_value in displaced:
                    self.on_evict(evicted_key, evicted_value)

    def clear(self) -> None:
        with self._lock:
            if self.on_evict:
                while self._store:
                    key, value = self._store.popitem(last=False)
                    self.on_evict(key, value)
            self._store.clear()

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._store

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __iter__(self) -> Iterator[K]:
        with self._lock:
            return iter(list(self._store))
