"""Small shared utilities with no dependencies on the rest of the package."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Iterator, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class BoundedLRU(Generic[K, V]):
    """A dictionary with least-recently-used eviction beyond ``capacity``.

    Backs the process-wide warm-start stores (materialised nets in the
    scheduling workers, T-invariant bases, serialized schedules): ``get``
    refreshes recency, ``put`` inserts and evicts the stalest entries.

    ``on_evict`` (optional) is called with ``(key, value)`` for every entry
    the store lets go of -- LRU displacement, overwrite of an existing key,
    and :meth:`clear` -- so values owning external resources (e.g. attached
    shared-memory views in a scheduling worker) can release them
    deterministically instead of waiting for garbage collection.  Exceptions
    raised by the callback propagate to the mutating call.
    """

    __slots__ = ("capacity", "_store", "on_evict")

    def __init__(
        self,
        capacity: int,
        on_evict: Optional[Callable[[K, V], None]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.on_evict = on_evict
        self._store: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        value = self._store.get(key, default)
        if key in self._store:
            self._store.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        previous = self._store.get(key)
        self._store[key] = value
        self._store.move_to_end(key)
        if previous is not None and previous is not value and self.on_evict:
            self.on_evict(key, previous)
        while len(self._store) > self.capacity:
            evicted_key, evicted_value = self._store.popitem(last=False)
            if self.on_evict:
                self.on_evict(evicted_key, evicted_value)

    def clear(self) -> None:
        if self.on_evict:
            while self._store:
                key, value = self._store.popitem(last=False)
                self.on_evict(key, value)
        self._store.clear()

    def __contains__(self, key: K) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[K]:
        return iter(self._store)
