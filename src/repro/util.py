"""Small shared utilities with no dependencies on the rest of the package."""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class BoundedLRU(Generic[K, V]):
    """A dictionary with least-recently-used eviction beyond ``capacity``.

    Backs the process-wide warm-start stores (materialised nets in the
    scheduling workers, T-invariant bases, serialized schedules): ``get``
    refreshes recency, ``put`` inserts and evicts the stalest entries.
    """

    __slots__ = ("capacity", "_store")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._store: "OrderedDict[K, V]" = OrderedDict()

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        value = self._store.get(key, default)
        if key in self._store:
            self._store.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.capacity:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()

    def __contains__(self, key: K) -> bool:
        return key in self._store

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[K]:
        return iter(self._store)
