"""Spec-level shrinking of failing corpus cases.

The reducers transform the *pure-data* :class:`ScenarioSpec` -- never the
emitted FlowC text -- so every candidate is rebuilt through the exact same
pipeline the original travelled.  A reduction is accepted only when the
candidate still fails in the *same pipeline stage* as the original (a case
that started as a ``compare`` divergence must not "shrink" into a parse
error), which is the classic delta-debugging validity criterion.

The result records the accepted reduction steps alongside the final spec,
so a triage file is both a minimal reproducer and a history of how it was
reached from the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.corpus.differential import CaseOutcome, run_case
from repro.corpus.topologies import (
    EdgeSpec,
    ProcessSpec,
    ScenarioSpec,
    SpecError,
    SubsystemSpec,
    check_spec,
)

Runner = Callable[[ScenarioSpec], CaseOutcome]


# ---------------------------------------------------------------------------
# reduction candidates
# ---------------------------------------------------------------------------


def _keep_single_subsystem(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    if len(spec.subsystems) <= 1:
        return
    for index, sub in enumerate(spec.subsystems):
        yield (
            f"keep-subsystem[{sub.trigger}]",
            replace(spec, subsystems=(sub,)),
        )


def _drop_sink_process(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    """Remove one leaf process; its upstream becomes the new sink."""
    for sindex, sub in enumerate(spec.subsystems):
        forward_sources = {e.source for e in sub.edges if not e.feedback}
        for proc in sub.processes:
            if proc.name == sub.trigger or proc.name in forward_sources:
                continue
            processes = tuple(p for p in sub.processes if p.name != proc.name)
            edges = tuple(
                e for e in sub.edges if proc.name not in (e.source, e.target)
            )
            subsystems = (
                spec.subsystems[:sindex]
                + (replace(sub, processes=processes, edges=edges),)
                + spec.subsystems[sindex + 1 :]
            )
            yield (f"drop-process[{proc.name}]", replace(spec, subsystems=subsystems))


def _truncate_stimulus(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    if spec.stimulus_length > 1:
        shorter = max(1, spec.stimulus_length // 2)
        yield (f"stimulus[{shorter}]", replace(spec, stimulus_length=shorter))


def _flatten_rates(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    """Repetitions, items and bursts all to 1 (keeps arm restrictions)."""
    if all(
        proc.repetitions == 1
        for sub in spec.subsystems
        for proc in sub.processes
    ) and all(
        edge.items == 1 and edge.write_burst == 1 and edge.read_burst == 1
        for sub in spec.subsystems
        for edge in sub.edges
    ):
        return
    subsystems = tuple(
        replace(
            sub,
            processes=tuple(replace(p, repetitions=1) for p in sub.processes),
            edges=tuple(
                replace(e, items=1, write_burst=1, read_burst=1) for e in sub.edges
            ),
        )
        for sub in spec.subsystems
    )
    yield ("flatten-rates", replace(spec, subsystems=subsystems))


def _disable_branches(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    """Drop data-dependent branches where no arm-restricted edge needs them."""
    changed = False
    subsystems = []
    for sub in spec.subsystems:
        armed = {e.source for e in sub.edges if e.arm is not None}
        processes = []
        for proc in sub.processes:
            if proc.branch and proc.name not in armed:
                processes.append(replace(proc, branch=False))
                changed = True
            else:
                processes.append(proc)
        subsystems.append(replace(sub, processes=tuple(processes)))
    if changed:
        yield ("disable-branches", replace(spec, subsystems=tuple(subsystems)))


def _drop_bounds(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    if all(e.bound is None for sub in spec.subsystems for e in sub.edges):
        return
    subsystems = tuple(
        replace(sub, edges=tuple(replace(e, bound=None) for e in sub.edges))
        for sub in spec.subsystems
    )
    yield ("drop-bounds", replace(spec, subsystems=subsystems))


def _drop_wcet(spec: ScenarioSpec) -> Iterator[Tuple[str, ScenarioSpec]]:
    """Strip WCET annotations; only the cost objective's timing terms care."""
    if all(p.wcet is None for sub in spec.subsystems for p in sub.processes):
        return
    subsystems = tuple(
        replace(sub, processes=tuple(replace(p, wcet=None) for p in sub.processes))
        for sub in spec.subsystems
    )
    yield ("drop-wcet", replace(spec, subsystems=subsystems))


#: Reduction passes in the order tried each round: structural reductions
#: first (they shrink fastest), cosmetic ones last.
REDUCTIONS: Tuple[Callable[[ScenarioSpec], Iterator[Tuple[str, ScenarioSpec]]], ...] = (
    _keep_single_subsystem,
    _drop_sink_process,
    _flatten_rates,
    _disable_branches,
    _drop_bounds,
    _drop_wcet,
    _truncate_stimulus,
)


# ---------------------------------------------------------------------------
# the shrink loop
# ---------------------------------------------------------------------------


@dataclass
class ShrinkResult:
    """A minimal reproducer plus the path that led to it."""

    original: ScenarioSpec
    spec: ScenarioSpec
    outcome: CaseOutcome
    steps: List[str] = field(default_factory=list)
    attempts: int = 0

    @property
    def reduced(self) -> bool:
        return bool(self.steps)

    def to_dict(self) -> Dict[str, object]:
        return {
            "steps": self.steps,
            "attempts": self.attempts,
            "original_processes": self.original.size(),
            "final_processes": self.spec.size(),
        }


def shrink_case(
    spec: ScenarioSpec,
    failure: CaseOutcome,
    *,
    run: Runner = run_case,
    max_attempts: int = 200,
) -> ShrinkResult:
    """Greedily reduce ``spec`` while it keeps failing in ``failure.stage``.

    Runs reduction passes to a fixed point: each round re-tries every pass
    against the current best spec and restarts whenever one is accepted.
    ``max_attempts`` bounds the number of candidate executions, so shrinking
    a pathological case degrades to "less reduced", never to "hangs CI".
    """
    if failure.passed or failure.stage is None:
        raise ValueError("shrink_case needs a failing outcome with a stage")
    best_spec, best_outcome = spec, failure
    steps: List[str] = []
    attempts = 0
    improved = True
    while improved and attempts < max_attempts:
        improved = False
        for reduction in REDUCTIONS:
            for step, candidate in reduction(best_spec):
                if attempts >= max_attempts:
                    break
                try:
                    check_spec(candidate)
                except SpecError:
                    continue
                attempts += 1
                outcome = run(candidate)
                if not outcome.passed and outcome.stage == failure.stage:
                    best_spec, best_outcome = candidate, outcome
                    steps.append(step)
                    improved = True
                    break
            if improved:
                break
    return ShrinkResult(
        original=spec,
        spec=best_spec,
        outcome=best_outcome,
        steps=steps,
        attempts=attempts,
    )
