"""Whole-pipeline differential execution of corpus cases.

One corpus case travels the *entire* toolchain: FlowC parse -> compile ->
link -> EP schedule on all three backends (byte-identical fingerprints) ->
canonical-serialization round-trip -> codegen task synthesis -> the two
simulators of :mod:`repro.runtime.simulation`.  The property asserted at the
end is the paper's actual claim: the synthesized quasi-static tasks are
*observationally equivalent* to the original concurrent specification --
normalized I/O traces per environment channel match under a shared input
script, not merely "a schedule was found".

Failures carry the pipeline stage they died in (:data:`STAGES`), which is
what the shrinker in :mod:`repro.corpus.shrink` preserves while reducing a
case, and what triage files report.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from dataclasses import fields as dataclass_fields
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.corpus.topologies import CorpusCase, ScenarioSpec, build_case
from repro.flowc.linker import LinkedSystem, link
from repro.runtime.channels import TraceRecorder, TracingSink
from repro.runtime.simulation import MultiTaskSimulation, SingleTaskSimulation
from repro.scheduling.ep import SchedulerOptions, find_all_schedules
from repro.scheduling.objective import SingleTaskPrediction, predict_single_task
from repro.scheduling.schedule import Schedule
from repro.scheduling.serialize import schedule_fingerprint, verify_roundtrip

#: The EP backends every case must agree across.
BACKENDS: Tuple[str, ...] = ("scalar", "batched", "kernel")

#: EP node budget per search.  Every schedulable corpus case closes in a few
#: hundred nodes (the smoke sweep's worst case is ~650), so this is ~30x
#: headroom -- while keeping the expected-unschedulable cases, whose searches
#: otherwise exhaust a >100k-node space before failing, cheap enough for CI.
MAX_NODES = 20_000

#: Pipeline stages in order; failures name the first stage that broke.
STAGES: Tuple[str, ...] = (
    "build",      # FlowC parse / compile / link / spec validation
    "schedule",   # EP search, cross-backend identity, serialization round-trip
    "codegen",    # thread extraction / segment synthesis / task construction
    "simulate",   # either simulator raised while executing
    "predict",    # static cost prediction disagrees with the simulated run
    "compare",    # trace / output / occupancy disagreement
)

#: Relative tolerance on predicted-vs-simulated cycle totals when the static
#: predictor had to speculate (``exact_operations=False``).  When both exact
#: flags hold, the match must be *exact* -- the predictor mirrors the
#: interpreter's counting rules statement-for-statement, so any drift there
#: is a real bug, not noise.
PREDICT_CYCLE_TOLERANCE = 0.05

Trace = Dict[str, List[Tuple[Any, ...]]]


# ---------------------------------------------------------------------------
# trace normalization
# ---------------------------------------------------------------------------


def normalize_trace(trace: Union[TraceRecorder, Mapping[str, Sequence[Sequence[Any]]]]) -> Trace:
    """The normal form compared across implementations.

    Per-channel sequences of write events (each event the tuple of values of
    one ``WRITE_DATA``).  Global interleaving across *independent* channels
    is deliberately erased -- the round-robin baseline and the synthesized
    task legally emit to unrelated channels in different global orders --
    while the order of events *within* one channel is preserved and
    significant.
    """
    if isinstance(trace, TraceRecorder):
        return trace.by_channel()
    return {
        port: [tuple(event) for event in events]
        for port, events in trace.items()
    }


def traces_equivalent(
    left: Union[TraceRecorder, Mapping[str, Sequence[Sequence[Any]]]],
    right: Union[TraceRecorder, Mapping[str, Sequence[Sequence[Any]]]],
) -> bool:
    """True when both traces normalize to the same per-channel sequences."""
    return normalize_trace(left) == normalize_trace(right)


def trace_diff(
    left: Union[TraceRecorder, Mapping[str, Sequence[Sequence[Any]]]],
    right: Union[TraceRecorder, Mapping[str, Sequence[Sequence[Any]]]],
) -> Optional[str]:
    """Human-readable description of the first divergence, or None."""
    a, b = normalize_trace(left), normalize_trace(right)
    if a == b:
        return None
    for port in sorted(set(a) | set(b)):
        if port not in a:
            return f"channel {port!r}: present only on the right"
        if port not in b:
            return f"channel {port!r}: present only on the left"
        if a[port] == b[port]:
            continue
        for index, (eva, evb) in enumerate(zip(a[port], b[port])):
            if eva != evb:
                return f"channel {port!r} event {index}: {eva!r} != {evb!r}"
        return f"channel {port!r}: {len(a[port])} vs {len(b[port])} events"
    return "traces differ"  # pragma: no cover - defensive


# ---------------------------------------------------------------------------
# predicted-vs-simulated cost
# ---------------------------------------------------------------------------


def _counter_mismatches(label: str, predicted, simulated) -> List[str]:
    """Per-field diffs between two counter dataclasses of the same type."""
    return [
        f"{label}.{f.name}: predicted {getattr(predicted, f.name)} "
        f"!= simulated {getattr(simulated, f.name)}"
        for f in dataclass_fields(predicted)
        if getattr(predicted, f.name) != getattr(simulated, f.name)
    ]


def prediction_problems(prediction: SingleTaskPrediction, simulated) -> List[str]:
    """Disagreements between the static cost prediction and a simulated run.

    Context-switch / dispatch / step counts and (when the predictor did not
    have to speculate) every operation and communication counter must match
    the :class:`~repro.runtime.simulation.SingleTaskSimulation` result
    *exactly*; pfc cycle totals must match exactly under both exact flags and
    within :data:`PREDICT_CYCLE_TOLERANCE` otherwise.
    """
    problems: List[str] = []
    for name in (
        "context_switches",
        "scheduler_decisions",
        "isr_dispatches",
        "state_updates",
        "transitions_executed",
    ):
        if getattr(prediction, name) != getattr(simulated, name):
            problems.append(
                f"{name}: predicted {getattr(prediction, name)} "
                f"!= simulated {getattr(simulated, name)}"
            )
    if prediction.exact_communication:
        problems.extend(
            _counter_mismatches(
                "communication", prediction.communication, simulated.communication
            )
        )
    if prediction.exact_operations:
        problems.extend(
            _counter_mismatches("operations", prediction.operations, simulated.operations)
        )
    predicted_cycles = prediction.cycles("pfc")
    simulated_cycles = simulated.cycles("pfc")
    if prediction.exact_operations and prediction.exact_communication:
        if predicted_cycles != simulated_cycles:
            problems.append(
                f"cycles: predicted {predicted_cycles} != simulated "
                f"{simulated_cycles} despite exact prediction"
            )
    elif simulated_cycles and (
        abs(predicted_cycles - simulated_cycles)
        > PREDICT_CYCLE_TOLERANCE * simulated_cycles
    ):
        problems.append(
            f"cycles: predicted {predicted_cycles} outside "
            f"{PREDICT_CYCLE_TOLERANCE:.0%} of simulated {simulated_cycles}"
        )
    return problems


# ---------------------------------------------------------------------------
# case execution
# ---------------------------------------------------------------------------


@dataclass
class CaseOutcome:
    """Result of pushing one case through the pipeline."""

    name: str
    family: str
    seed: int
    passed: bool
    schedulable: bool
    stage: Optional[str] = None
    message: str = ""
    elapsed_seconds: float = 0.0
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "family": self.family,
            "seed": self.seed,
            "passed": self.passed,
            "schedulable": self.schedulable,
            "stage": self.stage,
            "message": self.message,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "detail": self.detail,
        }


def _fail(
    spec: ScenarioSpec,
    stage: str,
    message: str,
    started: float,
    *,
    schedulable: bool = False,
    detail: Optional[Dict[str, Any]] = None,
) -> CaseOutcome:
    return CaseOutcome(
        name=spec.label(),
        family=spec.family,
        seed=spec.seed,
        passed=False,
        schedulable=schedulable,
        stage=stage,
        message=message,
        elapsed_seconds=time.perf_counter() - started,
        detail=detail or {},
    )


def _schedule_all_backends(
    linked: LinkedSystem,
    sources: Sequence[str],
    spec: ScenarioSpec,
    started: float,
) -> Union[CaseOutcome, Tuple[Dict[str, Schedule], Dict[str, bool]]]:
    """EP search on every backend; returns schedules or a failure outcome.

    Pins two invariants beyond "found a schedule": per-source success is
    identical across backends, and successful schedules are byte-identical
    (fingerprint equality), extending the scheduler's three-backend
    differential fuzz to generated whole-system nets.
    """
    per_backend: Dict[str, Dict[str, Any]] = {}
    for backend in BACKENDS:
        per_backend[backend] = find_all_schedules(
            linked.net,
            options=SchedulerOptions(backend=backend, max_nodes=MAX_NODES),
            sources=list(sources),
            raise_on_failure=False,
        )
    reference = per_backend[BACKENDS[0]]
    success = {source: bool(reference[source].success) for source in sources}
    for backend in BACKENDS[1:]:
        other = {s: bool(per_backend[backend][s].success) for s in sources}
        if other != success:
            return _fail(
                spec,
                "schedule",
                f"backends disagree on schedulability: scalar={success} {backend}={other}",
                started,
            )
    fingerprints: Dict[str, str] = {}
    schedules: Dict[str, Schedule] = {}
    for source in sources:
        if not success[source]:
            continue
        prints = {
            backend: schedule_fingerprint(per_backend[backend][source].schedule)
            for backend in BACKENDS
        }
        if len(set(prints.values())) != 1:
            return _fail(
                spec,
                "schedule",
                f"backend schedules diverge for {source}: {prints}",
                started,
            )
        schedule = reference[source].schedule
        try:
            fingerprints[source] = verify_roundtrip(schedule)
        except ValueError as error:
            return _fail(spec, "schedule", str(error), started)
        schedules[source] = schedule
    return schedules, success


def run_case(spec: ScenarioSpec, *, max_rounds: int = 1_000_000) -> CaseOutcome:
    """Run one scenario spec through the whole pipeline."""
    started = time.perf_counter()
    try:
        case: CorpusCase = build_case(spec)
        linked = link(case.network)
    except Exception as error:  # noqa: BLE001 - any build crash is the finding
        return _fail(spec, "build", f"{type(error).__name__}: {error}", started)

    manifest = case.manifest
    sources = manifest["source_transitions"]
    outcome = _schedule_all_backends(linked, sources, spec, started)
    if isinstance(outcome, CaseOutcome):
        return outcome
    schedules, success = outcome

    expect_schedulable = bool(manifest["expected_schedulable"])
    all_schedulable = all(success.values())
    if all_schedulable != expect_schedulable:
        return _fail(
            spec,
            "schedule",
            f"expected schedulable={expect_schedulable} but per-source success={success}",
            started,
            schedulable=all_schedulable,
        )
    if not expect_schedulable:
        # expected-failure case: all backends agreed it has no schedule, done
        return CaseOutcome(
            name=spec.label(),
            family=spec.family,
            seed=spec.seed,
            passed=True,
            schedulable=False,
            elapsed_seconds=time.perf_counter() - started,
            detail={"per_source_success": success},
        )

    stimulus = manifest["stimulus"]
    try:
        single = SingleTaskSimulation(linked, schedules=schedules)
    except Exception as error:  # noqa: BLE001
        return _fail(
            spec, "codegen", f"{type(error).__name__}: {error}", started, schedulable=True
        )

    multi_recorder, single_recorder = TraceRecorder(), TraceRecorder()
    try:
        multi = MultiTaskSimulation(linked, stimulus=stimulus)
        for port in manifest["outputs"]:
            multi.replace_sink(port, TracingSink(port, multi_recorder))
            single.replace_sink(port, TracingSink(port, single_recorder))
        multi_result = multi.run(max_rounds=max_rounds)
        single_result = single.run(stimulus)
    except Exception as error:  # noqa: BLE001
        return _fail(
            spec, "simulate", f"{type(error).__name__}: {error}", started, schedulable=True
        )

    # -- predicted vs simulated cost (the static objective's ground truth) --
    try:
        prediction = predict_single_task(linked, schedules, stimulus)
        predict_problems = prediction_problems(prediction, single_result)
    except Exception as error:  # noqa: BLE001
        return _fail(
            spec, "predict", f"{type(error).__name__}: {error}", started, schedulable=True
        )
    if predict_problems:
        return _fail(
            spec,
            "predict",
            "; ".join(predict_problems),
            started,
            schedulable=True,
            detail={
                "exact_operations": prediction.exact_operations,
                "exact_communication": prediction.exact_communication,
            },
        )

    expected_events = sum(len(values) for values in stimulus.values())
    problems: List[str] = []
    diff = trace_diff(multi_recorder, single_recorder)
    if diff is not None:
        problems.append(f"trace divergence: {diff}")
    if multi_result.outputs.by_port != single_result.outputs.by_port:
        problems.append("output values diverge between implementations")
    if multi_result.events_served != expected_events:
        problems.append(
            f"multi-task served {multi_result.events_served}/{expected_events} events"
        )
    if single_result.events_served != expected_events:
        problems.append(
            f"single-task served {single_result.events_served}/{expected_events} events"
        )
    # Proposition 4.2: the schedule returns to its initial marking after each
    # served event, so synthesized-task channels never exceed their per-event
    # token count.  The round-robin baseline gets the whole stimulus up front
    # and may legally pipeline events, so the bound applies to it per run.
    expected_items = manifest["expected_channel_items"]
    for channel, occupancy in sorted(single_result.channel_max_occupancy.items()):
        bound = expected_items.get(channel)
        if bound is not None and occupancy > bound:
            problems.append(
                f"single-task channel {channel!r} reached {occupancy} items "
                f"(> {bound} per event)"
            )
    for channel, occupancy in sorted(multi_result.channel_max_occupancy.items()):
        per_event = expected_items.get(channel)
        if per_event is not None and occupancy > per_event * expected_events:
            problems.append(
                f"multi-task channel {channel!r} reached {occupancy} items "
                f"(> {per_event} per event x {expected_events} events)"
            )
    if problems:
        return _fail(
            spec,
            "compare",
            "; ".join(problems),
            started,
            schedulable=True,
            detail={
                "multi_outputs": multi_result.outputs.by_port,
                "single_outputs": single_result.outputs.by_port,
            },
        )
    return CaseOutcome(
        name=spec.label(),
        family=spec.family,
        seed=spec.seed,
        passed=True,
        schedulable=True,
        elapsed_seconds=time.perf_counter() - started,
        detail={
            "events": expected_events,
            "outputs": {port: len(v) for port, v in single_result.outputs.by_port.items()},
        },
    )


# ---------------------------------------------------------------------------
# corpus-level run
# ---------------------------------------------------------------------------


@dataclass
class CorpusReport:
    """Aggregate of one corpus sweep."""

    outcomes: List[CaseOutcome]
    elapsed_seconds: float

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def passed(self) -> int:
        return sum(1 for outcome in self.outcomes if outcome.passed)

    @property
    def failures(self) -> List[CaseOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.passed]

    @property
    def pass_rate(self) -> float:
        return self.passed / self.total if self.total else 1.0

    def by_family(self) -> Dict[str, Tuple[int, int]]:
        """family -> (passed, total)."""
        table: Dict[str, Tuple[int, int]] = {}
        for outcome in self.outcomes:
            passed, total = table.get(outcome.family, (0, 0))
            table[outcome.family] = (passed + (1 if outcome.passed else 0), total + 1)
        return table

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cases": self.total,
            "passed": self.passed,
            "pass_rate": round(self.pass_rate, 4),
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "by_family": {
                family: {"passed": passed, "cases": total}
                for family, (passed, total) in sorted(self.by_family().items())
            },
            "failures": [outcome.to_dict() for outcome in self.failures],
        }


def run_corpus(
    specs: Sequence[ScenarioSpec],
    *,
    progress: Optional[Any] = None,
) -> CorpusReport:
    """Run every spec through :func:`run_case`; ``progress`` is an optional
    callable invoked with each finished :class:`CaseOutcome`."""
    started = time.perf_counter()
    outcomes: List[CaseOutcome] = []
    for spec in specs:
        outcome = run_case(spec)
        outcomes.append(outcome)
        if progress is not None:
            progress(outcome)
    return CorpusReport(outcomes=outcomes, elapsed_seconds=time.perf_counter() - started)
