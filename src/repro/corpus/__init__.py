"""Seeded scenario corpus with whole-pipeline differential testing.

The corpus layer closes the loop the paper draws: not only must the EP
search find a schedule, the synthesized task code must *behave identically*
to the original concurrent specification.  Every generated case travels
FlowC parse -> compile -> link -> EP schedule (all three backends) ->
codegen -> both simulators, and the per-channel I/O traces are compared.

* :mod:`repro.corpus.topologies` -- pure-data scenario specs and their
  FlowC / netlist / manifest realisations.
* :mod:`repro.corpus.generator` -- seeded generation over the topology
  families (chain, tree, fork-join, layered, diamond, feedback,
  multi-source).
* :mod:`repro.corpus.differential` -- the staged pipeline runner and trace
  normalization / equivalence.
* :mod:`repro.corpus.shrink` -- delta-debugging of failing specs to minimal
  reproducers.
* ``python -m repro.corpus`` -- the CLI (:mod:`repro.corpus.cli`).
"""

from repro.corpus.differential import (
    BACKENDS,
    STAGES,
    CaseOutcome,
    CorpusReport,
    normalize_trace,
    run_case,
    run_corpus,
    trace_diff,
    traces_equivalent,
)
from repro.corpus.generator import (
    DEFAULT_SEED,
    FAMILIES,
    generate_corpus,
    generate_spec,
    make_unschedulable_spec,
)
from repro.corpus.shrink import ShrinkResult, shrink_case
from repro.corpus.topologies import (
    CorpusCase,
    EdgeSpec,
    ProcessSpec,
    ScenarioSpec,
    SpecError,
    SubsystemSpec,
    build_case,
    build_manifest,
    build_network,
    check_spec,
    emit_program,
    spec_from_dict,
    spec_to_dict,
    stimulus_for,
)

__all__ = [
    "BACKENDS",
    "STAGES",
    "CaseOutcome",
    "CorpusCase",
    "CorpusReport",
    "DEFAULT_SEED",
    "EdgeSpec",
    "FAMILIES",
    "ProcessSpec",
    "ScenarioSpec",
    "ShrinkResult",
    "SpecError",
    "SubsystemSpec",
    "build_case",
    "build_manifest",
    "build_network",
    "check_spec",
    "emit_program",
    "generate_corpus",
    "generate_spec",
    "make_unschedulable_spec",
    "normalize_trace",
    "run_case",
    "run_corpus",
    "shrink_case",
    "spec_from_dict",
    "spec_to_dict",
    "stimulus_for",
    "trace_diff",
    "traces_equivalent",
]
