"""Seeded scenario specifications and their FlowC realisations.

A :class:`ScenarioSpec` is a *pure-data* description of one corpus case: a
set of subsystems (each a DAG of FlowC processes rooted at one uncontrollable
trigger) with per-channel token rates, burst sizes, optional data-dependent
branches and optional declared channel bounds.  Everything downstream -- the
FlowC program text, the :class:`~repro.flowc.netlist.Network`, the stimulus
script and the expected-properties manifest -- is derived deterministically
from the spec alone, with no hidden RNG state.  That is what makes corpus
cases reproducible (same spec => byte-identical program) and *shrinkable*
(the reducers in :mod:`repro.corpus.shrink` transform specs, not text).

Token-rate consistency is maintained by construction: every channel carries
``items`` tokens per environment event, the producer fires ``repetitions``
times per event and therefore writes ``items / repetitions`` tokens per
firing (and symmetrically for the consumer), so every case returns to its
initial marking after each event -- the paper's schedulability precondition.
The deliberate exception is :attr:`EdgeSpec.arm`: an arm-restricted channel
is written on only one arm of its producer's data-dependent branch, so a
consumer joining both arm channels starves on every run in which the
environment keeps resolving the choice the other way -- the paper's
Figure 4 non-schedulable situation, used for expected-failure cases.

Emission note: generated bodies are *straight-line* (reads and writes are
unrolled at emission time rather than wrapped in constant-bound ``for``
loops).  The leader rules of Section 3.1 make every ``READ_DATA`` and every
statement after a ``WRITE_DATA`` a leader, so straight-line bodies compile to
nets whose transitions each carry one port operation -- the granularity every
hand-written example in this repository exhibits.  Loop-shaped emission would
instead surround each port operation with code-only transitions, roughly
tripling every control cycle and, with it, the depth of the EP search.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass, field, replace
from math import gcd
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.flowc.netlist import Network

#: Modulus used by generated compute phases; prime so value streams mix well.
_ACC_MOD = 9973
#: Modulus used by generated data values (fits the paper's byte-ish data).
_VAL_MOD = 251


@dataclass(frozen=True)
class ProcessSpec:
    """One FlowC process of a scenario.

    ``repetitions`` is the number of main-loop iterations the process runs
    per environment event (its entry in the repetition vector).  ``branch``
    wraps the write phase in a data-dependent ``if``/``else`` whose arms
    write the same token counts but different values (unless an outgoing
    edge is arm-restricted, see :attr:`EdgeSpec.arm`).  ``wcet`` emits a
    ``WCET(n)`` timing annotation on the process header, feeding the cost
    objective's latency/jitter terms; ``None`` leaves the process
    unannotated (and the program text byte-identical to pre-WCET corpora).
    """

    name: str
    repetitions: int = 1
    branch: bool = False
    const_a: int = 3
    const_b: int = 7
    wcet: Optional[int] = None


@dataclass(frozen=True)
class EdgeSpec:
    """One point-to-point channel between two processes of a subsystem.

    ``items`` tokens flow per environment event; ``write_burst`` /
    ``read_burst`` are the tokens moved per port operation (arc weights).
    ``feedback`` marks a backward acknowledge channel: the producer writes
    it before its forward writes and the consumer reads it after them (the
    Section 7.2 false-path shape).  ``bound`` is a declared channel bound
    carried into the linked net (None leaves the channel unbounded).
    ``arm`` restricts the writes to one arm of the producer's branch
    (requires ``branch=True`` on the producer); such channels deliberately
    break the token balance, producing expected-unschedulable cases.
    """

    name: str
    source: str
    target: str
    items: int = 1
    write_burst: int = 1
    read_burst: int = 1
    bound: Optional[int] = None
    feedback: bool = False
    arm: Optional[int] = None


@dataclass(frozen=True)
class SubsystemSpec:
    """A connected process DAG served by one uncontrollable trigger."""

    trigger: str
    processes: Tuple[ProcessSpec, ...]
    edges: Tuple[EdgeSpec, ...] = ()


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete corpus case: subsystems plus the stimulus length."""

    seed: int
    family: str
    subsystems: Tuple[SubsystemSpec, ...]
    stimulus_length: int = 2
    name: str = ""

    def size(self) -> int:
        """Number of processes -- the size metric reported by the shrinker."""
        return sum(len(sub.processes) for sub in self.subsystems)

    def label(self) -> str:
        return self.name or f"{self.family}_{self.seed}"


class SpecError(ValueError):
    """Raised when a scenario spec is internally inconsistent."""


# ---------------------------------------------------------------------------
# validation
# ---------------------------------------------------------------------------


def check_spec(spec: ScenarioSpec) -> None:
    """Validate rate consistency and topology of ``spec`` (raises SpecError)."""
    if not spec.subsystems:
        raise SpecError("a scenario needs at least one subsystem")
    if spec.stimulus_length < 1:
        raise SpecError("stimulus_length must be >= 1")
    seen: set[str] = set()
    for sub in spec.subsystems:
        names = [proc.name for proc in sub.processes]
        if len(set(names)) != len(names):
            raise SpecError(f"duplicate process names in subsystem {sub.trigger!r}")
        overlap = seen & set(names)
        if overlap:
            raise SpecError(f"process names shared across subsystems: {sorted(overlap)}")
        seen |= set(names)
        procs = {proc.name: proc for proc in sub.processes}
        if sub.trigger not in procs:
            raise SpecError(f"trigger process {sub.trigger!r} is not in the subsystem")
        if procs[sub.trigger].repetitions != 1:
            raise SpecError(f"trigger process {sub.trigger!r} must have repetitions == 1")
        for proc in sub.processes:
            if proc.wcet is not None and proc.wcet < 0:
                raise SpecError(f"process {proc.name!r}: wcet must be non-negative")
        edge_names = [edge.name for edge in sub.edges]
        if len(set(edge_names)) != len(edge_names):
            raise SpecError(f"duplicate edge names in subsystem {sub.trigger!r}")
        for edge in sub.edges:
            for endpoint in (edge.source, edge.target):
                if endpoint not in procs:
                    raise SpecError(f"edge {edge.name!r} references unknown process {endpoint!r}")
            if edge.source == edge.target:
                raise SpecError(f"edge {edge.name!r} is a self loop")
            if edge.arm is not None:
                if edge.arm not in (0, 1):
                    raise SpecError(f"edge {edge.name!r}: arm must be 0, 1 or None")
                if not procs[edge.source].branch:
                    raise SpecError(
                        f"edge {edge.name!r} is arm-restricted but {edge.source!r} has no branch"
                    )
                if edge.feedback:
                    raise SpecError(f"edge {edge.name!r}: feedback edges cannot be arm-restricted")
            for role, burst, rep in (
                ("write", edge.write_burst, procs[edge.source].repetitions),
                ("read", edge.read_burst, procs[edge.target].repetitions),
            ):
                per_firing, remainder = divmod(edge.items, rep)
                if remainder:
                    raise SpecError(
                        f"edge {edge.name!r}: items={edge.items} not divisible by "
                        f"{role}r repetitions {rep}"
                    )
                if per_firing % burst:
                    raise SpecError(
                        f"edge {edge.name!r}: {role}_burst={burst} does not divide "
                        f"the {per_firing} items moved per firing"
                    )
        # every non-trigger process must be reachable from the trigger along
        # forward edges, otherwise it would run unboundedly often
        forward = [edge for edge in sub.edges if not edge.feedback]
        reachable = {sub.trigger}
        frontier = [sub.trigger]
        while frontier:
            current = frontier.pop()
            for edge in forward:
                if edge.source == current and edge.target not in reachable:
                    reachable.add(edge.target)
                    frontier.append(edge.target)
        unreachable = set(procs) - reachable
        if unreachable:
            raise SpecError(
                f"processes unreachable from trigger {sub.trigger!r}: {sorted(unreachable)}"
            )


# ---------------------------------------------------------------------------
# derived wiring
# ---------------------------------------------------------------------------


def _in_edges(sub: SubsystemSpec, proc: str) -> List[EdgeSpec]:
    return [edge for edge in sub.edges if edge.target == proc]


def _out_edges(sub: SubsystemSpec, proc: str) -> List[EdgeSpec]:
    return [edge for edge in sub.edges if edge.source == proc]


def trigger_port(proc: str) -> str:
    return f"ev_{proc}"


def output_port(proc: str) -> str:
    return f"out_{proc}"


def _sink_processes(sub: SubsystemSpec) -> List[str]:
    """Processes with no forward out-edge; they write an environment output."""
    forward_sources = {edge.source for edge in sub.edges if not edge.feedback}
    return [proc.name for proc in sub.processes if proc.name not in forward_sources]


def _max_burst(sub: SubsystemSpec, proc: str) -> int:
    bursts = [1]
    for edge in _in_edges(sub, proc):
        bursts.append(edge.read_burst)
    for edge in _out_edges(sub, proc):
        bursts.append(edge.write_burst)
    return max(bursts)


# ---------------------------------------------------------------------------
# FlowC emission (straight-line, see the module docstring)
# ---------------------------------------------------------------------------


def _emit_read(
    lines: List[str],
    edge: EdgeSpec,
    per_firing: int,
    const_a: int,
    *,
    first: bool,
    const_b: int,
    indent: str = "        ",
) -> bool:
    """Unrolled reads of one in-edge; returns False once ``acc`` is seeded."""
    port = f"i_{edge.name}"
    if edge.read_burst == 1:
        for _ in range(per_firing):
            lines.append(f"{indent}READ_DATA({port}, &v, 1);")
            if first:
                lines.append(f"{indent}acc = ({const_b} + v) % {_ACC_MOD};")
                first = False
            else:
                lines.append(f"{indent}acc = (acc * {const_a} + v) % {_ACC_MOD};")
    else:
        for _ in range(per_firing // edge.read_burst):
            lines.append(f"{indent}READ_DATA({port}, buf, {edge.read_burst});")
            for j in range(edge.read_burst):
                if first:
                    lines.append(f"{indent}acc = ({const_b} + buf[{j}]) % {_ACC_MOD};")
                    first = False
                else:
                    lines.append(f"{indent}acc = (acc * {const_a} + buf[{j}]) % {_ACC_MOD};")
    return first


def _emit_write(
    lines: List[str],
    port: str,
    count: int,
    burst: int,
    mult: int,
    add: int,
    indent: str,
) -> None:
    """Unrolled writes of ``count`` items in chunks of ``burst``."""
    if burst == 1:
        for index in range(count):
            lines.append(
                f"{indent}WRITE_DATA({port}, (acc * {mult} + {index} * {add}) % {_VAL_MOD}, 1);"
            )
    else:
        for call in range(count // burst):
            for j in range(burst):
                lines.append(f"{indent}buf[{j}] = (acc * {mult} + {call * burst + j} * {add}) % {_VAL_MOD};")
            lines.append(f"{indent}WRITE_DATA({port}, buf, {burst});")


def _emit_write_phase(
    lines: List[str],
    sub: SubsystemSpec,
    proc: ProcessSpec,
    *,
    arm: int,
    indent: str,
) -> None:
    """All forward writes of ``proc`` (channel writes + environment output).

    ``arm`` selects the value constants so the two branch arms compute
    different data; arm-restricted edges are emitted on their arm only.
    """
    mult = proc.const_a + arm * 2 + 1
    add = proc.const_b + arm + 1
    for edge in _out_edges(sub, proc.name):
        if edge.feedback:
            continue
        if edge.arm is not None and edge.arm != arm:
            continue
        count = edge.items // proc.repetitions
        _emit_write(lines, f"o_{edge.name}", count, edge.write_burst, mult, add, indent)
    if proc.name in _sink_processes(sub):
        lines.append(f"{indent}WRITE_DATA({output_port(proc.name)}, (acc * {mult}) % {_VAL_MOD}, 1);")


def emit_process(sub: SubsystemSpec, proc: ProcessSpec) -> str:
    """The FlowC source text of one process of ``sub``."""
    ports: List[str] = []
    if proc.name == sub.trigger:
        ports.append(f"In DPORT {trigger_port(proc.name)}")
    for edge in _in_edges(sub, proc.name):
        ports.append(f"In DPORT i_{edge.name}")
    for edge in _out_edges(sub, proc.name):
        ports.append(f"Out DPORT o_{edge.name}")
    if proc.name in _sink_processes(sub):
        ports.append(f"Out DPORT {output_port(proc.name)}")

    burst = _max_burst(sub, proc.name)
    decls = "int v, acc"
    if burst > 1:
        decls += f", buf[{burst}]"
    wcet = f" WCET({proc.wcet})" if proc.wcet is not None else ""
    lines = [f"PROCESS {proc.name} ({', '.join(ports)}){wcet} {{", f"    {decls};", "    while (1) {"]
    # the first read seeds acc from const_b, so no code-only transition is
    # needed ahead of the first port operation
    first = True
    if proc.name == sub.trigger:
        lines.append(f"        READ_DATA({trigger_port(proc.name)}, &v, 1);")
        lines.append(f"        acc = ({proc.const_b} + v) % {_ACC_MOD};")
        first = False
    for edge in _in_edges(sub, proc.name):
        if edge.feedback:
            continue
        first = _emit_read(
            lines,
            edge,
            edge.items // proc.repetitions,
            proc.const_a,
            first=first,
            const_b=proc.const_b,
        )
    # feedback writes come before the forward writes (the consumer of the
    # forward data acknowledges what it has already absorbed)
    for edge in _out_edges(sub, proc.name):
        if not edge.feedback:
            continue
        count = edge.items // proc.repetitions
        _emit_write(lines, f"o_{edge.name}", count, edge.write_burst, proc.const_a, 1, "        ")
    # forward writes, optionally under a data-dependent branch
    if proc.branch:
        lines.append("        if ((acc % 2) == 0) {")
        _emit_write_phase(lines, sub, proc, arm=0, indent="            ")
        lines.append("        } else {")
        _emit_write_phase(lines, sub, proc, arm=1, indent="            ")
        lines.append("        }")
    else:
        _emit_write_phase(lines, sub, proc, arm=0, indent="        ")
    # feedback reads close the loop iteration
    for edge in _in_edges(sub, proc.name):
        if not edge.feedback:
            continue
        first = _emit_read(
            lines,
            edge,
            edge.items // proc.repetitions,
            proc.const_a,
            first=first,
            const_b=proc.const_b,
        )
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines)


def emit_program(spec: ScenarioSpec) -> str:
    """The full FlowC program of a scenario (all subsystems, all processes)."""
    chunks: List[str] = []
    for sub in spec.subsystems:
        for proc in sub.processes:
            chunks.append(emit_process(sub, proc))
    return "\n\n".join(chunks) + "\n"


# ---------------------------------------------------------------------------
# network assembly / manifest
# ---------------------------------------------------------------------------


def _stable_digest(*parts: object) -> int:
    """A 32-bit digest that is stable across processes (unlike ``hash``)."""
    payload = "\x1f".join(str(part) for part in parts).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:4], "big")


def stimulus_for(spec: ScenarioSpec) -> Dict[str, List[int]]:
    """The shared input script: per-trigger values derived from the seed.

    Values are drawn from a hash of (seed, port, index) so truncating
    ``stimulus_length`` (a shrink step) keeps the surviving prefix identical.
    """
    stimulus: Dict[str, List[int]] = {}
    for sub in spec.subsystems:
        port = trigger_port(sub.trigger)
        stimulus[port] = [
            _stable_digest(spec.seed, port, index) % 97
            for index in range(spec.stimulus_length)
        ]
    return stimulus


def build_network(spec: ScenarioSpec) -> Network:
    """Assemble the :class:`Network` of a scenario (validated)."""
    check_spec(spec)
    network = Network(name=spec.label())
    network.add_processes_from_source(emit_program(spec))
    for sub in spec.subsystems:
        for edge in sub.edges:
            network.connect(
                edge.source,
                f"o_{edge.name}",
                edge.target,
                f"i_{edge.name}",
                name=edge.name,
                bound=edge.bound,
            )
        network.declare_input(sub.trigger, trigger_port(sub.trigger), controllable=False)
        for proc in _sink_processes(sub):
            network.declare_output(proc, output_port(proc))
    network.validate()
    return network


def expected_schedulable(spec: ScenarioSpec) -> bool:
    """True unless an arm-restricted channel unbalances some branch."""
    return all(
        edge.arm is None for sub in spec.subsystems for edge in sub.edges
    )


def build_manifest(spec: ScenarioSpec) -> Dict[str, Any]:
    """The expected-properties manifest checked by the differential harness."""
    axes = {
        "multirate": any(
            proc.repetitions > 1
            for sub in spec.subsystems
            for proc in sub.processes
        )
        or any(edge.items > 1 for sub in spec.subsystems for edge in sub.edges),
        "branching": any(
            proc.branch for sub in spec.subsystems for proc in sub.processes
        ),
        "feedback": any(
            edge.feedback for sub in spec.subsystems for edge in sub.edges
        ),
        "bursts": any(
            edge.write_burst > 1 or edge.read_burst > 1
            for sub in spec.subsystems
            for edge in sub.edges
        ),
        "bounded_channels": any(
            edge.bound is not None for sub in spec.subsystems for edge in sub.edges
        ),
        "multi_source": len(spec.subsystems) > 1,
        "wcet": any(
            proc.wcet is not None for sub in spec.subsystems for proc in sub.processes
        ),
    }
    return {
        "name": spec.label(),
        "seed": spec.seed,
        "family": spec.family,
        "processes": spec.size(),
        "channels": sum(len(sub.edges) for sub in spec.subsystems),
        "triggers": [trigger_port(sub.trigger) for sub in spec.subsystems],
        "source_transitions": [
            f"src.{sub.trigger}.{trigger_port(sub.trigger)}" for sub in spec.subsystems
        ],
        "outputs": sorted(
            output_port(proc)
            for sub in spec.subsystems
            for proc in _sink_processes(sub)
        ),
        "expected_schedulable": expected_schedulable(spec),
        # per-channel tokens per event: an upper bound on any legal occupancy
        "expected_channel_items": {
            edge.name: edge.items for sub in spec.subsystems for edge in sub.edges
        },
        "stimulus": stimulus_for(spec),
        "axes": axes,
    }


@dataclass
class CorpusCase:
    """A realised corpus case: spec, FlowC text, netlist, manifest."""

    spec: ScenarioSpec
    source: str
    network: Network
    manifest: Dict[str, Any]

    @property
    def name(self) -> str:
        return self.spec.label()


def build_case(spec: ScenarioSpec) -> CorpusCase:
    """Realise a scenario spec into a runnable corpus case."""
    network = build_network(spec)
    return CorpusCase(
        spec=spec,
        source=emit_program(spec),
        network=network,
        manifest=build_manifest(spec),
    )


# ---------------------------------------------------------------------------
# spec (de)serialisation -- triage files and --replay
# ---------------------------------------------------------------------------


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """Plain-JSON form of a spec (inverse of :func:`spec_from_dict`)."""
    return asdict(spec)


def spec_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Rebuild a :class:`ScenarioSpec` from its JSON form."""
    subsystems = tuple(
        SubsystemSpec(
            trigger=sub["trigger"],
            processes=tuple(ProcessSpec(**proc) for proc in sub["processes"]),
            edges=tuple(EdgeSpec(**edge) for edge in sub["edges"]),
        )
        for sub in data["subsystems"]
    )
    return ScenarioSpec(
        seed=int(data["seed"]),
        family=str(data["family"]),
        subsystems=subsystems,
        stimulus_length=int(data.get("stimulus_length", 2)),
        name=str(data.get("name", "")),
    )


def lcm(a: int, b: int) -> int:
    """Least common multiple (used by the generator's rate balancing)."""
    return a * b // gcd(a, b)
