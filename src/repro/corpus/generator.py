"""Seeded, reproducible scenario generation over the topology families.

Every generator draws exclusively from an explicit :class:`random.Random`
seeded from the case seed -- the module-global ``random`` state is never
touched and nothing depends on dict/set iteration order, so the same seed
produces the same :class:`~repro.corpus.topologies.ScenarioSpec` (and hence a
byte-identical FlowC program) in any process regardless of
``PYTHONHASHSEED``.  ``tests/test_generator_determinism.py`` pins this with a
two-subprocess byte-identity check.

The families go beyond the exemplar generators referenced in SNIPPETS.md
(AMC-RTB's task-set generator, digital-twin-scheduler's topology generator):
each case is a *complete FlowC system* -- processes, channels, environment
ports and a stimulus script -- not just a task graph, so it can be pushed
through the entire pipeline down to simulated traces.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.corpus.topologies import (
    EdgeSpec,
    ProcessSpec,
    ScenarioSpec,
    SubsystemSpec,
    check_spec,
    lcm,
)

#: The topology families the corpus cycles through.
FAMILIES: Tuple[str, ...] = (
    "chain",
    "tree",
    "fork_join",
    "layered",
    "diamond",
    "feedback",
    "multi_source",
)

#: Default base seed of the smoke corpus (fixed so CI runs are comparable).
DEFAULT_SEED = 20260808

#: Tokens per environment event on one channel never exceed this.
_MAX_ITEMS = 8


def _divisors(value: int) -> List[int]:
    return [d for d in range(1, value + 1) if value % d == 0]


def _finish_processes(
    rng: random.Random,
    names: Sequence[str],
    trigger: str,
    *,
    reps: Optional[Dict[str, int]] = None,
    forced_branch: Sequence[str] = (),
    branch_probability: float = 0.35,
    wcet_probability: float = 0.3,
) -> Tuple[ProcessSpec, ...]:
    """Draw repetitions / branch flags / constants for a process list."""
    specs: List[ProcessSpec] = []
    for name in names:
        repetitions = 1
        if name != trigger:
            repetitions = (reps or {}).get(name, rng.choice((1, 1, 1, 2)))
        branch = name in forced_branch or rng.random() < branch_probability
        # optional WCET(n) annotation: exercises the cost objective's
        # latency/jitter terms without changing schedulability or traces
        wcet = rng.randint(1, 12) if rng.random() < wcet_probability else None
        specs.append(
            ProcessSpec(
                name=name,
                repetitions=repetitions,
                branch=branch,
                const_a=rng.randint(2, 6),
                const_b=rng.randint(1, 9),
                wcet=wcet,
            )
        )
    return tuple(specs)


def _finish_edges(
    rng: random.Random,
    raw_edges: Sequence[Tuple[str, str]],
    processes: Sequence[ProcessSpec],
    prefix: str,
    *,
    feedback_pairs: Sequence[Tuple[str, str]] = (),
    bound_probability: float = 0.3,
) -> Tuple[EdgeSpec, ...]:
    """Assign rate-consistent items / bursts / bounds to raw edge pairs."""
    rep_of = {proc.name: proc.repetitions for proc in processes}
    feedback = set(feedback_pairs)
    edges: List[EdgeSpec] = []
    for index, (source, target) in enumerate(raw_edges):
        base = lcm(rep_of[source], rep_of[target])
        items = base * rng.choice((1, 1, 2))
        if items > _MAX_ITEMS:
            items = base
        write_burst = rng.choice(_divisors(items // rep_of[source]))
        read_burst = rng.choice(_divisors(items // rep_of[target]))
        bound = None
        if rng.random() < bound_probability:
            bound = items + rng.choice((0, 1))
        edges.append(
            EdgeSpec(
                name=f"{prefix}c{index}",
                source=source,
                target=target,
                items=items,
                write_burst=write_burst,
                read_burst=read_burst,
                bound=bound,
                feedback=(source, target) in feedback,
            )
        )
    return tuple(edges)


# ---------------------------------------------------------------------------
# raw topology drawers: (names, trigger, edge pairs, forced branches)
# ---------------------------------------------------------------------------


def _draw_chain(rng: random.Random, prefix: str):
    length = rng.randint(2, 5)
    names = [f"{prefix}p{i}" for i in range(length)]
    pairs = [(names[i], names[i + 1]) for i in range(length - 1)]
    return names, names[0], pairs, ()


def _draw_tree(rng: random.Random, prefix: str):
    names = [f"{prefix}p0"]
    pairs: List[Tuple[str, str]] = []
    frontier = [names[0]]
    while frontier and len(names) < 7:
        parent = frontier.pop(0)
        fanout = rng.randint(1, 3) if parent == names[0] else rng.randint(0, 2)
        for _ in range(fanout):
            if len(names) >= 7:
                break
            child = f"{prefix}p{len(names)}"
            names.append(child)
            pairs.append((parent, child))
            frontier.append(child)
    if not pairs:  # degenerate draw: force one child
        child = f"{prefix}p1"
        names.append(child)
        pairs.append((names[0], child))
    return names, names[0], pairs, ()


def _draw_fork_join(rng: random.Random, prefix: str):
    branches = rng.randint(2, 3)
    root = f"{prefix}p0"
    mids = [f"{prefix}p{i + 1}" for i in range(branches)]
    join = f"{prefix}p{branches + 1}"
    names = [root, *mids, join]
    pairs = [(root, mid) for mid in mids] + [(mid, join) for mid in mids]
    if rng.random() < 0.5:
        tail = f"{prefix}p{branches + 2}"
        names.append(tail)
        pairs.append((join, tail))
    return names, root, pairs, ()


def _draw_layered(rng: random.Random, prefix: str):
    widths = [1] + [rng.randint(1, 3) for _ in range(rng.randint(2, 3))]
    layers: List[List[str]] = []
    count = 0
    for width in widths:
        layers.append([f"{prefix}p{count + i}" for i in range(width)])
        count += width
    names = [name for layer in layers for name in layer]
    pairs: List[Tuple[str, str]] = []
    for upper, lower in zip(layers, layers[1:]):
        chosen: set[Tuple[str, str]] = set()
        for target in lower:
            chosen.add((rng.choice(upper), target))
        for source in upper:
            if not any(pair[0] == source for pair in chosen):
                chosen.add((source, rng.choice(lower)))
        pairs.extend(sorted(chosen))
    return names, layers[0][0], pairs, ()


def _draw_diamond(rng: random.Random, prefix: str):
    root, left, right, join = (f"{prefix}p{i}" for i in range(4))
    names = [root, left, right, join]
    pairs = [(root, left), (root, right), (left, join), (right, join)]
    return names, root, pairs, (root,)


_DRAWERS = {
    "chain": _draw_chain,
    "tree": _draw_tree,
    "fork_join": _draw_fork_join,
    "layered": _draw_layered,
    "diamond": _draw_diamond,
}


def _feedback_subsystem(rng: random.Random, prefix: str) -> SubsystemSpec:
    """The Section 7.2 shape: a forward burst channel plus a backward ack.

    Fixed-bound loops make the case false-path-prone under a compiler that
    models every loop as a data-dependent choice; our constant-bound
    unrolling resolves it, so the case is schedulable -- and the corpus pins
    that it stays so.
    """
    producer = f"{prefix}p0"
    consumer = f"{prefix}p1"
    names = [producer, consumer]
    forward_items = rng.choice((4, 6, 8))
    ack_items = rng.choice((1, 2))
    processes = tuple(
        ProcessSpec(
            name=name,
            repetitions=1,
            branch=False,
            const_a=rng.randint(2, 6),
            const_b=rng.randint(1, 9),
        )
        for name in names
    )
    write_burst = rng.choice(_divisors(forward_items))
    edges = (
        EdgeSpec(
            name=f"{prefix}c0",
            source=producer,
            target=consumer,
            items=forward_items,
            write_burst=write_burst,
            read_burst=1,
            bound=forward_items if rng.random() < 0.5 else None,
        ),
        EdgeSpec(
            name=f"{prefix}c1",
            source=consumer,
            target=producer,
            items=ack_items,
            feedback=True,
        ),
    )
    return SubsystemSpec(trigger=producer, processes=processes, edges=edges)


def _draw_subsystem(rng: random.Random, family: str, prefix: str = "") -> SubsystemSpec:
    if family == "feedback":
        return _feedback_subsystem(rng, prefix)
    names, trigger, pairs, forced = _DRAWERS[family](rng, prefix)
    processes = _finish_processes(rng, names, trigger, forced_branch=forced)
    edges = _finish_edges(rng, pairs, processes, prefix)
    return SubsystemSpec(trigger=trigger, processes=processes, edges=edges)


def generate_spec(seed: int, family: Optional[str] = None) -> ScenarioSpec:
    """Generate one validated scenario spec from ``seed``.

    ``family`` defaults to cycling deterministically through
    :data:`FAMILIES` by seed, so a contiguous seed range covers every
    family.

    Example::

        >>> spec = generate_spec(7)
        >>> spec == generate_spec(7)
        True
    """
    family = family or FAMILIES[seed % len(FAMILIES)]
    if family not in FAMILIES:
        raise ValueError(f"unknown family {family!r} (expected one of {FAMILIES})")
    rng = random.Random(seed)
    if family == "multi_source":
        count = rng.randint(2, 3)
        inner = [rng.choice(("chain", "diamond", "fork_join")) for _ in range(count)]
        subsystems = tuple(
            _draw_subsystem(rng, inner[index], prefix=f"s{index}_")
            for index in range(count)
        )
    else:
        subsystems = (_draw_subsystem(rng, family),)
    spec = ScenarioSpec(
        seed=seed,
        family=family,
        subsystems=subsystems,
        stimulus_length=rng.randint(2, 4),
    )
    check_spec(spec)
    return spec


def generate_corpus(
    count: int,
    *,
    seed: int = DEFAULT_SEED,
    families: Optional[Sequence[str]] = None,
) -> List[ScenarioSpec]:
    """Generate ``count`` specs cycling through the requested families.

    Case ``i`` uses seed ``seed + i`` and family ``families[i % len]``, so
    corpora are reproducible, extendable (a larger count is a superset) and
    family-balanced.

    Example::

        >>> [s.family for s in generate_corpus(3, seed=0)]
        ['chain', 'tree', 'fork_join']
    """
    chosen = tuple(families) if families else FAMILIES
    for family in chosen:
        if family not in FAMILIES:
            raise ValueError(f"unknown family {family!r}")
    return [
        generate_spec(seed + index, chosen[index % len(chosen)])
        for index in range(count)
    ]


def make_unschedulable_spec(seed: int = 0) -> ScenarioSpec:
    """The paper's Figure 4b situation: branch arms feed *different* channels.

    ``u1`` writes channel ``uc1`` on one arm of its data-dependent choice and
    channel ``uc2`` on the other, while ``u2`` joins by reading *both* every
    firing.  Whenever the environment keeps resolving the choice one way, the
    other channel starves and the taken one accumulates without bound, so no
    cyclic finite-memory schedule exists.  All three backends must agree on
    the failure; the harness pins that instead of trace equivalence.

    Note a merely count-skewed branch (both arms writing the *same* channel,
    different amounts) is NOT sufficient: the scheduler legitimately handles
    it with fill-parity await states.  The arms must diverge in *which*
    channel they feed.
    """
    rng = random.Random(seed)
    processes = (
        ProcessSpec(name="u0", repetitions=1, branch=False, const_a=3, const_b=5),
        ProcessSpec(
            name="u1",
            repetitions=1,
            branch=True,
            const_a=rng.randint(2, 6),
            const_b=rng.randint(1, 9),
        ),
        ProcessSpec(name="u2", repetitions=1, branch=False, const_a=2, const_b=1),
    )
    edges = (
        EdgeSpec(name="uc0", source="u0", target="u1", items=1),
        EdgeSpec(name="uc1", source="u1", target="u2", items=1, arm=0),
        EdgeSpec(name="uc2", source="u1", target="u2", items=1, arm=1),
    )
    spec = ScenarioSpec(
        seed=seed,
        family="chain",
        subsystems=(SubsystemSpec(trigger="u0", processes=processes, edges=edges),),
        stimulus_length=2,
        name=f"unschedulable_{seed}",
    )
    check_spec(spec)
    return spec
