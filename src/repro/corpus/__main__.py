"""``python -m repro.corpus`` -- run the corpus differential harness."""

import sys

from repro.corpus.cli import main

if __name__ == "__main__":
    sys.exit(main())
