"""Command-line driver of the corpus differential harness.

Usage::

    python -m repro.corpus --smoke                 # CI: ~58 cases, fixed seed
    python -m repro.corpus --cases 500             # full sweep
    python -m repro.corpus --families chain,tree   # restrict topologies
    python -m repro.corpus --replay triage/<case>/spec.json

Every failing case is shrunk to a minimal reproducer and written to the
triage directory (``--triage-dir``, default ``.corpus_triage``) as a spec
JSON, the emitted FlowC program and an outcome report with the replay
command.  With ``--bench-output`` the sweep's size and pass-rate land in the
``"corpus"`` section of ``BENCH_scheduler.json`` (read-modify-write: the
other sections are preserved).
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from repro.corpus.differential import CaseOutcome, CorpusReport, run_case, run_corpus
from repro.corpus.generator import (
    DEFAULT_SEED,
    FAMILIES,
    generate_corpus,
    make_unschedulable_spec,
)
from repro.corpus.shrink import ShrinkResult, shrink_case
from repro.corpus.topologies import (
    ScenarioSpec,
    emit_program,
    spec_from_dict,
    spec_to_dict,
)

#: Cases in ``--smoke`` mode: 8 per family plus two expected-failure cases.
SMOKE_CASES = 8 * len(FAMILIES)


def write_triage(
    triage_dir: Path, spec: ScenarioSpec, outcome: CaseOutcome, shrunk: ShrinkResult
) -> Path:
    """Write one failure's reproducer bundle; returns its directory."""
    case_dir = triage_dir / outcome.name
    if case_dir.exists():
        shutil.rmtree(case_dir)
    case_dir.mkdir(parents=True)
    (case_dir / "spec.json").write_text(
        json.dumps(spec_to_dict(shrunk.spec), indent=2, sort_keys=True) + "\n"
    )
    (case_dir / "original_spec.json").write_text(
        json.dumps(spec_to_dict(spec), indent=2, sort_keys=True) + "\n"
    )
    (case_dir / "program.flowc").write_text(emit_program(shrunk.spec))
    report = {
        "outcome": outcome.to_dict(),
        "shrunk_outcome": shrunk.outcome.to_dict(),
        "shrink": shrunk.to_dict(),
        "replay": f"python -m repro.corpus --replay {case_dir / 'spec.json'}",
    }
    (case_dir / "outcome.json").write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return case_dir


def merge_bench_section(report: CorpusReport, output: Path, *, seed: int) -> None:
    """Read-modify-write the ``"corpus"`` section of the benchmark report."""
    document: Dict[str, Any] = {}
    if output.exists():
        document = json.loads(output.read_text())
    document["corpus"] = {
        "seed": seed,
        **report.to_dict(),
    }
    output.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def _replay(path: Path) -> int:
    spec = spec_from_dict(json.loads(path.read_text()))
    print(f"replaying {spec.label()} ({spec.size()} processes)")
    print(emit_program(spec))
    outcome = run_case(spec)
    print(json.dumps(outcome.to_dict(), indent=2, sort_keys=True))
    return 0 if outcome.passed else 1


def build_specs(
    count: int, seed: int, families: Optional[Sequence[str]]
) -> List[ScenarioSpec]:
    """The sweep's specs: generated cases plus two expected-failure cases."""
    specs = generate_corpus(count, seed=seed, families=families)
    specs.append(make_unschedulable_spec(seed))
    specs.append(make_unschedulable_spec(seed + 1))
    return specs


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"CI mode: {SMOKE_CASES} generated cases + 2 expected failures, fixed seed",
    )
    parser.add_argument("--cases", type=int, default=SMOKE_CASES, help="generated case count")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="base seed")
    parser.add_argument(
        "--families", default=None,
        help=f"comma-separated subset of {','.join(FAMILIES)}",
    )
    parser.add_argument(
        "--triage-dir", default=".corpus_triage",
        help="directory for shrunk reproducers of failing cases",
    )
    parser.add_argument(
        "--bench-output", default=None,
        help="merge a 'corpus' section into this BENCH_scheduler.json",
    )
    parser.add_argument("--no-shrink", action="store_true", help="skip failure shrinking")
    parser.add_argument("--replay", default=None, help="re-run one triage spec.json")
    args = parser.parse_args(argv)

    if args.replay:
        return _replay(Path(args.replay))

    if args.smoke:
        args.cases, args.seed = SMOKE_CASES, DEFAULT_SEED
    families = args.families.split(",") if args.families else None
    specs = build_specs(args.cases, args.seed, families)
    spec_of = {spec.label(): spec for spec in specs}

    def progress(outcome: CaseOutcome) -> None:
        if not outcome.passed:
            print(f"FAIL {outcome.name} [{outcome.stage}] {outcome.message}", flush=True)

    print(
        f"corpus: {len(specs)} cases (seed {args.seed}, "
        f"families {','.join(families or FAMILIES)})",
        flush=True,
    )
    report = run_corpus(specs, progress=progress)

    for family, (passed, total) in sorted(report.by_family().items()):
        print(f"  {family:<14} {passed}/{total}")
    print(
        f"{report.passed}/{report.total} passed "
        f"({report.pass_rate:.1%}) in {report.elapsed_seconds:.1f}s"
    )

    if report.failures and not args.no_shrink:
        triage_dir = Path(args.triage_dir)
        for outcome in report.failures:
            shrunk = shrink_case(spec_of[outcome.name], outcome)
            case_dir = write_triage(triage_dir, spec_of[outcome.name], outcome, shrunk)
            print(
                f"shrunk {outcome.name}: {shrunk.original.size()} -> "
                f"{shrunk.spec.size()} processes via {shrunk.steps or ['(no reduction)']}; "
                f"triage at {case_dir}"
            )

    if args.bench_output:
        merge_bench_section(report, Path(args.bench_output), seed=args.seed)
        print(f"'corpus' section written to {args.bench_output}")

    return 0 if not report.failures else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
