"""Wire protocol of the scheduling daemon: JSON lines over TCP.

One request per line, one response per line, both canonical JSON (sorted
keys, compact separators) terminated by ``\\n``.  Requests carry an ``op``:

``schedule``
    The workhorse.  The net arrives either pre-linked (``"net"``: the
    structure-only serialization produced by :func:`net_to_dict`) or as
    FlowC source (``"flowc"``: a program plus an optional netlist spec --
    channels, environment declarations -- compiled and linked server-side).
    Optional ``"sources"`` restricts which uncontrollable sources are
    scheduled (default: all of them) and ``"options"`` sets a whitelisted
    subset of :class:`~repro.scheduling.ep.SchedulerOptions` fields.
``stats``
    Introspection: cache hit/miss/coalesce counters, queue depth and
    per-phase latency histograms (see ``serve.service``).
``ping``
    Liveness probe.
``shutdown``
    Ask the daemon to drain in-flight work and exit.

Responses echo the request ``id`` (when given) and carry either
``"ok": true`` plus op-specific fields or ``"ok": false`` plus an
``"error": {"type", "message"}`` object.  Schedule responses embed, per
source, the canonical schedule dict, its fingerprint, the original search's
:class:`~repro.scheduling.ep.SearchCounters` and the cache origin -- the
same canonical bytes regardless of which of N coalesced requesters receives
them.

The net serialization here is *structural*: places (tokens, bounds, port
flags), transitions (source kinds, sink flags, guards, priorities) and
weighted arcs.  Transition ``code`` and choice-place ``condition`` carry
opaque FlowC AST objects that neither scheduling nor fingerprinting reads,
so they do not travel; a round-tripped net schedules byte-identically to
the original (pinned by ``tests/test_serve.py``).
"""

from __future__ import annotations

import json
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.flowc.netlist import Network
from repro.petrinet.net import PetriNet, SourceKind
from repro.scheduling.ep import OBJECTIVES, SchedulerOptions

#: Version stamped into every response envelope; bump on breaking changes.
PROTOCOL_VERSION = 1

#: Upper bound on one request line (and the asyncio stream limit).  Nets of
#: tens of thousands of nodes fit comfortably; anything bigger should ship
#: as FlowC source, which is far denser than an arc list.
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed or unsupported request; maps to an error response.

    ``kind`` is the stable machine-readable error type echoed on the wire
    (``bad-json``, ``bad-request``, ``bad-net``, ``bad-flowc``,
    ``bad-options``, ``unknown-source``, ``timeout``, ``shutting-down``,
    ``internal``).
    """

    def __init__(self, kind: str, message: str):
        super().__init__(message)
        self.kind = kind


def canonical_json(obj) -> str:
    """Canonical encoding shared by responses and fingerprints."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_line(obj: Mapping[str, object]) -> bytes:
    """One wire line: canonical JSON + newline, UTF-8."""
    return (canonical_json(obj) + "\n").encode("utf-8")


def decode_line(line: bytes) -> Dict[str, object]:
    """Parse one request line into a dict, raising :class:`ProtocolError`."""
    try:
        obj = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise ProtocolError("bad-json", f"request is not valid JSON: {error}")
    if not isinstance(obj, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    return obj


# ---------------------------------------------------------------------------
# net serialization
# ---------------------------------------------------------------------------


def net_to_dict(net: PetriNet) -> Dict[str, object]:
    """Structure-only JSON form of a net (inverse: :func:`net_from_dict`).

    Deterministic: places, transitions and arcs are listed in sorted name
    order and default-valued attributes are omitted, so two structurally
    identical nets serialize to identical bytes.

    Example::

        >>> from repro.apps.paper_nets import figure_5
        >>> data = net_to_dict(figure_5())
        >>> sorted(data)
        ['arcs', 'name', 'places', 'transitions']
    """
    places: List[Dict[str, object]] = []
    for name in sorted(net.places):
        place = net.places[name]
        entry: Dict[str, object] = {"name": name}
        tokens = net.initial_tokens.get(name, 0)
        if tokens:
            entry["tokens"] = int(tokens)
        if place.bound is not None:
            entry["bound"] = int(place.bound)
        if place.is_port:
            entry["is_port"] = True
        if place.channel is not None:
            entry["channel"] = place.channel
        if place.process is not None:
            entry["process"] = place.process
        places.append(entry)
    transitions: List[Dict[str, object]] = []
    for name in sorted(net.transitions):
        transition = net.transitions[name]
        entry = {"name": name}
        if transition.source_kind is not SourceKind.NONE:
            entry["source_kind"] = transition.source_kind.value
        if transition.is_sink:
            entry["is_sink"] = True
        if transition.guard is not None:
            entry["guard"] = bool(transition.guard)
        if transition.select_priority is not None:
            entry["select_priority"] = int(transition.select_priority)
        if transition.process is not None:
            entry["process"] = transition.process
        transitions.append(entry)
    arcs: List[List[object]] = []
    for transition in sorted(net.pre):
        for place, weight in sorted(net.pre[transition].items()):
            arcs.append([place, transition, int(weight)])
    for transition in sorted(net.post):
        for place, weight in sorted(net.post[transition].items()):
            arcs.append([transition, place, int(weight)])
    return {
        "name": net.name,
        "places": places,
        "transitions": transitions,
        "arcs": arcs,
    }


def net_from_dict(data: Mapping[str, object]) -> PetriNet:
    """Rebuild a net from :func:`net_to_dict` output (wire requests).

    Validates shape as it goes; any inconsistency (unknown arc endpoint,
    negative weight, duplicate name) raises :class:`ProtocolError` with kind
    ``bad-net``.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError("bad-net", "net must be a JSON object")
    try:
        net = PetriNet(name=str(data.get("name", "net")))
        for entry in data.get("places", ()):
            net.add_place(
                str(entry["name"]),
                int(entry.get("tokens", 0)),
                bound=(int(entry["bound"]) if entry.get("bound") is not None else None),
                is_port=bool(entry.get("is_port", False)),
                channel=entry.get("channel"),
                process=entry.get("process"),
            )
        for entry in data.get("transitions", ()):
            net.add_transition(
                str(entry["name"]),
                source_kind=SourceKind(entry.get("source_kind", "none")),
                is_sink=bool(entry.get("is_sink", False)),
                guard=entry.get("guard"),
                select_priority=entry.get("select_priority"),
                process=entry.get("process"),
            )
        for arc in data.get("arcs", ()):
            src, dst, weight = arc
            net.add_arc(str(src), str(dst), int(weight))
        net.validate()
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError("bad-net", f"invalid net serialization: {error}")
    return net


# ---------------------------------------------------------------------------
# FlowC requests
# ---------------------------------------------------------------------------


def _port_ref(text: object) -> Tuple[str, str]:
    if not isinstance(text, str) or "." not in text:
        raise ProtocolError("bad-flowc", f"port reference {text!r} is not 'process.port'")
    process, port = text.split(".", 1)
    return process, port


def network_from_spec(payload: Mapping[str, object]) -> Network:
    """Build a :class:`~repro.flowc.netlist.Network` from a wire FlowC spec.

    ``payload`` carries ``program`` (FlowC source declaring one or more
    processes) and optionally ``channels`` (``{"source": "p.port",
    "target": "p.port", "bound": int?, "name": str?}``), ``inputs`` /
    ``outputs`` (environment declarations, ``{"port": "p.port",
    "controllable": bool?, "rate": int?}``) and ``name``.  Unless
    ``auto_environment`` is set to false, any port still unconnected after
    those declarations is auto-declared -- inputs as *uncontrollable*
    environment inputs, outputs as environment outputs -- so a bare program
    is immediately schedulable.
    """
    program = payload.get("program")
    if not isinstance(program, str) or not program.strip():
        raise ProtocolError("bad-flowc", "flowc request needs a non-empty 'program' string")
    network = Network(name=str(payload.get("name", "system")))
    try:
        network.add_processes_from_source(program)
        for spec in payload.get("channels", ()):
            s_process, s_port = _port_ref(spec["source"])
            t_process, t_port = _port_ref(spec["target"])
            network.connect(
                s_process,
                s_port,
                t_process,
                t_port,
                name=spec.get("name"),
                bound=(int(spec["bound"]) if spec.get("bound") is not None else None),
            )
        for spec in payload.get("inputs", ()):
            process, port = _port_ref(spec["port"])
            network.declare_input(
                process,
                port,
                controllable=bool(spec.get("controllable", False)),
                rate=int(spec.get("rate", 1)),
            )
        for spec in payload.get("outputs", ()):
            process, port = _port_ref(spec["port"])
            network.declare_output(process, port, rate=int(spec.get("rate", 1)))
        if payload.get("auto_environment", True):
            declared = set(network.environment_inputs) | set(network.environment_outputs)
            for ref, direction in network.unconnected_ports():
                if ref in declared:
                    continue
                if direction == "input":
                    network.declare_input(ref.process, ref.port, controllable=False)
                else:
                    network.declare_output(ref.process, ref.port)
    except ProtocolError:
        raise
    except Exception as error:
        raise ProtocolError("bad-flowc", f"invalid FlowC request: {error}")
    return network


# ---------------------------------------------------------------------------
# options
# ---------------------------------------------------------------------------

#: SchedulerOptions fields settable over the wire.  ``termination`` is
#: deliberately absent: arbitrary condition objects have no JSON form and
#: would defeat both fingerprint keying and the caches.
WIRE_OPTION_FIELDS = (
    "single_source",
    "use_invariant_heuristic",
    "max_nodes",
    "validate",
    "invariant_precheck",
    "defer_sources",
    "backend",
    "kernel_tier",
    # worker-topology knob, not result identity: responses and cache
    # records are byte-identical at any value (repro.scheduling.intra)
    "intra_workers",
    # enumerate->score->select: "first" replays the classic search, "cost"
    # enumerates up to candidate_limit schedules and keeps the cheapest
    "objective",
    "candidate_limit",
)


def options_from_dict(data: Optional[Mapping[str, object]]) -> SchedulerOptions:
    """Whitelisted :class:`SchedulerOptions` from a request's ``options``.

    Unknown fields are rejected rather than ignored: a typoed knob that
    silently fell back to defaults would be served from the wrong cache key
    forever after.
    """
    if data is None:
        return SchedulerOptions()
    if not isinstance(data, Mapping):
        raise ProtocolError("bad-options", "options must be a JSON object")
    unknown = set(data) - set(WIRE_OPTION_FIELDS)
    if unknown:
        raise ProtocolError(
            "bad-options",
            f"unknown option(s) {sorted(unknown)}; settable: {list(WIRE_OPTION_FIELDS)}",
        )
    try:
        options = SchedulerOptions(**{key: data[key] for key in data})
    except Exception as error:
        raise ProtocolError("bad-options", f"invalid options: {error}")
    if options.backend not in ("auto", "scalar", "batched", "kernel"):
        raise ProtocolError("bad-options", f"unknown backend {options.backend!r}")
    if options.kernel_tier not in (None, "compiled", "numpy"):
        raise ProtocolError("bad-options", f"unknown kernel tier {options.kernel_tier!r}")
    if not isinstance(options.max_nodes, int) or options.max_nodes < 1:
        raise ProtocolError("bad-options", "max_nodes must be a positive integer")
    if (
        not isinstance(options.intra_workers, int)
        or isinstance(options.intra_workers, bool)
        or not 1 <= options.intra_workers <= 64
    ):
        raise ProtocolError(
            "bad-options", "intra_workers must be an integer between 1 and 64"
        )
    if options.objective not in OBJECTIVES:
        raise ProtocolError(
            "bad-options",
            f"unknown objective {options.objective!r}; settable: {list(OBJECTIVES)}",
        )
    if (
        not isinstance(options.candidate_limit, int)
        or isinstance(options.candidate_limit, bool)
        or not 1 <= options.candidate_limit <= 64
    ):
        raise ProtocolError(
            "bad-options", "candidate_limit must be an integer between 1 and 64"
        )
    return options


def resolve_sources(net: PetriNet, requested: Optional[Sequence[object]]) -> List[str]:
    """The source transitions one request schedules, validated against ``net``."""
    if requested is None:
        sources = net.uncontrollable_sources()
        if not sources:
            raise ProtocolError(
                "unknown-source", "net has no uncontrollable source transitions"
            )
        return sources
    if not isinstance(requested, (list, tuple)) or not requested:
        raise ProtocolError("bad-request", "'sources' must be a non-empty list")
    sources = []
    for item in requested:
        name = str(item)
        if name not in net.transitions:
            raise ProtocolError("unknown-source", f"unknown transition {name!r}")
        sources.append(name)
    return sources


def error_response(request_id: object, error: ProtocolError) -> Dict[str, object]:
    """The error envelope for one failed request."""
    body: Dict[str, object] = {
        "ok": False,
        "protocol": PROTOCOL_VERSION,
        "error": {"type": error.kind, "message": str(error)},
    }
    if request_id is not None:
        body["id"] = request_id
    return body
