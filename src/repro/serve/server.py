"""The asyncio TCP front end of the scheduling daemon.

One :class:`ScheduleServer` binds a listener, speaks the JSON-lines
protocol (:mod:`repro.serve.protocol`), and delegates every ``schedule``
request to a :class:`~repro.serve.service.SchedulingService` -- which is
where coalescing, caching and the executor live.  Requests on one
connection are processed in order; concurrency comes from concurrent
connections.

Lifecycle: :meth:`start` binds (port 0 picks a free port, reported by
:attr:`port`), :meth:`shutdown` drains gracefully -- the listener closes
first so no new work is admitted, in-flight requests get ``drain_deadline``
seconds to finish, then connections are closed and the service's executor
released.  A client-initiated ``{"op": "shutdown"}`` runs the same path
after acknowledging, which is how the CI smoke and the benchmark stop the
daemon they spawned.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, Optional

from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.serve.service import SchedulingService


class ScheduleServer:
    """JSON-lines-over-TCP transport around one :class:`SchedulingService`.

    ``drain_deadline`` bounds how long :meth:`shutdown` waits for in-flight
    requests; past it their connections are closed anyway (the searches
    finish on the executor, feeding the cache, but nobody hears back).
    """

    def __init__(
        self,
        service: SchedulingService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        drain_deadline: float = 10.0,
    ):
        self.service = service
        self.host = host
        self.requested_port = port
        self.drain_deadline = drain_deadline
        self.started_at: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self.shutdown_requested = asyncio.Event()

    # -- lifecycle ----------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (meaningful after :meth:`start`)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Bind the listener and start accepting connections."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.requested_port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self.started_at = time.time()

    async def shutdown(self) -> bool:
        """Graceful stop: refuse new work, drain, close.  True if clean.

        "Clean" means every admitted request completed (and its response
        was flushed) within ``drain_deadline`` seconds.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), self.drain_deadline)
            clean = True
        except asyncio.TimeoutError:
            clean = False
        # orphaned searches (all waiters timed out) may outlive the requests;
        # give them the same bounded window, then abandon them to the executor
        await self.service.drain(self.drain_deadline if clean else 0)
        for writer in list(self._connections):
            writer.close()
        self.service.close()
        self.shutdown_requested.set()
        return clean

    async def serve_until_shutdown(self) -> bool:
        """Run until a client sends ``{"op": "shutdown"}``; then drain."""
        await self.shutdown_requested.wait()
        return await self.shutdown()

    def describe(self) -> Dict[str, object]:
        """Server block of the stats payload."""
        return {
            "connections": len(self._connections),
            "active_requests": self._active_requests,
            "draining": self._draining,
            "uptime_seconds": (
                round(time.time() - self.started_at, 3) if self.started_at else 0.0
            ),
        }

    # -- connection handling ------------------------------------------------
    def _track(self, delta: int) -> None:
        self._active_requests += delta
        if self._active_requests == 0:
            self._idle.set()
        else:
            self._idle.clear()

    async def _handle_connection(self, reader, writer) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    error = ProtocolError(
                        "bad-request",
                        f"request line exceeds {protocol.MAX_LINE_BYTES} bytes",
                    )
                    writer.write(protocol.encode_line(protocol.error_response(None, error)))
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self._track(+1)
                try:
                    stop = await self._handle_line(line, writer)
                finally:
                    self._track(-1)
                if stop:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-conversation; nothing to answer
        finally:
            # every response was already flushed (drain); close without
            # awaiting so loop teardown never cancels us mid-cleanup
            self._connections.discard(writer)
            writer.close()

    async def _handle_line(self, line: bytes, writer) -> bool:
        """Process one request line; True means "close this connection"."""
        started = time.perf_counter()
        request_id = None
        try:
            parse_started = time.perf_counter()
            request = protocol.decode_line(line)
            request_id = request.get("id")
            op = request.get("op", "schedule")
            self.service.metrics.phases["parse"].observe(
                time.perf_counter() - parse_started
            )
            if op == "ping":
                response = self._envelope(request_id, pong=True)
            elif op == "stats":
                response = self._envelope(
                    request_id,
                    stats=self.service.snapshot(),
                    server=self.describe(),
                )
            elif op == "shutdown":
                response = self._envelope(request_id, shutting_down=True)
                writer.write(protocol.encode_line(response))
                await writer.drain()
                self.shutdown_requested.set()
                return True
            elif op == "schedule":
                response = await self._handle_schedule(request, request_id)
                self.service.metrics.phases["total"].observe(
                    time.perf_counter() - started
                )
            else:
                raise ProtocolError("bad-request", f"unknown op {op!r}")
        except ProtocolError as error:
            bucket = "bad_requests" if error.kind.startswith("bad-") else "errors"
            self.service.metrics.bump(bucket)
            response = protocol.error_response(request_id, error)
        except Exception as error:  # noqa: BLE001 - never tear the connection down
            self.service.metrics.bump("errors")
            response = protocol.error_response(
                request_id, ProtocolError("internal", f"unexpected failure: {error!r}")
            )
        writer.write(protocol.encode_line(response))
        await writer.drain()
        return False

    async def _handle_schedule(self, request, request_id) -> Dict[str, object]:
        if self._draining:
            raise ProtocolError("shutting-down", "server is draining; retry elsewhere")
        self.service.metrics.bump("requests")
        build_started = time.perf_counter()
        net = await self._build_net(request)
        options = protocol.options_from_dict(request.get("options"))
        sources = protocol.resolve_sources(net, request.get("sources"))
        self.service.metrics.phases["build"].observe(
            time.perf_counter() - build_started
        )
        timeout = request.get("timeout")
        if timeout is not None and not isinstance(timeout, (int, float)):
            raise ProtocolError("bad-request", "'timeout' must be a number of seconds")
        payloads = await self.service.schedule_net(
            net,
            sources,
            options,
            **({"timeout": float(timeout)} if timeout is not None else {}),
        )
        self.service.metrics.bump("responses")
        return self._envelope(
            request_id,
            net_fingerprint=payloads[0]["net_fingerprint"] if payloads else None,
            results=payloads,
        )

    async def _build_net(self, request):
        """Materialize the request's net (serialized or FlowC), off-loop."""
        loop = asyncio.get_running_loop()
        if "net" in request:
            data = request["net"]
            return await loop.run_in_executor(
                self.service._executor, protocol.net_from_dict, data
            )
        if "flowc" in request:
            spec = request["flowc"]
            if not isinstance(spec, dict):
                raise ProtocolError("bad-flowc", "'flowc' must be a JSON object")

            def compile_and_link():
                from repro.flowc.linker import link

                network = protocol.network_from_spec(spec)
                try:
                    return link(network).net
                except ProtocolError:
                    raise
                except Exception as error:
                    raise ProtocolError("bad-flowc", f"compile/link failed: {error}")

            return await loop.run_in_executor(self.service._executor, compile_and_link)
        raise ProtocolError("bad-request", "schedule request needs 'net' or 'flowc'")

    @staticmethod
    def _envelope(request_id, **fields) -> Dict[str, object]:
        body: Dict[str, object] = {"ok": True, "protocol": protocol.PROTOCOL_VERSION}
        if request_id is not None:
            body["id"] = request_id
        body.update(fields)
        return body


async def start_server(
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_workers: int = 4,
    search_timeout: Optional[float] = None,
    l1_capacity: int = 256,
    drain_deadline: float = 10.0,
    store=None,
) -> ScheduleServer:
    """Convenience: build a service + server pair and start listening.

    Example::

        >>> import asyncio
        >>> async def demo():
        ...     server = await start_server(max_workers=1)
        ...     port = server.port
        ...     await server.shutdown()
        ...     return port > 0
        >>> asyncio.run(demo())
        True
    """
    service = SchedulingService(
        max_workers=max_workers,
        search_timeout=search_timeout,
        l1_capacity=l1_capacity,
        store=store,
    )
    server = ScheduleServer(
        service, host=host, port=port, drain_deadline=drain_deadline
    )
    await server.start()
    return server
