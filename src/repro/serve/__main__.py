"""CLI entry point: ``python -m repro.serve``.

Starts the scheduling daemon and blocks until a client sends
``{"op": "shutdown"}`` (or the process receives SIGINT/SIGTERM), then
drains gracefully.  On startup one JSON *ready line* is printed to stdout::

    {"event": "ready", "host": "127.0.0.1", "port": 43121, "pid": 1234}

so wrappers (the benchmark's ``--spawn`` mode, the CI smoke job) can bind
``--port 0`` and discover the chosen port without races.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import os
import signal
import sys
from typing import Optional, Sequence

import repro.cache as artifact_cache
from repro.serve.server import start_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Scheduling-as-a-service daemon (JSON lines over TCP).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=7411, help="bind port (0 picks a free one)"
    )
    parser.add_argument(
        "--workers", type=int, default=max(2, os.cpu_count() or 1),
        help="search executor threads (bounds concurrent EP searches)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="default per-request timeout in seconds (default: none)",
    )
    parser.add_argument(
        "--l1-capacity", type=int, default=256,
        help="in-memory schedule-record LRU capacity",
    )
    parser.add_argument(
        "--drain-deadline", type=float, default=10.0,
        help="seconds granted to in-flight requests on shutdown",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="activate the persistent disk cache as the L2 "
        "(equivalent to REPRO_CACHE=1)",
    )
    parser.add_argument(
        "--cache-dir", default=None, help="disk cache location (implies --cache)"
    )
    return parser


async def _run(args) -> int:
    store = None
    if args.cache or args.cache_dir:
        store = artifact_cache.activate(path=args.cache_dir)
    server = await start_server(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        search_timeout=args.timeout,
        l1_capacity=args.l1_capacity,
        drain_deadline=args.drain_deadline,
        store=store,
    )
    ready = {
        "event": "ready",
        "host": args.host,
        "port": server.port,
        "pid": os.getpid(),
        "workers": args.workers,
        "cache": store.describe() if store is not None else "off",
    }
    print(json.dumps(ready), flush=True)
    loop = asyncio.get_running_loop()
    for signame in ("SIGINT", "SIGTERM"):
        with contextlib.suppress(NotImplementedError, AttributeError):
            loop.add_signal_handler(
                getattr(signal, signame), server.shutdown_requested.set
            )
    clean = await server.serve_until_shutdown()
    print(
        json.dumps({"event": "stopped", "clean_drain": clean}),
        flush=True,
    )
    return 0 if clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse arguments, run the daemon, return the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(_run(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
