"""Scheduling-as-a-service: a daemon that serves compile-time schedules.

The paper's scheduler is a pure function from ``(net structure, options)``
to a canonical schedule, and the preceding layers built every ingredient of
a serving stack -- structural fingerprints as request keys, the checksummed
disk cache as an L2, canonical JSON schedules as a wire format.  This
package wires them behind a listener:

* :mod:`repro.serve.protocol` -- the JSON-lines wire format: serialized
  nets or FlowC programs in, canonical schedule records out;
* :mod:`repro.serve.service` -- the engine: an asyncio **single-flight
  map** coalescing concurrent requests for one ``(structural_fingerprint,
  options, source)`` key into one in-flight EP search, in front of the
  warm-start L1 and the persistent disk L2, with searches running on a
  bounded thread pool, per-waiter timeouts, and hit/miss/coalesce metrics
  plus per-phase latency histograms;
* :mod:`repro.serve.server` -- the asyncio TCP transport with an
  introspection (``stats``) endpoint and graceful shutdown draining.

Example -- run the daemon::

    python -m repro.serve --port 7411 --workers 4

and talk to it one JSON object per line::

    {"op": "schedule", "net": {...}, "options": {"backend": "auto"}}
    {"op": "stats"}

``benchmarks/bench_serve.py`` drives thousands of concurrent clients
zipf-distributed over a net corpus against it and records the results in
the ``"serve"`` section of ``BENCH_scheduler.json``.
"""

from __future__ import annotations

from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    net_from_dict,
    net_to_dict,
    options_from_dict,
)
from repro.serve.server import ScheduleServer, start_server
from repro.serve.service import LatencyHistogram, SchedulingService, ServeMetrics

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "net_to_dict",
    "net_from_dict",
    "options_from_dict",
    "SchedulingService",
    "ServeMetrics",
    "LatencyHistogram",
    "ScheduleServer",
    "start_server",
]
