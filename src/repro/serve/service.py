"""The scheduling service: single-flight coalescing over a bounded executor.

This is the daemon's engine, independent of any transport.  One
:class:`SchedulingService` owns

* a **bounded thread pool** running the actual EP searches (and disk-cache
  I/O) off the event loop;
* a :class:`~repro.scheduling.warmstart.ScheduleWarmStartCache` -- the L1
  in-memory LRU plus, when the persistent cache is active, the disk L2;
* the **single-flight map**: concurrent requests for one
  ``(structural_fingerprint, source, options_key)`` coalesce onto one
  in-flight future, so a stampede of N identical requests costs exactly one
  EP search (the other N-1 *await* it and receive the same record);
* the metrics the introspection endpoint reports: hit/miss/coalesce
  counters, queue depth and per-phase latency histograms.

Timeouts and cancellation are **per waiter, never per search**: a client
that gives up (timeout, dropped connection) detaches from the shared future
without cancelling it -- the search keeps running for the remaining waiters
and still populates the caches for the next request.  The search itself is
bounded by ``SchedulerOptions.max_nodes``, which is what actually stops a
runaway exploration.

The sources of one multi-source request are scheduled *sequentially*: a
``PetriNet`` object's lazy derived caches (indexed snapshot, structural
analysis) are not safe to build from two threads at once.  Concurrency --
and the coalescing win -- comes from the population of independent
requests, each of which carries its own net object.
"""

from __future__ import annotations

import asyncio
import bisect
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.petrinet.fingerprint import structural_fingerprint
from repro.petrinet.net import PetriNet
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.serialize import (
    result_to_record,
    schedule_dict_fingerprint,
)
from repro.scheduling.warmstart import (
    ScheduleWarmStartCache,
    options_cache_key,
    record_live_search,
)
from repro.serve.protocol import ProtocolError

_UNSET = object()


class LatencyHistogram:
    """Fixed log2 latency buckets (1ms .. ~65s), thread-safe.

    Small enough to ship in every ``stats`` response, coarse enough to never
    need rebinning; the overflow bucket catches anything slower than the
    largest bound.
    """

    #: Upper bounds in seconds: 1ms, 2ms, 4ms, ... 65.536s.
    BOUNDS = tuple(0.001 * (2**i) for i in range(17))

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.BOUNDS) + 1)
        self.count = 0
        self.total_seconds = 0.0
        self.max_seconds = 0.0

    def observe(self, seconds: float) -> None:
        """Record one measurement."""
        index = bisect.bisect_left(self.BOUNDS, seconds)
        with self._lock:
            self._counts[index] += 1
            self.count += 1
            self.total_seconds += seconds
            self.max_seconds = max(self.max_seconds, seconds)

    @staticmethod
    def _label(bound: float) -> str:
        return f"<={bound * 1000:g}ms" if bound < 1 else f"<={bound:g}s"

    def as_dict(self) -> Dict[str, object]:
        """JSON-friendly snapshot; zero buckets are omitted for brevity."""
        with self._lock:
            buckets = {}
            for bound, count in zip(self.BOUNDS, self._counts):
                if count:
                    buckets[self._label(bound)] = count
            if self._counts[-1]:
                buckets[f">{self.BOUNDS[-1]:g}s"] = self._counts[-1]
            mean = self.total_seconds / self.count if self.count else 0.0
            return {
                "count": self.count,
                "mean_seconds": round(mean, 6),
                "max_seconds": round(self.max_seconds, 6),
                "buckets": buckets,
            }


class ServeMetrics:
    """Counter block of one service instance (all increments locked)."""

    COUNTERS = (
        "requests",
        "responses",
        "errors",
        "bad_requests",
        "timeouts",
        "coalesced",
        "l1_hits",
        "disk_hits",
        "live_searches",
        "uncacheable",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.COUNTERS:
            setattr(self, name, 0)
        self.phases: Dict[str, LatencyHistogram] = {
            "parse": LatencyHistogram(),
            "build": LatencyHistogram(),
            "search": LatencyHistogram(),
            "total": LatencyHistogram(),
        }

    def bump(self, name: str, amount: int = 1) -> None:
        """Thread-safe increment of one counter."""
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def as_dict(self) -> Dict[str, object]:
        """Snapshot of counters + histograms for the stats endpoint."""
        with self._lock:
            counters = {name: getattr(self, name) for name in self.COUNTERS}
        counters["cache_hits"] = counters["l1_hits"] + counters["disk_hits"]
        return {
            **counters,
            "latency": {name: hist.as_dict() for name, hist in self.phases.items()},
        }


class SchedulingService:
    """Coalescing, cache-fronted scheduling engine (transport-agnostic).

    Parameters: ``max_workers`` bounds the searching thread pool (the queue
    behind it is unbounded -- admission control is the transport's job);
    ``search_timeout`` is the default per-*waiter* deadline in seconds
    (``None`` waits forever); ``l1_capacity`` sizes the in-memory record
    LRU; ``store`` pins a disk store (default: the process-wide active
    store, i.e. ``repro.cache.activate()`` / ``REPRO_CACHE=1``; ``False``
    keeps the service memory-only).

    Example::

        >>> import asyncio
        >>> from repro.apps.paper_nets import figure_5
        >>> service = SchedulingService(max_workers=2)
        >>> async def demo():
        ...     payloads = await service.schedule_net(figure_5(), ["a"], None)
        ...     return payloads[0]["success"]
        >>> asyncio.run(demo())
        True
    """

    def __init__(
        self,
        *,
        max_workers: int = 4,
        search_timeout: Optional[float] = None,
        l1_capacity: int = 256,
        store=None,
    ):
        self.search_timeout = search_timeout
        self.metrics = ServeMetrics()
        self.cache = ScheduleWarmStartCache(l1_capacity, store=store)
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._max_workers = max_workers
        # (fingerprint, source, opts_key) -> future of (record, origin)
        self._inflight: Dict[Tuple, "asyncio.Future"] = {}
        self._search_tasks: set = set()
        self._active_searches = 0
        self._active_lock = threading.Lock()
        self._closed = False
        # test hook: wraps the underlying search (e.g. to inject latency)
        self._search_fn = find_schedule

    # -- introspection ------------------------------------------------------
    def queue_depth(self) -> Dict[str, int]:
        """In-flight work: distinct coalesced keys, busy workers, queued keys."""
        with self._active_lock:
            active = self._active_searches
        inflight = len(self._inflight)
        return {
            "inflight_keys": inflight,
            "active_searches": active,
            "queued_searches": max(0, inflight - active),
            "max_workers": self._max_workers,
        }

    def snapshot(self) -> Dict[str, object]:
        """The stats payload: metrics + queue depth + warm-start accounting."""
        return {
            **self.metrics.as_dict(),
            "queue": self.queue_depth(),
            "warmstart": self.cache.stats.as_dict(),
            "l1_entries": len(self.cache),
        }

    # -- core ---------------------------------------------------------------
    async def schedule_net(
        self,
        net: PetriNet,
        sources: Sequence[str],
        options: Optional[SchedulerOptions],
        *,
        timeout=_UNSET,
    ) -> List[Dict[str, object]]:
        """Schedule ``sources`` of ``net``, returning per-source payloads.

        Sources are processed sequentially (see the module docstring); each
        one independently coalesces with any identical request currently in
        flight anywhere in the process.
        """
        options = options or SchedulerOptions()
        loop = asyncio.get_running_loop()
        # fingerprinting walks the whole net: off the event loop
        fingerprint = await loop.run_in_executor(
            self._executor, structural_fingerprint, net
        )
        payloads = []
        for source in sources:
            payloads.append(
                await self.schedule_source(
                    net, source, options, fingerprint=fingerprint, timeout=timeout
                )
            )
        return payloads

    async def schedule_source(
        self,
        net: PetriNet,
        source: str,
        options: SchedulerOptions,
        *,
        fingerprint: Optional[str] = None,
        timeout=_UNSET,
    ) -> Dict[str, object]:
        """One source's canonical response payload, coalescing duplicates.

        Raises :class:`ProtocolError` (kind ``timeout``) when the waiter
        deadline expires first; the underlying search is *not* cancelled.
        """
        if self._closed:
            raise ProtocolError("shutting-down", "service is draining")
        loop = asyncio.get_running_loop()
        if fingerprint is None:
            fingerprint = await loop.run_in_executor(
                self._executor, structural_fingerprint, net
            )
        opts_key = options_cache_key(options)
        if timeout is _UNSET:
            timeout = self.search_timeout
        if opts_key is None:
            # uncacheable (never happens via the wire protocol, but the
            # service API accepts arbitrary options): straight through
            self.metrics.bump("uncacheable")
            record, origin = await loop.run_in_executor(
                self._executor, self._compute, net, source, options, fingerprint
            )
            return self._payload(source, fingerprint, record, origin)
        key = (fingerprint, source, opts_key)
        future = self._inflight.get(key)
        if future is None:
            future = loop.create_future()
            # consume exceptions even if every waiter gave up before the
            # search finished, else the event loop logs a spurious warning
            future.add_done_callback(
                lambda f: f.exception() if not f.cancelled() else None
            )
            self._inflight[key] = future
            task = loop.create_task(
                self._drive_search(key, future, net, source, options, fingerprint)
            )
            self._search_tasks.add(task)
            task.add_done_callback(self._search_tasks.discard)
        else:
            self.metrics.bump("coalesced")
        try:
            # shield: a cancelled/timed-out waiter must not tear down the
            # shared search the other waiters are still attached to
            record, origin = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            self.metrics.bump("timeouts")
            raise ProtocolError(
                "timeout",
                f"scheduling {source!r} did not finish within {timeout}s "
                "(the search continues for other waiters)",
            )
        return self._payload(source, fingerprint, record, origin)

    async def _drive_search(
        self, key, future, net, source, options, fingerprint
    ) -> None:
        """Owner task of one in-flight key: runs the search, fans the result out."""
        loop = asyncio.get_running_loop()
        try:
            outcome = await loop.run_in_executor(
                self._executor, self._compute, net, source, options, fingerprint
            )
        except BaseException as error:  # noqa: BLE001 - fan the failure out
            if not future.done():
                if isinstance(error, ProtocolError):
                    future.set_exception(error)
                else:
                    future.set_exception(
                        ProtocolError("internal", f"scheduling failed: {error!r}")
                    )
        else:
            if not future.done():
                future.set_result(outcome)
        finally:
            self._inflight.pop(key, None)

    def _compute(self, net, source, options, fingerprint):
        """Executor-thread body: warm-start lookup, then a live search."""
        start = time.perf_counter()
        with self._active_lock:
            self._active_searches += 1
        try:
            record, origin = self.cache.lookup_record_with_origin(
                net, source, options, fingerprint=fingerprint
            )
            if record is None:
                result = self._search_fn(net, source, options=options)
                record_live_search(result.counters)
                record = result_to_record(result)
                self.cache.store_record(
                    net, source, options, record, fingerprint=fingerprint
                )
                origin = "search"
            if origin == "l1":
                self.metrics.bump("l1_hits")
            elif origin == "disk":
                self.metrics.bump("disk_hits")
            else:
                self.metrics.bump("live_searches")
            return record, origin
        finally:
            with self._active_lock:
                self._active_searches -= 1
            self.metrics.phases["search"].observe(time.perf_counter() - start)

    @staticmethod
    def _payload(
        source: str,
        net_fingerprint: str,
        record: Mapping[str, object],
        origin: str,
    ) -> Dict[str, object]:
        """The canonical per-source response body.

        Deliberately free of per-waiter detail (who coalesced, who owned the
        search): every one of N coalesced requesters receives byte-identical
        results, which is what the regression tests pin.
        """
        schedule = record.get("schedule")
        return {
            "source": source,
            "net_fingerprint": net_fingerprint,
            "success": schedule is not None,
            "schedule": schedule,
            "schedule_fingerprint": (
                schedule_dict_fingerprint(schedule) if schedule is not None else None
            ),
            "tree_nodes": record.get("tree_nodes"),
            "elapsed_seconds": record.get("elapsed_seconds"),
            "failure_reason": record.get("failure_reason"),
            "counters": record.get("counters"),
            "from_cache": origin in ("l1", "disk"),
        }

    # -- lifecycle ----------------------------------------------------------
    async def drain(self, deadline: Optional[float] = None) -> bool:
        """Stop admitting work and wait for in-flight searches to finish.

        Returns True when everything completed within ``deadline`` seconds
        (``None``: wait forever); leftover tasks keep running on the
        executor but their results are dropped.
        """
        self._closed = True
        pending = list(self._search_tasks)
        if not pending:
            return True
        done, not_done = await asyncio.wait(pending, timeout=deadline)
        return not not_done

    def close(self) -> None:
        """Release the executor (idempotent; in-flight threads finish first)."""
        self._closed = True
        self._executor.shutdown(wait=False)
