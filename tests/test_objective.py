"""Tests of the enumerate->score->select objective layer.

Four contracts, mirroring the refactor's acceptance bar:

* ``objective="first"`` (the default) is byte-identical to the
  pre-objective scheduler on every backend -- the enumeration machinery
  must be unobservable unless asked for;
* ``objective="cost"`` selection is deterministic across backends, intra
  worker counts and candidate limits (same winner, same score), and on the
  pinned corpus net it finds a schedule *strictly cheaper* than the
  first-found one;
* the static score and the single-task prediction agree with the ground
  truth: `predict_single_task` matches `SingleTaskSimulation`'s counters
  on corpus cases (the corpus `predict` stage holds this per generated
  case; here we pin one case directly);
* the option threads through every layer -- serialization records, the
  warm-start cache key, the daemon wire protocol -- and the WCET
  annotations feeding the timing terms survive the FlowC -> net trip.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.apps.paper_nets import figure_5, figure_8, simple_pipeline
from repro.corpus.generator import generate_spec
from repro.corpus.topologies import build_case
from repro.flowc.linker import link
from repro.flowc.parser import FlowCParseError, parse_process
from repro.petrinet.fingerprint import structural_fingerprint
from repro.scheduling.ep import OBJECTIVES, SchedulerOptions, find_schedule
from repro.scheduling.objective import cost_breakdown, score_schedule
from repro.scheduling.serialize import (
    result_from_record,
    result_to_record,
    schedule_fingerprint,
)
from repro.scheduling.warmstart import options_cache_key
from repro.serve.protocol import ProtocolError, options_from_dict

BACKENDS = ("scalar", "batched", "kernel")

#: Corpus case where the cost objective strictly beats first-found
#: (also pinned in the bench's ``objective`` section).
WIN_SEED, WIN_FAMILY, WIN_SOURCE = 20260877, "multi_source", "src.s2_p0.ev_s2_p0"


def _paper_cases():
    for build in (figure_5, figure_8, simple_pipeline):
        net = build()
        yield build.__name__, net, net.uncontrollable_sources()[0]


def _win_net():
    spec = generate_spec(WIN_SEED, WIN_FAMILY)
    return link(build_case(spec).network).net


# ---------------------------------------------------------------------------
# objective="first": exact backward compatibility
# ---------------------------------------------------------------------------


class TestFirstObjective:
    def test_first_is_the_default(self):
        options = SchedulerOptions()
        assert options.objective == "first"
        assert "first" in OBJECTIVES and "cost" in OBJECTIVES

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_first_matches_default_result(self, backend):
        for name, net, source in _paper_cases():
            default = find_schedule(
                net, source, options=SchedulerOptions(backend=backend)
            )
            explicit = find_schedule(
                net,
                source,
                options=SchedulerOptions(backend=backend, objective="first"),
            )
            assert default.success and explicit.success, name
            assert schedule_fingerprint(default.schedule) == schedule_fingerprint(
                explicit.schedule
            ), name
            assert default.tree_nodes == explicit.tree_nodes, name
            # enumeration never ran: no score, no stats
            assert explicit.objective == "first"
            assert explicit.score is None
            assert explicit.objective_stats is None

    def test_unknown_objective_rejected(self):
        net = figure_5()
        with pytest.raises(ValueError, match="objective"):
            find_schedule(
                net,
                net.uncontrollable_sources()[0],
                options=SchedulerOptions(objective="fastest"),
            )

    def test_nonpositive_candidate_limit_rejected(self):
        net = figure_5()
        with pytest.raises(ValueError, match="candidate_limit"):
            find_schedule(
                net,
                net.uncontrollable_sources()[0],
                options=SchedulerOptions(objective="cost", candidate_limit=0),
            )


# ---------------------------------------------------------------------------
# objective="cost": deterministic selection, strict improvement
# ---------------------------------------------------------------------------


class TestCostObjective:
    def test_selection_identical_across_backends_and_workers(self):
        net = _win_net()
        reference = None
        for backend in BACKENDS:
            for intra_workers in (1, 2):
                result = find_schedule(
                    net,
                    WIN_SOURCE,
                    options=SchedulerOptions(
                        backend=backend,
                        objective="cost",
                        candidate_limit=32,
                        intra_workers=intra_workers,
                    ),
                )
                assert result.success
                key = (
                    schedule_fingerprint(result.schedule),
                    result.score,
                    result.objective_stats["candidates"],
                    result.objective_stats["selected_fingerprint"],
                )
                if reference is None:
                    reference = key
                else:
                    assert key == reference, (backend, intra_workers)

    def test_cost_strictly_beats_first_on_pinned_corpus_net(self):
        """The acceptance witness: seed 20260877, source s2, 1151 < 1175."""
        net = _win_net()
        first = find_schedule(net, WIN_SOURCE)
        cost = find_schedule(
            net,
            WIN_SOURCE,
            options=SchedulerOptions(objective="cost", candidate_limit=32),
        )
        stats = cost.objective_stats
        assert stats["selected_score"] < stats["first_score"]
        assert cost.score == stats["selected_score"]
        assert stats["first_fingerprint"] == schedule_fingerprint(first.schedule)
        assert schedule_fingerprint(cost.schedule) != stats["first_fingerprint"]
        assert not stats["selected_is_first"]
        # the first-found schedule scores exactly what the stats recorded
        assert score_schedule(first.schedule) == stats["first_score"]
        assert score_schedule(cost.schedule) == stats["selected_score"]

    def test_candidate_limit_one_degenerates_to_first(self):
        net = _win_net()
        first = find_schedule(net, WIN_SOURCE)
        limited = find_schedule(
            net,
            WIN_SOURCE,
            options=SchedulerOptions(objective="cost", candidate_limit=1),
        )
        stats = limited.objective_stats
        assert stats["candidates"] == 1
        assert stats["selected_is_first"]
        assert schedule_fingerprint(limited.schedule) == schedule_fingerprint(
            first.schedule
        )

    def test_score_spread_is_consistent(self):
        net = _win_net()
        result = find_schedule(
            net,
            WIN_SOURCE,
            options=SchedulerOptions(objective="cost", candidate_limit=8),
        )
        stats = result.objective_stats
        assert stats["score_min"] <= stats["selected_score"] <= stats["score_max"]
        assert stats["selected_score"] <= stats["first_score"]
        assert 1 <= stats["candidates"] <= 8

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_forced_shape_nets_select_the_first_schedule(self, backend):
        """On the paper nets every candidate scores the same; the fingerprint
        tie-break plus first-candidate preference must keep selection stable
        and the returned schedule valid."""
        for name, net, source in _paper_cases():
            result = find_schedule(
                net,
                source,
                options=SchedulerOptions(
                    backend=backend, objective="cost", candidate_limit=4
                ),
            )
            assert result.success, name
            assert result.objective == "cost"
            assert result.score == score_schedule(result.schedule), name


# ---------------------------------------------------------------------------
# the static score itself
# ---------------------------------------------------------------------------


class TestScore:
    def test_breakdown_terms_sum_to_score(self):
        net = figure_5()
        result = find_schedule(net, net.uncontrollable_sources()[0])
        breakdown = cost_breakdown(result.schedule)
        assert breakdown.score == (
            breakdown.base_cycles
            + breakdown.context_switch_cycles
            + 4 * breakdown.latency
            + 2 * breakdown.jitter
        )
        assert breakdown.await_nodes == len(breakdown.segments) >= 1
        assert isinstance(breakdown.score, int)

    def test_score_is_deterministic(self):
        net = _win_net()
        result = find_schedule(net, WIN_SOURCE)
        assert score_schedule(result.schedule) == score_schedule(result.schedule)

    def test_wcet_annotations_raise_the_score(self):
        """Same seed with annotations stripped: identical schedule shape but
        zero latency/jitter terms, so the annotated net scores higher."""
        spec = generate_spec(WIN_SEED, WIN_FAMILY)
        assert any(p.wcet is not None for sub in spec.subsystems for p in sub.processes)
        stripped = replace(
            spec,
            subsystems=tuple(
                replace(
                    sub, processes=tuple(replace(p, wcet=None) for p in sub.processes)
                )
                for sub in spec.subsystems
            ),
        )
        annotated_net = link(build_case(spec).network).net
        stripped_net = link(build_case(stripped).network).net
        # WCET is part of result identity: the structural fingerprint (and
        # hence every cache key) must distinguish the two nets
        assert structural_fingerprint(annotated_net) != structural_fingerprint(
            stripped_net
        )
        annotated = find_schedule(annotated_net, WIN_SOURCE)
        plain = find_schedule(stripped_net, WIN_SOURCE)
        assert schedule_fingerprint(annotated.schedule) == schedule_fingerprint(
            plain.schedule
        )
        annotated_cost = cost_breakdown(annotated.schedule)
        plain_cost = cost_breakdown(plain.schedule)
        assert plain_cost.latency == 0 and plain_cost.jitter == 0
        assert annotated_cost.latency > 0
        assert annotated_cost.score > plain_cost.score
        assert annotated_cost.base_cycles == plain_cost.base_cycles


# ---------------------------------------------------------------------------
# the static prediction against the simulated ground truth
# ---------------------------------------------------------------------------


class TestPrediction:
    def test_prediction_matches_simulation_on_pinned_corpus_case(self):
        from repro.corpus.differential import prediction_problems
        from repro.runtime.simulation import SingleTaskSimulation
        from repro.scheduling.ep import find_all_schedules
        from repro.scheduling.objective import predict_single_task

        spec = generate_spec(WIN_SEED, WIN_FAMILY)
        case = build_case(spec)
        linked = link(case.network)
        results = find_all_schedules(linked.net)
        schedules = {source: r.schedule for source, r in results.items()}
        stimulus = case.manifest["stimulus"]
        simulated = SingleTaskSimulation(linked, schedules=schedules).run(stimulus)
        prediction = predict_single_task(linked, schedules, stimulus)
        assert prediction.context_switches == 0
        assert prediction.isr_dispatches == simulated.isr_dispatches
        assert prediction_problems(prediction, simulated) == []

    def test_corpus_predict_stage_passes_on_smoke_specs(self):
        """The `predict` pipeline stage (static counters vs SingleTaskSimulation)
        holds on one generated case per topology family."""
        from repro.corpus.differential import STAGES, run_case
        from repro.corpus.generator import FAMILIES

        assert "predict" in STAGES
        for index, family in enumerate(FAMILIES):
            spec = generate_spec(20260808 + index, family)
            outcome = run_case(spec)
            assert outcome.passed, (family, outcome.stage, outcome.detail)


# ---------------------------------------------------------------------------
# quasi-static emission (select & emit)
# ---------------------------------------------------------------------------


class TestQuasiStaticFusion:
    def _synthesize(self, fuse: bool):
        from repro.codegen.synthesis import SynthesisOptions, synthesize_task

        spec = generate_spec(20260809, "tree")
        linked = link(build_case(spec).network)
        source = linked.net.uncontrollable_sources()[0]
        result = find_schedule(linked.net, source)
        return synthesize_task(
            linked,
            result.schedule,
            options=SynthesisOptions(task_name="t", fuse_straightline=fuse),
        )

    def test_fusion_is_off_by_default_and_byte_identical(self):
        from repro.codegen.synthesis import SynthesisOptions

        assert SynthesisOptions().fuse_straightline is False
        plain = self._synthesize(fuse=False)
        assert plain.fused_segments == []

    def test_fusion_inlines_goto_only_segments(self):
        plain = self._synthesize(fuse=False)
        fused = self._synthesize(fuse=True)
        assert fused.fused_segments, "pinned tree case should fuse segments"
        # fused segment labels disappear from the emitted task...
        for label in fused.fused_segments:
            assert f"{label}:" not in fused.run_section
            assert f"goto {label};" not in fused.run_section
            # ...but existed in the un-fused emission
            assert f"{label}:" in plain.run_section
        assert fused.count_construct("labels") < plain.count_construct("labels")

    def test_fused_emission_has_no_dangling_gotos(self):
        import re

        fused = self._synthesize(fuse=True)
        labels = set(re.findall(r"^\s*(\w+):", fused.run_section, re.MULTILINE))
        targets = set(re.findall(r"goto (\w+);", fused.run_section))
        assert targets <= labels, targets - labels


# ---------------------------------------------------------------------------
# threading: serialization, cache key, wire protocol, FlowC WCET
# ---------------------------------------------------------------------------


class TestThreading:
    def test_serialized_record_carries_objective_and_score(self):
        net = _win_net()
        result = find_schedule(
            net,
            WIN_SOURCE,
            options=SchedulerOptions(objective="cost", candidate_limit=8),
        )
        record = result_to_record(result)
        assert record["objective"] == "cost"
        assert record["score"] == result.score
        revived = result_from_record(net, WIN_SOURCE, record)
        assert revived.objective == "cost"
        assert revived.score == result.score
        assert schedule_fingerprint(revived.schedule) == schedule_fingerprint(
            result.schedule
        )

    def test_pre_objective_records_default_to_first(self):
        net = figure_5()
        source = net.uncontrollable_sources()[0]
        result = find_schedule(net, source)
        record = result_to_record(result)
        record.pop("objective")
        record.pop("score")
        revived = result_from_record(net, source, record)
        assert revived.objective == "first"
        assert revived.score is None

    def test_cache_key_separates_first_from_cost(self):
        first_key = options_cache_key(SchedulerOptions())
        cost_key = options_cache_key(
            SchedulerOptions(objective="cost", candidate_limit=8)
        )
        assert first_key is not None and cost_key is not None
        assert first_key != cost_key
        # candidate_limit fragments the "cost" key space but never "first"
        assert options_cache_key(
            SchedulerOptions(objective="cost", candidate_limit=8)
        ) != options_cache_key(SchedulerOptions(objective="cost", candidate_limit=16))
        assert options_cache_key(
            SchedulerOptions(candidate_limit=8)
        ) == options_cache_key(SchedulerOptions(candidate_limit=16))

    def test_wire_protocol_accepts_and_validates_objective(self):
        options = options_from_dict({"objective": "cost", "candidate_limit": 16})
        assert options.objective == "cost"
        assert options.candidate_limit == 16
        with pytest.raises(ProtocolError):
            options_from_dict({"objective": "cheapest"})
        for bad_limit in (0, 65, True, "8"):
            with pytest.raises(ProtocolError):
                options_from_dict({"objective": "cost", "candidate_limit": bad_limit})

    def test_flowc_wcet_parses_and_links(self):
        process = parse_process(
            "PROCESS worker (In DPORT a, Out DPORT b) WCET(12) {\n"
            "    int x;\n"
            "    while (1) {\n"
            "        READ_DATA(a, &x, 1);\n"
            "        WRITE_DATA(b, x, 1);\n"
            "    }\n"
            "}"
        )
        assert process.wcet == 12
        spec = generate_spec(WIN_SEED, WIN_FAMILY)
        net = link(build_case(spec).network).net
        annotated = {
            proc.name: proc.wcet
            for sub in spec.subsystems
            for proc in sub.processes
            if proc.wcet is not None
        }
        assert annotated, "pinned seed should carry WCET annotations"
        for name, wcet in annotated.items():
            assert net.process_wcet[name] == wcet
        assert set(net.process_wcet) == set(annotated)

    def test_flowc_wcet_rejects_negative(self):
        with pytest.raises(FlowCParseError):
            parse_process(
                "PROCESS worker (In DPORT a) WCET(-1) {\n"
                "    int x;\n"
                "    while (1) {\n"
                "        READ_DATA(a, &x, 1);\n"
                "    }\n"
                "}"
            )
