"""Tests for T-invariant computation and the binate covering heuristic."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import paper_nets
from repro.apps.workloads import random_marked_graph
from repro.petrinet.covering import (
    BinateCoveringProblem,
    build_candidate_invariant_problem,
    solve_binate_covering,
)
from repro.petrinet.invariants import (
    combine_invariants,
    firing_count_vector,
    incidence_matrix,
    invariant_support,
    is_t_invariant,
    subtract_firings,
    t_invariant_basis,
)


def test_incidence_matrix_shape_and_values():
    net = paper_nets.figure_8()
    matrix, places, transitions = incidence_matrix(net)
    assert matrix.shape == (len(places), len(transitions))
    a_col = transitions.index("a")
    p1_row = places.index("p1")
    assert matrix[p1_row, a_col] == 1
    e_col = transitions.index("e")
    p3_row = places.index("p3")
    assert matrix[p3_row, e_col] == -2


def test_t_invariants_of_figure_8():
    net = paper_nets.figure_8()
    basis = t_invariant_basis(net)
    assert basis, "figure 8 admits T-invariants"
    for invariant in basis:
        assert is_t_invariant(net, invariant)
    # the b/d cycle: a + b + d is an invariant; the c/e cycle needs 2 a and 2 c
    supports = {frozenset(invariant) for invariant in basis}
    assert frozenset({"a", "b", "d"}) in supports
    assert frozenset({"a", "c", "e"}) in supports


def test_t_invariants_of_figure_5_cover_both_sources():
    net = paper_nets.figure_5()
    basis = t_invariant_basis(net)
    all_support = set().union(*(invariant_support(inv) for inv in basis))
    assert {"a", "b", "c", "d", "e", "f"} <= all_support


def test_net_without_invariants():
    net = paper_nets.figure_4b()
    # a and b feed c, which has no way to return tokens: invariants exist only
    # with both sources, never with c alone... the combined {a, b, c} is one.
    basis = t_invariant_basis(net)
    for invariant in basis:
        assert is_t_invariant(net, invariant)


def test_is_t_invariant_rejects_wrong_vector():
    net = paper_nets.figure_8()
    assert not is_t_invariant(net, {"a": 1})
    assert not is_t_invariant(net, {"nonexistent": 1})
    assert not is_t_invariant(net, {"a": -1, "b": 1})


def test_combine_and_subtract_invariants():
    a = {"x": 1, "y": 2}
    b = {"y": 1}
    combined = combine_invariants([a, b])
    assert combined == {"x": 1, "y": 3}
    fired = firing_count_vector(["x", "y", "y", "y"])
    assert fired == {"x": 1, "y": 3}
    assert subtract_firings(combined, fired) is None
    assert subtract_firings(combined, {"y": 1}) == {"x": 1, "y": 2}


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=100))
def test_marked_graph_invariants_property(transitions, seed):
    """Strongly-connected marked graphs always have the all-ones T-invariant."""
    net = random_marked_graph(transitions, seed=seed)
    matrix, _places, names = incidence_matrix(net)
    ones = np.ones(len(names), dtype=np.int64)
    assert np.all(matrix @ ones == 0)
    basis = t_invariant_basis(net)
    assert basis
    for invariant in basis:
        assert is_t_invariant(net, invariant)


# ---------------------------------------------------------------------------
# binate covering
# ---------------------------------------------------------------------------


def test_binate_covering_simple_feasible():
    problem = BinateCoveringProblem(columns=["x", "y", "z"])
    problem.add_row({"x": 0, "y": 1})   # picking x requires y
    problem.add_row({"z": 1})            # z satisfies this row outright
    solution = solve_binate_covering(problem)
    assert solution is not None
    assert problem.is_feasible(solution)


def test_binate_covering_respects_initial_selection():
    problem = BinateCoveringProblem(columns=["a", "b"])
    problem.add_row({"a": 0, "b": 1})
    solution = solve_binate_covering(problem, initial={"a"})
    assert solution is not None
    assert problem.is_feasible(solution)


def test_binate_covering_unknown_column_rejected():
    problem = BinateCoveringProblem(columns=["a"])
    with pytest.raises(ValueError):
        problem.add_row({"nope": 1})


def test_build_candidate_invariant_problem():
    problem = build_candidate_invariant_problem(
        ["inv0", "inv1"], [("inv0", frozenset({"inv1"}))]
    )
    assert problem.columns == ["inv0", "inv1"]
    solution = solve_binate_covering(problem, initial={"inv0"})
    assert solution is not None
    # the offending invariant needs the helper to be feasible
    assert problem.is_feasible(solution)


# ---------------------------------------------------------------------------
# binate covering: bitmask-solver edge cases (pinning the PR 1 rewrite)
# ---------------------------------------------------------------------------


def test_binate_covering_empty_clause_set():
    """No rows: everything is feasible and minimisation drops every column."""
    problem = BinateCoveringProblem(columns=["a", "b", "c"])
    solution = solve_binate_covering(problem)
    assert solution == set()
    assert problem.is_feasible(solution)
    # an explicit initial selection is also already feasible and minimises away
    assert solve_binate_covering(problem, initial={"a"}) == set()


def test_binate_covering_no_columns():
    problem = BinateCoveringProblem(columns=[])
    assert solve_binate_covering(problem) == set()


def test_binate_covering_single_positive_literal_rows_are_implications():
    """Rows are implication clauses: a pure-positive row {x: 1} is satisfied
    by the *empty* selection (no selected 0-column), it does not force x.
    Mandatory columns are the caller's job (the ``initial`` selection plus
    the ``solution & mandatory`` check in the heuristics layer)."""
    problem = BinateCoveringProblem(columns=["x", "y"])
    problem.add_row({"x": 1})
    assert problem.row_satisfied({"x": 1}, set())
    assert solve_binate_covering(problem, initial=set()) == set()
    # starting from everything selected, minimisation still drops to empty
    assert solve_binate_covering(problem) == set()


def test_binate_covering_single_negative_literal_bans_the_column():
    """A row {x: 0} with no positive literal: x can never stay selected."""
    problem = BinateCoveringProblem(columns=["x", "y"])
    problem.add_row({"x": 0})
    solution = solve_binate_covering(problem)  # default initial selects all
    assert solution is not None
    assert "x" not in solution
    assert problem.is_feasible(solution)
    assert not problem.is_feasible({"x"})
    assert not problem.is_feasible({"x", "y"})


def test_binate_covering_unsatisfiable_for_the_greedy_repair():
    """Instances where the repair moves oscillate return None.

    {a: 0, b: 1} (a needs b) plus {b: 0} (b banned): from any selection
    containing a, move 1 adds b, move 2 removes b, forever -- the iteration
    cap trips and the solver reports no solution even though the empty
    selection is trivially feasible.  This pins the *heuristic* nature of
    the solver; callers must tolerate None on feasible instances.
    """
    problem = BinateCoveringProblem(columns=["a", "b"])
    problem.add_row({"a": 0, "b": 1})
    problem.add_row({"b": 0})
    assert solve_binate_covering(problem, initial={"a"}) is None
    assert solve_binate_covering(problem) is None
    # ... although the instance itself is feasible:
    assert problem.is_feasible(set())
    assert problem.is_feasible({"b"}) is False  # b stays banned
    assert solve_binate_covering(problem, initial=set()) == set()


def test_binate_covering_mutual_dependency_survives_minimisation():
    """a needs b and b needs a: starting from {a}, move 1 pulls b in, and
    neither column can be dropped by the minimisation pass (removing either
    violates the other's row)."""
    problem = BinateCoveringProblem(columns=["a", "b"])
    problem.add_row({"a": 0, "b": 1})    # a needs b
    problem.add_row({"b": 0, "a": 1})    # b needs a
    solution = solve_binate_covering(problem, initial={"a"})
    assert solution == {"a", "b"}
    assert problem.is_feasible(solution)


def test_binate_covering_weights_steer_the_repair_choice():
    """When two helpers fix the same violated row, the cheaper one is added."""

    def solve_with(weights):
        problem = BinateCoveringProblem(columns=["a", "b", "c"], weights=weights)
        problem.add_row({"a": 0, "b": 1, "c": 1})  # a needs b or c
        problem.add_row({"b": 0, "a": 1})          # interlocks: keep a around
        problem.add_row({"c": 0, "a": 1})
        return solve_binate_covering(problem, initial={"a"})

    assert solve_with({"b": 10}) == {"a", "c"}
    assert solve_with({"c": 10}) == {"a", "b"}


def test_binate_covering_row_satisfaction_semantics():
    """row_satisfied: a selected 1-column wins, else no selected 0-column."""
    problem = BinateCoveringProblem(columns=["a", "b"])
    row = {"a": 0, "b": 1}
    assert problem.row_satisfied(row, {"b"})
    assert problem.row_satisfied(row, {"a", "b"})
    assert problem.row_satisfied(row, set())
    assert not problem.row_satisfied(row, {"a"})
