"""Tests for the Petri net kernel: structure, firing, analysis, reachability."""

from __future__ import annotations

import pytest

from repro.apps import paper_nets
from repro.petrinet.analysis import (
    ChoiceKind,
    StructuralAnalysis,
    all_place_degrees,
    classify_choice_place,
    compute_ecs_partition,
    ecs_of_transition,
    enabled_ecss,
    is_unique_choice_net,
    place_degree,
)
from repro.petrinet.marking import Marking
from repro.petrinet.net import ArcError, PetriNet, PetriNetError, SourceKind, merge_nets
from repro.petrinet.reachability import (
    build_reachability_graph,
    find_deadlocks,
    is_bounded,
    reachable_markings,
)


# ---------------------------------------------------------------------------
# construction and firing
# ---------------------------------------------------------------------------


def simple_net() -> PetriNet:
    net = PetriNet(name="simple")
    net.add_place("p1", 1)
    net.add_place("p2")
    net.add_transition("t")
    net.add_arc("p1", "t")
    net.add_arc("t", "p2", 2)
    return net


def test_duplicate_names_rejected():
    net = PetriNet()
    net.add_place("x")
    with pytest.raises(PetriNetError):
        net.add_place("x")
    with pytest.raises(PetriNetError):
        net.add_transition("x")
    net.add_transition("t")
    with pytest.raises(PetriNetError):
        net.add_place("t")


def test_arc_validation():
    net = simple_net()
    with pytest.raises(ArcError):
        net.add_arc("p1", "p2")
    with pytest.raises(ArcError):
        net.add_arc("t", "t")
    with pytest.raises(ArcError):
        net.add_arc("p1", "t", 0)


def test_firing_semantics():
    net = simple_net()
    m0 = net.initial_marking
    assert net.is_enabled("t", m0)
    m1 = net.fire("t", m0)
    assert m1 == Marking({"p2": 2})
    assert not net.is_enabled("t", m1)
    with pytest.raises(PetriNetError):
        net.fire("t", m1)


def test_fire_sequence_and_fireability():
    net = paper_nets.figure_5()
    assert net.is_fireable_sequence(["a", "b", "c"])
    assert not net.is_fireable_sequence(["b"])
    final = net.fire_sequence(["a", "b", "c"])
    assert final == net.initial_marking


def test_weighted_arcs_accumulate():
    net = PetriNet()
    net.add_place("p", 3)
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("p", "t", 2)
    assert net.weight_pt("p", "t") == 3


def test_copy_and_merge():
    net = simple_net()
    clone = net.copy("clone")
    assert clone.stats() == net.stats()
    other = PetriNet(name="other")
    other.add_place("q", 1)
    other.add_transition("u")
    other.add_arc("q", "u")
    merged = merge_nets([net, other])
    assert set(merged.places) == {"p1", "p2", "q"}
    assert set(merged.transitions) == {"t", "u"}
    with pytest.raises(PetriNetError):
        merge_nets([net, net])


def test_source_and_classification_queries():
    net = paper_nets.figure_4a()
    assert set(net.source_transitions()) == {"a", "b"}
    assert net.uncontrollable_sources() == ["a", "b"]
    assert net.controllable_sources() == []
    assert net.transitions["a"].is_uncontrollable_source


def test_to_dot_contains_all_nodes():
    net = simple_net()
    dot = net.to_dot()
    for name in ["p1", "p2", "t"]:
        assert name in dot


def test_validate_detects_dangling_reference():
    net = simple_net()
    net.initial_tokens["ghost"] = 1
    with pytest.raises(PetriNetError):
        net.validate()


# ---------------------------------------------------------------------------
# structural analysis
# ---------------------------------------------------------------------------


def test_ecs_partition_of_figure_8():
    net = paper_nets.figure_8()
    partition = compute_ecs_partition(net)
    as_sets = {frozenset(ecs) for ecs in partition}
    assert frozenset({"b", "c"}) in as_sets
    assert frozenset({"a"}) in as_sets
    assert frozenset({"d"}) in as_sets
    assert frozenset({"e"}) in as_sets
    # the partition covers every transition exactly once
    all_transitions = [t for ecs in partition for t in ecs]
    assert sorted(all_transitions) == sorted(net.transitions)


def test_ecs_of_transition_and_enabled_ecss():
    net = paper_nets.figure_8()
    assert ecs_of_transition(net, "b") == frozenset({"b", "c"})
    m = net.fire("a", net.initial_marking)
    enabled = {frozenset(e) for e in enabled_ecss(net, m)}
    assert frozenset({"b", "c"}) in enabled
    assert frozenset({"a"}) in enabled  # sources are always enabled


def test_place_degree_definition():
    net = paper_nets.figure_8()
    # p3: input weight 1 (from c), output weight 2 (to e) -> degree 2
    assert place_degree(net, "p3") == 2
    assert place_degree(net, "p1") == 1
    degrees = all_place_degrees(net)
    assert degrees["p3"] == 2


def test_place_degree_respects_initial_marking():
    net = PetriNet()
    net.add_place("p", 5)
    net.add_transition("t")
    net.add_arc("p", "t")
    assert place_degree(net, "p") == 5


def test_choice_place_classification_equal_choice(divisors_system):
    net = divisors_system.net
    analysis = StructuralAnalysis.of(net)
    # the while/if condition places are equal choices
    equal_choices = [
        p
        for p in net.choice_places()
        if classify_choice_place(net, p, analysis.partition) is ChoiceKind.EQUAL
    ]
    assert equal_choices, "the divisors net must contain equal choice places"


def test_divisors_net_is_unique_choice(divisors_system):
    assert is_unique_choice_net(divisors_system.net)


def test_structural_analysis_bundle(divisors_system):
    analysis = StructuralAnalysis.of(divisors_system.net)
    assert analysis.uncontrollable == {"src.divisors.in"}
    ecs = analysis.ecs_of("src.divisors.in")
    assert analysis.is_source_ecs(ecs)
    assert analysis.ecs_label(frozenset({"b", "a"})) == "a_b"


# ---------------------------------------------------------------------------
# reachability
# ---------------------------------------------------------------------------


def test_reachability_of_figure_5():
    net = paper_nets.figure_5()
    graph = build_reachability_graph(net, max_nodes=200, max_tokens_per_place=2)
    assert net.initial_marking in graph.index_of
    # firing a then b then c returns to the initial marking: the graph has a cycle
    assert len(graph) > 1


def test_reachability_respects_node_budget():
    net = paper_nets.figure_4a()  # sources make the graph infinite
    graph = build_reachability_graph(net, max_nodes=50)
    assert len(graph) <= 50
    assert not graph.complete


def test_is_bounded_detects_unbounded_place():
    net = PetriNet()
    net.add_place("p")
    net.add_transition("src", source_kind=SourceKind.UNCONTROLLABLE)
    net.add_arc("src", "p")
    assert not is_bounded(net, bound=3, max_nodes=50)


def test_find_deadlocks_reports_terminal_markings():
    net = PetriNet()
    net.add_place("p", 1)
    net.add_place("q")
    net.add_transition("t")
    net.add_arc("p", "t")
    net.add_arc("t", "q")
    deadlocks = find_deadlocks(net, max_nodes=10)
    assert Marking({"q": 1}) in deadlocks


def test_reachable_markings_wrapper():
    net = paper_nets.figure_5()
    markings = reachable_markings(net, max_nodes=100, max_tokens_per_place=1)
    assert net.initial_marking in markings


def test_structural_analysis_enabled_ecss_detects_stale_snapshot():
    """The enabled_ecss fast path must not trust a snapshot the sanctioned
    mutators (add_place/add_arc) made stale: they bump the version but leave
    the old IndexedNet object in place."""
    from repro.petrinet.analysis import StructuralAnalysis

    net = paper_nets.figure_5()
    analysis = StructuralAnalysis.of(net)
    before = [sorted(ecs) for ecs in analysis.enabled_ecss(net.initial_marking)]
    assert ["a"] in before  # the source is enabled while unguarded
    net.add_place("gate")
    net.add_arc("gate", "a")  # now 'a' needs a token the marking lacks
    after = [sorted(ecs) for ecs in analysis.enabled_ecss(net.initial_marking)]
    truth = [
        sorted(ecs)
        for ecs in StructuralAnalysis.of(net).enabled_ecss(net.initial_marking)
    ]
    assert after == truth
    assert ["a"] not in after


def test_bounded_lru_eviction_and_recency():
    from repro.util import BoundedLRU

    lru = BoundedLRU(2)
    lru.put("a", 1)
    lru.put("b", 2)
    assert lru.get("a") == 1  # refreshes recency: 'b' is now the stalest
    lru.put("c", 3)
    assert "b" not in lru and "a" in lru and "c" in lru
    assert len(lru) == 2
    with pytest.raises(ValueError):
        BoundedLRU(0)


def test_bounded_lru_on_evict_callback():
    """Eviction (LRU displacement, overwrite, clear) releases values exactly once."""
    from repro.util import BoundedLRU

    released = []
    lru = BoundedLRU(2, on_evict=lambda key, value: released.append((key, value)))
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("c", 3)  # displaces the stalest ('a')
    assert released == [("a", 1)]
    lru.put("b", 20)  # overwrite releases the replaced value
    assert released == [("a", 1), ("b", 2)]
    lru.put("b", 20)  # re-putting the same object is not an eviction
    assert released == [("a", 1), ("b", 2)]
    lru.clear()  # stalest-first: 'c' was not touched since its put
    assert released == [("a", 1), ("b", 2), ("c", 3), ("b", 20)]
    assert len(lru) == 0
