"""The persistent artifact cache: round-trips, failure modes, acceptance.

Three layers of coverage:

* the store backends themselves (sqlite + JSON-dir): wire-format integrity,
  quarantine, concurrent writers, unusable locations;
* the scheduling integration: two-level warm start, replay validation,
  fingerprint-collision rejection, parallel read-through, the T-invariant
  basis disk store, the CLI;
* the headline acceptance: a **second process** running the same workload
  replays byte-identical schedules from disk with zero EP-search node
  expansions (``LIVE_SEARCH_COUNTERS``).

Every failure mode must degrade to a cache miss -- never an exception,
never a wrong schedule.
"""

from __future__ import annotations

import json
import os
import sqlite3
import subprocess
import sys
import threading
from pathlib import Path

import pytest

import repro.cache as artifact_cache
from repro.apps.divisors import build_divisors_system
from repro.apps.paper_nets import figure_4b, figure_5, figure_6
from repro.apps.workloads import random_multi_source_net
from repro.cache import (
    JsonDirStore,
    NullStore,
    SqliteStore,
    load_invariant_basis,
    load_schedule_record,
    open_store,
    options_fingerprint,
    schedule_cache_key,
    store_schedule_record,
)
from repro.cache.cli import main as cache_cli
from repro.cache.stores import SCHEMA_VERSION, decode_wire, encode_wire
from repro.petrinet.fingerprint import incidence_fingerprint, structural_fingerprint
from repro.petrinet.invariants import t_invariant_basis
from repro.scheduling.ep import SchedulerOptions, find_all_schedules, find_schedule
from repro.scheduling.serialize import result_to_record, schedule_to_json
from repro.scheduling.termination import NodeBudget
from repro.scheduling.warmstart import (
    LIVE_SEARCH_COUNTERS,
    GLOBAL_SCHEDULE_CACHE,
    ScheduleWarmStartCache,
    options_cache_key,
)

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _isolated_cache_state():
    """No test leaks an active store or warm-start state into the next."""
    from repro.petrinet import invariants as invariants_module

    artifact_cache.reset_active_store()
    GLOBAL_SCHEDULE_CACHE.clear()
    invariants_module._BASIS_WARM_STORE.clear()
    yield
    artifact_cache.reset_active_store()
    GLOBAL_SCHEDULE_CACHE.clear()
    invariants_module._BASIS_WARM_STORE.clear()


@pytest.fixture(params=["sqlite", "json"])
def store(request, tmp_path):
    s = open_store(tmp_path / "cache", backend=request.param)
    assert s.backend_name == request.param
    yield s
    s.close()


def _live_nodes() -> int:
    return LIVE_SEARCH_COUNTERS.nodes_expanded


# ---------------------------------------------------------------------------
# store backends
# ---------------------------------------------------------------------------


def test_store_roundtrip_and_clear(store):
    assert store.get("schedule", "missing") is None
    store.put("schedule", "k1", {"value": [1, 2, {"deep": "x"}]})
    store.put("t_invariant_basis", "k2", {"basis": []})
    assert store.get("schedule", "k1") == {"value": [1, 2, {"deep": "x"}]}
    kinds = sorted(e.kind for e in store.entries())
    assert kinds == ["schedule", "t_invariant_basis"]
    store.delete("schedule", "k1")
    assert store.get("schedule", "k1") is None
    store.clear()
    assert store.entries() == []
    assert store.stats.puts == 2


def test_wire_codec_rejects_tampering():
    blob = encode_wire({"a": 1})
    assert decode_wire(blob) == {"a": 1}
    assert decode_wire("not json {") is None
    assert decode_wire(json.dumps({"schema": 999, "payload": {}, "checksum": ""})) is None
    wire = json.loads(blob)
    wire["payload"]["a"] = 2  # payload no longer matches the checksum
    assert decode_wire(json.dumps(wire)) is None


def test_corrupt_entry_is_quarantined_not_raised(store):
    store.put("schedule", "k", {"fine": True})
    # corrupt the stored blob behind the store's back
    if isinstance(store, SqliteStore):
        conn = sqlite3.connect(store.path)
        conn.execute("UPDATE entries SET blob = ? WHERE key = ?", ("garbage{", "k"))
        conn.commit()
        conn.close()
    else:
        path = store._path("schedule", "k")
        path.write_text(path.read_text()[: 10], encoding="utf-8")  # truncated JSON
    assert store.get("schedule", "k") is None  # miss, no exception
    assert store.stats.quarantined == 1
    assert store.quarantined_count() == 1
    assert store.get("schedule", "k") is None  # stays gone from the lookup path


def test_corrupt_sqlite_database_file_degrades_to_miss(tmp_path):
    root = tmp_path / "cache"
    root.mkdir()
    (root / SqliteStore.FILENAME).write_bytes(b"this is not a sqlite database at all")
    store = open_store(root, backend="sqlite")
    assert store.backend_name == "sqlite"  # rotated the bad file, started fresh
    assert store.get("schedule", "k") is None
    store.put("schedule", "k", {"ok": 1})
    assert store.get("schedule", "k") == {"ok": 1}
    assert (root / f"{SqliteStore.FILENAME}.corrupt-0").exists()


def test_unwritable_location_yields_null_store(tmp_path):
    blocker = tmp_path / "blocker"
    blocker.write_text("a file, not a directory")
    store = open_store(blocker / "sub")  # cannot mkdir below a file
    assert isinstance(store, NullStore)
    store.put("schedule", "k", {"x": 1})  # swallowed
    assert store.get("schedule", "k") is None
    assert store.entries() == []


@pytest.mark.skipif(os.geteuid() == 0, reason="root ignores directory permissions")
def test_readonly_directory_yields_null_store(tmp_path):
    root = tmp_path / "ro"
    root.mkdir()
    root.chmod(0o555)
    try:
        store = open_store(root / "cache")
        assert isinstance(store, NullStore)
        assert store.get("schedule", "k") is None
    finally:
        root.chmod(0o755)


def test_concurrent_writers_never_raise(store):
    errors = []

    def writer(worker: int) -> None:
        try:
            for i in range(25):
                store.put("schedule", f"w{worker}-{i}", {"worker": worker, "i": i})
                store.get("schedule", f"w{worker}-{i}")
        except Exception as error:  # the contract: stores never raise
            errors.append(error)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert store.get("schedule", "w0-0") == {"worker": 0, "i": 0}
    assert len(store.entries()) == 100


def test_concurrent_processes_share_one_sqlite_store(tmp_path):
    """Two processes hammering the same sqlite file: no exceptions, last wins."""
    root = tmp_path / "cache"
    script = (
        "import sys; sys.path.insert(0, {src!r})\n"
        "from repro.cache import open_store\n"
        "store = open_store({root!r}, backend='sqlite')\n"
        "for i in range(50):\n"
        "    store.put('schedule', f'k{{i}}', {{'who': sys.argv[1], 'i': i}})\n"
        "assert store.get('schedule', 'k0') is not None\n"
    ).format(src=str(REPO_ROOT / "src"), root=str(root))
    procs = [
        subprocess.Popen([sys.executable, "-c", script, name])
        for name in ("alpha", "beta")
    ]
    for proc in procs:
        assert proc.wait(timeout=60) == 0
    store = open_store(root, backend="sqlite")
    assert len(store.entries()) == 50
    assert store.get("schedule", "k49")["who"] in {"alpha", "beta"}


# ---------------------------------------------------------------------------
# schedule records: validation gauntlet
# ---------------------------------------------------------------------------


def _record_for(net, source="src.divisors.in"):
    return result_to_record(find_schedule(net, source, raise_on_failure=True))


def test_schedule_record_roundtrip(store):
    net = build_divisors_system().net
    record = _record_for(net)
    fp = structural_fingerprint(net)
    ofp = options_fingerprint(options_cache_key(SchedulerOptions()))
    store_schedule_record(
        store, net_fingerprint=fp, source="src.divisors.in", options_fp=ofp, record=record
    )
    loaded = load_schedule_record(
        store, net, net_fingerprint=fp, source="src.divisors.in", options_fp=ofp
    )
    assert loaded is not None
    assert loaded["schedule"] == record["schedule"]
    assert loaded["counters"] == record["counters"]


def test_stale_fingerprint_collision_is_rejected(store):
    """An entry whose key matches but whose payload belongs to a different
    net must not be trusted: identity check first, replay validation second."""
    divisors = build_divisors_system().net
    other = figure_6()
    record = _record_for(divisors)
    fp_other = structural_fingerprint(other)
    ofp = options_fingerprint(options_cache_key(SchedulerOptions()))
    # case 1: payload declares a different fingerprint than the key position
    store.put(
        "schedule",
        schedule_cache_key(fp_other, "src.divisors.in", ofp),
        {
            "net_fingerprint": "somebody-else",
            "source": "src.divisors.in",
            "options_fp": ofp,
            "record": record,
        },
    )
    assert (
        load_schedule_record(
            store, other, net_fingerprint=fp_other, source="src.divisors.in", options_fp=ofp
        )
        is None
    )
    # case 2: identity lines up but the schedule cannot replay on this net
    store.put(
        "schedule",
        schedule_cache_key(fp_other, "src.divisors.in", ofp),
        {
            "net_fingerprint": fp_other,
            "source": "src.divisors.in",
            "options_fp": ofp,
            "record": record,  # a divisors schedule: places unknown to figure_6
        },
    )
    assert (
        load_schedule_record(
            store, other, net_fingerprint=fp_other, source="src.divisors.in", options_fp=ofp
        )
        is None
    )
    assert store.quarantined_count() == 2


def test_malformed_record_shapes_are_rejected(store):
    net = build_divisors_system().net
    fp = structural_fingerprint(net)
    ofp = options_fingerprint(options_cache_key(SchedulerOptions()))
    good = _record_for(net)
    for bad in (
        {"schedule": None},  # missing required fields
        {**good, "counters": {"nodes_expanded": 1, "not_a_counter": 2}},
        {**good, "counters": "nope"},
    ):
        store.put(
            "schedule",
            schedule_cache_key(fp, "src.divisors.in", ofp),
            {
                "net_fingerprint": fp,
                "source": "src.divisors.in",
                "options_fp": ofp,
                "record": bad,
            },
        )
        assert (
            load_schedule_record(
                store, net, net_fingerprint=fp, source="src.divisors.in", options_fp=ofp
            )
            is None
        )


def test_schema_version_mismatch_is_a_miss(store):
    net = build_divisors_system().net
    fp = structural_fingerprint(net)
    ofp = options_fingerprint(options_cache_key(SchedulerOptions()))
    key = schedule_cache_key(fp, "src.divisors.in", ofp)
    payload = {
        "net_fingerprint": fp,
        "source": "src.divisors.in",
        "options_fp": ofp,
        "record": _record_for(net),
    }
    wire = json.loads(encode_wire(payload))
    wire["schema"] = SCHEMA_VERSION + 1
    store._write("schedule", key, json.dumps(wire))
    assert load_schedule_record(
        store, net, net_fingerprint=fp, source="src.divisors.in", options_fp=ofp
    ) is None


# ---------------------------------------------------------------------------
# warm-start integration
# ---------------------------------------------------------------------------


def test_two_level_cache_replays_across_instances(store):
    """A fresh cache instance (fresh L1) replays from the shared disk level,
    simulating a second process without forking one."""
    net = build_divisors_system().net
    first_cache = ScheduleWarmStartCache(store=store)
    first = first_cache.find_schedule(net, "src.divisors.in")
    assert not first.from_cache and first_cache.stats.misses == 1

    second_cache = ScheduleWarmStartCache(store=store)
    before = _live_nodes()
    replay = second_cache.find_schedule(build_divisors_system().net, "src.divisors.in")
    assert replay.from_cache
    assert second_cache.stats.disk_hits == 1 and second_cache.stats.misses == 0
    assert _live_nodes() == before  # zero EP search work
    assert schedule_to_json(replay.schedule) == schedule_to_json(first.schedule)
    assert replay.counters.as_dict() == first.counters.as_dict()


def test_failure_outcomes_replay_from_disk(store):
    net = figure_4b()
    cache = ScheduleWarmStartCache(store=store)
    first = cache.find_schedule(net, "a")
    assert not first.success and not first.from_cache
    second = ScheduleWarmStartCache(store=store).find_schedule(figure_4b(), "a")
    assert not second.success and second.from_cache
    assert second.failure_reason == first.failure_reason


def test_uncacheable_options_bypass_the_store(store):
    net = figure_5()
    cache = ScheduleWarmStartCache(store=store)
    options = SchedulerOptions(termination=NodeBudget(10_000))
    result = cache.find_schedule(net, "a", options=options)
    assert result.success and not result.from_cache
    assert cache.stats.uncacheable == 1
    assert store.entries() == []  # nothing persisted (or even keyed)


def test_memory_only_instance_ignores_active_store(tmp_path):
    """store=False keeps *schedules* memory-only; the T-invariant basis
    store is process-wide and still uses the active disk store."""
    artifact_cache.activate(path=tmp_path / "cache")
    cache = ScheduleWarmStartCache(store=False)
    cache.find_schedule(figure_5(), "a")
    entries = artifact_cache.active_store().entries()
    assert [e for e in entries if e.kind == "schedule"] == []


def test_options_key_differences_miss(store):
    net = figure_5()
    cache = ScheduleWarmStartCache(store=store)
    cache.find_schedule(net, "a", options=SchedulerOptions(backend="scalar"))
    other = ScheduleWarmStartCache(store=store)
    result = other.find_schedule(net, "a", options=SchedulerOptions(backend="batched"))
    assert not result.from_cache  # backend is part of the key
    assert other.stats.misses == 1


def test_invariant_basis_persists_and_validates(tmp_path):
    store = artifact_cache.activate(path=tmp_path / "cache")
    net = figure_5()
    basis = t_invariant_basis(net)
    assert any(e.kind == "t_invariant_basis" for e in store.entries())
    # clear the in-process warm stores: a rebuilt net + cleared LRU must hit disk
    from repro.petrinet import invariants as invariants_module

    invariants_module._BASIS_WARM_STORE.clear()
    hits_before = store.stats.hits
    replayed = t_invariant_basis(figure_5())
    assert replayed == basis
    assert store.stats.hits == hits_before + 1
    # corrupt the stored basis: must be quarantined and recomputed, not trusted
    fp = incidence_fingerprint(net)
    key = artifact_cache.basis_cache_key(fp, 4096)
    store.put(
        "t_invariant_basis",
        key,
        {"incidence_fingerprint": fp, "max_rows": 4096, "basis": [{"a": 1, "zzz": 3}]},
    )
    invariants_module._BASIS_WARM_STORE.clear()
    assert load_invariant_basis(store, net, incidence_fp=fp, max_rows=4096) is None
    assert t_invariant_basis(figure_5()) == basis


def test_parallel_read_through_and_parent_writes(tmp_path):
    """Workers never touch the store: the parent reads through before the
    fan-out and funnels every fresh record's write itself."""
    store = artifact_cache.activate(path=tmp_path / "cache")
    net = random_multi_source_net(3, 4, seed=7)
    first = find_all_schedules(net, workers=2)
    assert not any(r.from_cache for r in first.values())
    assert sum(1 for e in store.entries() if e.kind == "schedule") == 3

    GLOBAL_SCHEDULE_CACHE.drop_memory()  # force the disk path
    before = _live_nodes()
    replay = find_all_schedules(random_multi_source_net(3, 4, seed=7), workers=2)
    assert all(r.from_cache for r in replay.values())
    assert _live_nodes() == before
    for source in first:
        assert schedule_to_json(replay[source].schedule) == schedule_to_json(
            first[source].schedule
        )


def test_serial_and_parallel_share_cache_entries(tmp_path):
    artifact_cache.activate(path=tmp_path / "cache")
    net = random_multi_source_net(2, 4, seed=3)
    serial = find_all_schedules(net)  # populates the cache
    GLOBAL_SCHEDULE_CACHE.drop_memory()
    parallel = find_all_schedules(random_multi_source_net(2, 4, seed=3), workers=2)
    assert all(r.from_cache for r in parallel.values())
    for source in serial:
        assert schedule_to_json(parallel[source].schedule) == schedule_to_json(
            serial[source].schedule
        )


def test_env_dir_override_and_null_degradation(tmp_path, monkeypatch):
    # REPRO_CACHE_DIR moves the store
    target = tmp_path / "elsewhere"
    monkeypatch.setenv("REPRO_CACHE", "1")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(target))
    artifact_cache.reset_active_store()
    store = artifact_cache.active_store()
    assert store is not None and str(target) in store.describe()
    find_all_schedules(figure_5(), sources=["a"])
    assert any(e.kind == "schedule" for e in store.entries())

    # REPRO_CACHE_DIR pointing somewhere unusable degrades to misses
    blocker = tmp_path / "blocker"
    blocker.write_text("file")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(blocker / "nested"))
    artifact_cache.reset_active_store()
    GLOBAL_SCHEDULE_CACHE.drop_memory()  # the in-memory hit would mask the miss
    null = artifact_cache.active_store()
    assert isinstance(null, NullStore)
    results = find_all_schedules(figure_5(), sources=["a"])  # still schedules fine
    assert results["a"].success and not results["a"].from_cache


def test_cache_off_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    artifact_cache.reset_active_store()
    assert artifact_cache.active_store() is None


def test_active_store_never_crosses_a_fork(tmp_path, monkeypatch):
    """A store resolved in one PID must not be handed out in another
    (sqlite connections are fork-unsafe): the resolution is re-run instead."""
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    store = artifact_cache.activate(path=tmp_path / "cache")
    assert artifact_cache.active_store() is store
    # simulate "we are now a forked child of the process that activated"
    monkeypatch.setattr(artifact_cache, "_ACTIVE_PID", os.getpid() - 1)
    assert artifact_cache.active_store() is not store  # env is unset -> None
    assert artifact_cache.active_store() is None


def test_disable_in_subprocess_leaves_inherited_store_untouched(tmp_path):
    store = artifact_cache.activate(path=tmp_path / "cache")
    store.put("schedule", "k", {"x": 1})
    artifact_cache.disable_in_subprocess()
    assert artifact_cache.active_store() is None
    # the (conceptually parent-owned) store object was not closed
    assert store.get("schedule", "k") == {"x": 1}


def test_suspended_hides_then_restores_the_active_store(tmp_path):
    store = artifact_cache.activate(path=tmp_path / "cache")
    with artifact_cache.suspended():
        assert artifact_cache.active_store() is None
    assert artifact_cache.active_store() is store
    store.put("schedule", "k", {"x": 1})  # still open and writable
    assert store.get("schedule", "k") == {"x": 1}


def test_bench_timing_loop_does_not_consume_a_callers_store(tmp_path):
    """run_cli_bench must measure real searches and hand the caller's
    activated store back intact (neither closed nor deactivated)."""
    import sys

    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    try:
        from bench_scheduler import run_cli_bench
    finally:
        sys.path.pop(0)
    store = artifact_cache.activate(path=tmp_path / "cache")
    report = run_cli_bench(workers=1, quick=True, backends=("scalar",), cache=False)
    assert report["cases"][0]["backends"]["scalar"]["serial_seconds"] > 0.001
    assert artifact_cache.active_store() is store
    store.put("schedule", "k", {"x": 1})
    assert store.get("schedule", "k") == {"x": 1}  # connection still live


def test_disk_rejected_counts_only_this_caches_rejections(store):
    net = build_divisors_system().net
    fp = structural_fingerprint(net)
    ofp = options_fingerprint(options_cache_key(SchedulerOptions()))
    # a corrupt entry under the exact key the lookup will use
    store.put(
        "schedule",
        schedule_cache_key(fp, "src.divisors.in", ofp),
        {"net_fingerprint": "wrong", "source": "src.divisors.in", "options_fp": ofp,
         "record": {}},
    )
    # unrelated quarantine history must not leak into the warm-start stats
    store.put("t_invariant_basis", "junk", {"x": 1})
    store.quarantine("t_invariant_basis", "junk", "unrelated")
    cache = ScheduleWarmStartCache(store=store)
    result = cache.find_schedule(net, "src.divisors.in")
    assert result.success and not result.from_cache
    assert cache.stats.disk_rejected == 1  # exactly the corrupt schedule entry
    # a plain miss afterwards does not bump the counter
    cache.find_schedule(figure_5(), "a")
    assert cache.stats.disk_rejected == 1


# ---------------------------------------------------------------------------
# the CLI
# ---------------------------------------------------------------------------


def test_cli_stats_clear_verify(tmp_path, capsys):
    root = tmp_path / "cache"
    store = open_store(root)
    # a real, correctly keyed schedule entry...
    net = build_divisors_system().net
    fp = structural_fingerprint(net)
    ofp = options_fingerprint(options_cache_key(SchedulerOptions()))
    store_schedule_record(
        store, net_fingerprint=fp, source="src.divisors.in", options_fp=ofp,
        record=_record_for(net),
    )
    # ...plus one whose wire record gets corrupted behind the store's back
    store.put("schedule", schedule_cache_key(fp, "t.other", ofp), {"fine": 2})
    conn = sqlite3.connect(store.path)
    conn.execute("UPDATE entries SET blob = 'junk' WHERE key LIKE '%t.other'")
    conn.commit()
    conn.close()
    store.close()

    assert cache_cli(["stats", "--dir", str(root), "--json"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["entries"] == 2 and stats["by_kind"]["schedule"]["entries"] == 2

    assert cache_cli(["verify", "--dir", str(root), "--json"]) == 1  # one bad entry
    report = json.loads(capsys.readouterr().out)
    assert report["checked"] == 2 and report["ok"] == 1
    assert [q["kind"] for q in report["quarantined"]] == ["schedule"]
    assert cache_cli(["verify", "--dir", str(root)]) == 0  # now clean
    capsys.readouterr()


def test_cli_verify_flags_identity_mismatch(tmp_path, capsys):
    """verify cross-checks payload identity against the key offline: an
    entry filed under somebody else's key is quarantined without a net."""
    root = tmp_path / "cache"
    store = open_store(root)
    net = build_divisors_system().net
    fp = structural_fingerprint(net)
    ofp = options_fingerprint(options_cache_key(SchedulerOptions()))
    # valid wire record, wrong identity: filed under a different fingerprint
    store.put(
        "schedule",
        schedule_cache_key("0" * 64, "src.divisors.in", ofp),
        {"net_fingerprint": fp, "source": "src.divisors.in", "options_fp": ofp,
         "record": _record_for(net)},
    )
    store.close()
    assert cache_cli(["verify", "--dir", str(root), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["ok"] == 0 and len(report["quarantined"]) == 1
    assert cache_cli(["stats", "--dir", str(root), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["quarantined"] == 1

def test_cli_stats_after_clear(tmp_path, capsys):
    root = tmp_path / "cache"
    open_store(root).put("schedule", "k", {"x": 1})
    cache_cli(["clear", "--dir", str(root)])
    capsys.readouterr()
    cache_cli(["stats", "--dir", str(root), "--json"])
    assert json.loads(capsys.readouterr().out)["entries"] == 0


# ---------------------------------------------------------------------------
# the acceptance criterion: a second process does zero search work
# ---------------------------------------------------------------------------

_ACCEPTANCE_SCRIPT = """
import json, sys
sys.path.insert(0, sys.argv[1])
from repro.apps.divisors import build_divisors_system
from repro.apps.workloads import random_multi_source_net
from repro.scheduling.ep import find_all_schedules
from repro.scheduling.serialize import schedule_to_json
from repro.scheduling.warmstart import LIVE_SEARCH_COUNTERS

results = {}
results.update(find_all_schedules(build_divisors_system().net))
results.update(find_all_schedules(random_multi_source_net(3, 4, seed=11), workers=2))
out = {
    "schedules": {s: schedule_to_json(r.schedule) for s, r in results.items()},
    "from_cache": {s: r.from_cache for s, r in results.items()},
    "live_counters": LIVE_SEARCH_COUNTERS.as_dict(),
}
print(json.dumps(out))
"""


def _run_acceptance_process(cache_dir: Path) -> dict:
    env = dict(os.environ)
    env["REPRO_CACHE"] = "1"
    env["REPRO_CACHE_DIR"] = str(cache_dir)
    env.pop("PYTHONPATH", None)
    proc = subprocess.run(
        [sys.executable, "-c", _ACCEPTANCE_SCRIPT, str(REPO_ROOT / "src")],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def test_second_process_replays_byte_identical_with_zero_expansions(tmp_path):
    """ISSUE 4 acceptance: byte-identical schedules from the disk cache,
    zero EP search node expansions in the warm process."""
    cache_dir = tmp_path / "cache"
    cold = _run_acceptance_process(cache_dir)
    assert not any(cold["from_cache"].values())
    assert cold["live_counters"]["nodes_expanded"] > 0

    warm = _run_acceptance_process(cache_dir)
    assert all(warm["from_cache"].values())
    assert warm["live_counters"]["nodes_expanded"] == 0
    assert warm["live_counters"]["fires"] == 0
    assert warm["schedules"] == cold["schedules"]  # byte-identical replay
