"""Serial vs. parallel ``find_all_schedules``: observational equivalence.

The parallel path must be a pure wall-clock optimisation: byte-identical
schedules (canonical JSON), identical per-source counters / tree sizes /
failure reasons, and the same deterministic result order.  A module-scoped
process pool is shared across the property-test examples so each example
pays one pickled-net shipment, not one pool start-up (workers cache the
materialised net per structural fingerprint).
"""

from __future__ import annotations

import random
from concurrent.futures import ProcessPoolExecutor

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import paper_nets
from repro.apps.workloads import random_marked_graph, random_multi_source_net
from repro.petrinet.fingerprint import structural_fingerprint
from repro.scheduling.ep import SchedulerOptions, SchedulingFailure, find_all_schedules
from repro.scheduling.parallel import (
    aggregate_counters,
    find_all_schedules_parallel,
)
from repro.scheduling.serialize import schedule_to_json


@pytest.fixture(scope="module")
def pool():
    with ProcessPoolExecutor(max_workers=2) as executor:
        yield executor


def assert_equivalent(net, serial, parallel):
    assert list(serial) == list(parallel)  # same deterministic order
    for source in serial:
        a, b = serial[source], parallel[source]
        assert a.success == b.success, source
        if a.schedule is not None:
            assert schedule_to_json(a.schedule) == schedule_to_json(b.schedule)
            # the merged schedule is re-bound to the caller's net object
            assert b.schedule.net is net
        assert a.failure_reason == b.failure_reason
        assert a.tree_nodes == b.tree_nodes
        assert a.counters.as_dict() == b.counters.as_dict()
    total_serial = aggregate_counters(serial.values())
    total_parallel = aggregate_counters(parallel.values())
    assert total_serial.as_dict() == total_parallel.as_dict()


@pytest.mark.parametrize(
    "builder",
    [
        paper_nets.figure_4a,
        paper_nets.figure_4b,
        paper_nets.figure_5,
        paper_nets.figure_6,
        lambda: paper_nets.figure_7(3),
        paper_nets.figure_8,
    ],
    ids=["figure_4a", "figure_4b", "figure_5", "figure_6", "figure_7_k3", "figure_8"],
)
def test_parallel_matches_serial_on_figure_nets(builder, pool):
    net = builder()
    serial = find_all_schedules(net)
    parallel = find_all_schedules_parallel(net, executor=pool)
    assert_equivalent(net, serial, parallel)


def test_workers_argument_spawns_own_pool():
    """`find_all_schedules(workers=2)` (initializer-shipped path) agrees too."""
    net = paper_nets.figure_5()
    serial = find_all_schedules(net)
    parallel = find_all_schedules(net, workers=2)
    assert_equivalent(net, serial, parallel)


def test_parallel_raise_on_failure(pool):
    net = paper_nets.figure_4b()
    options = SchedulerOptions(max_nodes=500)
    with pytest.raises(SchedulingFailure, match="'a'"):
        find_all_schedules_parallel(
            net, options=options, executor=pool, raise_on_failure=True
        )


def test_parallel_unknown_source_raises(pool):
    net = paper_nets.figure_5()
    with pytest.raises(KeyError):
        find_all_schedules_parallel(net, sources=["nope"], executor=pool)


def test_parallel_no_sources_is_empty(pool):
    net = paper_nets.figure_5()
    assert find_all_schedules_parallel(net, sources=[], executor=pool) == {}


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    sources=st.integers(min_value=1, max_value=3),
    transitions=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_parallel_matches_serial_on_generated_multi_source_nets(
    sources, transitions, seed, pool
):
    net = random_multi_source_net(sources, transitions, rng=random.Random(seed))
    options = SchedulerOptions(max_nodes=20_000)
    serial = find_all_schedules(net, options=options)
    parallel = find_all_schedules_parallel(net, options=options, executor=pool)
    assert_equivalent(net, serial, parallel)
    assert len(serial) == sources
    for result in serial.values():
        assert result.success


@settings(max_examples=5, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    transitions=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_parallel_matches_serial_on_marked_graphs(transitions, seed, pool):
    net = random_marked_graph(transitions, rng=random.Random(seed))
    options = SchedulerOptions(max_nodes=20_000)
    serial = find_all_schedules(net, options=options)
    parallel = find_all_schedules_parallel(net, options=options, executor=pool)
    assert_equivalent(net, serial, parallel)


def test_external_executor_stays_identical_after_worker_cache_eviction():
    """Schedules from a reused external executor survive worker-side eviction.

    A single-worker pool is fed more distinct nets than the worker's
    fingerprint LRU holds (capacity 4), forcing the first net's cached
    materialisation -- and its shared-memory attachment, if any -- to be
    evicted and detached; rescheduling that net afterwards must re-attach /
    re-materialise and still produce byte-identical results.
    """
    from repro.scheduling.parallel import _MATERIALISED

    builders = [
        paper_nets.figure_4a,
        paper_nets.figure_5,
        paper_nets.figure_6,
        paper_nets.figure_8,
        lambda: paper_nets.figure_7(3),
    ]
    assert len(builders) > _MATERIALISED.capacity
    with ProcessPoolExecutor(max_workers=1) as executor:
        first_net = builders[0]()
        before = find_all_schedules_parallel(first_net, executor=executor)
        for builder in builders[1:]:
            find_all_schedules_parallel(builder(), executor=executor)
        # the single worker has now evicted figure_4a's entry
        after = find_all_schedules_parallel(first_net, executor=executor)
    serial = find_all_schedules(first_net)
    assert_equivalent(first_net, serial, before)
    assert_equivalent(first_net, serial, after)


# ---------------------------------------------------------------------------
# workload generator determinism (the explicit-RNG refactor)
# ---------------------------------------------------------------------------


def test_generators_take_explicit_rng_and_are_deterministic():
    a = random_marked_graph(5, rng=random.Random(7))
    b = random_marked_graph(5, rng=random.Random(7))
    assert structural_fingerprint(a) == structural_fingerprint(b)
    # seed= remains a convenience for an implicit Random(seed)
    c = random_marked_graph(5, seed=7)
    assert structural_fingerprint(a) == structural_fingerprint(c)
    # different seeds actually produce different structures (seed 7 draws
    # different extra edges than seed 8 at this size)
    d = random_marked_graph(5, rng=random.Random(8))
    assert structural_fingerprint(a) != structural_fingerprint(d)


def test_generators_do_not_touch_global_random_state():
    random.seed(1234)
    before = random.getstate()
    random_marked_graph(5, seed=3)
    random_multi_source_net(2, 3, seed=4)
    assert random.getstate() == before


def test_multi_source_net_shape():
    net = random_multi_source_net(3, 3, rng=random.Random(0))
    assert net.uncontrollable_sources() == ["r0.src", "r1.src", "r2.src"]


def test_warm_start_replay_keeps_original_statistics():
    """A replayed result keeps the original search's wall clock and counters
    (experiment tables report scheduling time; 0.0 would corrupt them)."""
    from repro.scheduling.warmstart import ScheduleWarmStartCache

    cache = ScheduleWarmStartCache()
    first = cache.find_schedule(paper_nets.figure_5(), "a")
    replayed = cache.find_schedule(paper_nets.figure_5(), "a")
    assert not first.from_cache and replayed.from_cache
    assert replayed.elapsed_seconds == first.elapsed_seconds > 0.0
    assert replayed.tree_nodes == first.tree_nodes
    assert replayed.counters.as_dict() == first.counters.as_dict()
    assert schedule_to_json(replayed.schedule) == schedule_to_json(first.schedule)


def test_warm_start_keys_on_validate_flag():
    """A schedule cached under validate=False must not satisfy a
    validate=True call (the replay never re-validates)."""
    from repro.scheduling.warmstart import ScheduleWarmStartCache

    cache = ScheduleWarmStartCache()
    cache.find_schedule(
        paper_nets.figure_5(), "a", options=SchedulerOptions(validate=False)
    )
    validated = cache.find_schedule(
        paper_nets.figure_5(), "a", options=SchedulerOptions(validate=True)
    )
    assert not validated.from_cache
    assert cache.stats.misses == 2 and cache.stats.hits == 0
