"""Tests of the corpus subsystem: generation, differential runs, shrinking.

The acceptance-critical case lives in ``TestFaultInjection``: a deliberately
injected codegen-layer fault must be *caught* by the differential harness at
the compare stage and *shrunk* to a minimal (<= 10 process) reproducer whose
triage bundle replays the failure.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

import pytest

from repro.codegen.task import ExecutableTask
from repro.corpus import (
    BACKENDS,
    FAMILIES,
    EdgeSpec,
    ProcessSpec,
    ScenarioSpec,
    SpecError,
    SubsystemSpec,
    build_case,
    check_spec,
    emit_program,
    generate_corpus,
    generate_spec,
    make_unschedulable_spec,
    run_case,
    shrink_case,
    spec_from_dict,
    spec_to_dict,
    stimulus_for,
)
from repro.corpus.cli import main as corpus_main
from repro.flowc.linker import link
from repro.scheduling.ep import SchedulerOptions, find_all_schedules

pytestmark = pytest.mark.corpus

warnings.filterwarnings("ignore", message=".*compiled kernel tier unavailable.*")


# ---------------------------------------------------------------------------
# generation
# ---------------------------------------------------------------------------


class TestGeneration:
    def test_same_seed_same_spec(self):
        assert generate_spec(17) == generate_spec(17)
        assert generate_spec(3, "tree") == generate_spec(3, "tree")

    def test_different_seeds_differ(self):
        assert generate_spec(1, "chain") != generate_spec(2, "chain")

    def test_corpus_covers_every_family(self):
        families = {spec.family for spec in generate_corpus(len(FAMILIES))}
        assert families == set(FAMILIES)

    def test_corpus_is_prefix_stable(self):
        assert generate_corpus(10)[:4] == generate_corpus(4)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            generate_spec(0, "moebius")

    def test_spec_roundtrips_through_json(self):
        for seed in range(len(FAMILIES)):
            spec = generate_spec(seed)
            data = json.loads(json.dumps(spec_to_dict(spec)))
            assert spec_from_dict(data) == spec

    def test_stimulus_prefix_stable_under_truncation(self):
        spec = generate_spec(5, "chain")
        long = stimulus_for(spec)
        from dataclasses import replace

        short = stimulus_for(replace(spec, stimulus_length=1))
        for port, values in short.items():
            assert values == long[port][: len(values)]


class TestSpecValidation:
    def test_rejects_indivisible_rates(self):
        spec = ScenarioSpec(
            seed=0,
            family="chain",
            subsystems=(
                SubsystemSpec(
                    trigger="a",
                    processes=(ProcessSpec("a"), ProcessSpec("b", repetitions=2)),
                    edges=(EdgeSpec("c", "a", "b", items=3),),
                ),
            ),
        )
        with pytest.raises(SpecError):
            check_spec(spec)

    def test_rejects_unreachable_process(self):
        spec = ScenarioSpec(
            seed=0,
            family="chain",
            subsystems=(
                SubsystemSpec(
                    trigger="a",
                    processes=(ProcessSpec("a"), ProcessSpec("b")),
                    edges=(),
                ),
            ),
        )
        with pytest.raises(SpecError):
            check_spec(spec)

    def test_rejects_arm_edge_without_branch(self):
        spec = ScenarioSpec(
            seed=0,
            family="chain",
            subsystems=(
                SubsystemSpec(
                    trigger="a",
                    processes=(ProcessSpec("a"), ProcessSpec("b")),
                    edges=(EdgeSpec("c", "a", "b", arm=0),),
                ),
            ),
        )
        with pytest.raises(SpecError):
            check_spec(spec)


# ---------------------------------------------------------------------------
# differential pipeline
# ---------------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize("family", FAMILIES)
    def test_one_case_per_family_passes(self, family):
        outcome = run_case(generate_spec(23, family))
        assert outcome.passed, f"{outcome.stage}: {outcome.message}"
        assert outcome.schedulable

    def test_unschedulable_case_fails_on_every_backend(self):
        case = build_case(make_unschedulable_spec(0))
        linked = link(case.network)
        for backend in BACKENDS:
            results = find_all_schedules(
                linked.net,
                options=SchedulerOptions(backend=backend),
                sources=case.manifest["source_transitions"],
                raise_on_failure=False,
            )
            assert not all(r.success for r in results.values()), backend

    def test_unschedulable_case_passes_as_expected_failure(self):
        outcome = run_case(make_unschedulable_spec(0))
        assert outcome.passed
        assert not outcome.schedulable

    def test_manifest_axes_reflect_spec(self):
        spec = make_unschedulable_spec(0)
        manifest = build_case(spec).manifest
        assert manifest["axes"]["branching"]
        assert not manifest["expected_schedulable"]


# ---------------------------------------------------------------------------
# fault injection + shrinking (the acceptance criterion)
# ---------------------------------------------------------------------------


class TestFaultInjection:
    @pytest.fixture
    def inject_codegen_fault(self, monkeypatch):
        """Corrupt the synthesized task's reaction to its triggering value."""
        original = ExecutableTask.react

        def faulty(self, value):
            return original(self, value + 1)

        monkeypatch.setattr(ExecutableTask, "react", faulty)

    def test_fault_is_caught_at_compare_stage(self, inject_codegen_fault):
        outcome = run_case(generate_spec(23, "chain"))
        assert not outcome.passed
        assert outcome.stage == "compare"
        assert "diverge" in outcome.message

    def test_fault_shrinks_to_minimal_reproducer(self, inject_codegen_fault):
        spec = generate_spec(23, "multi_source")
        assert spec.size() > 4, "need a non-trivial starting point"
        failure = run_case(spec)
        assert not failure.passed and failure.stage == "compare"
        shrunk = shrink_case(spec, failure)
        assert shrunk.reduced
        assert shrunk.spec.size() <= 10
        assert shrunk.outcome.stage == "compare"

    def test_triage_bundle_replays(self, inject_codegen_fault, tmp_path):
        from repro.corpus.cli import write_triage

        spec = generate_spec(23, "chain")
        failure = run_case(spec)
        shrunk = shrink_case(spec, failure)
        case_dir = write_triage(tmp_path, spec, failure, shrunk)
        for name in ("spec.json", "original_spec.json", "program.flowc", "outcome.json"):
            assert (case_dir / name).exists()
        replayed = spec_from_dict(json.loads((case_dir / "spec.json").read_text()))
        again = run_case(replayed)
        assert not again.passed and again.stage == "compare"

    def test_shrink_rejects_passing_outcome(self):
        spec = generate_spec(23, "chain")
        outcome = run_case(spec)
        assert outcome.passed
        with pytest.raises(ValueError):
            shrink_case(spec, outcome)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestCli:
    def test_small_sweep_exits_zero(self, tmp_path, capsys):
        code = corpus_main(
            [
                "--cases", "3",
                "--seed", "5",
                "--triage-dir", str(tmp_path / "triage"),
                "--bench-output", str(tmp_path / "bench.json"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "passed" in out
        document = json.loads((tmp_path / "bench.json").read_text())
        # 3 generated + 2 expected-failure cases, read-modify-write section
        assert document["corpus"]["cases"] == 5
        assert document["corpus"]["pass_rate"] == 1.0

    def test_bench_merge_preserves_other_sections(self, tmp_path):
        bench = tmp_path / "bench.json"
        bench.write_text(json.dumps({"serve": {"kept": True}}))
        code = corpus_main(
            [
                "--cases", "1",
                "--seed", "3",
                "--families", "chain",
                "--triage-dir", str(tmp_path / "triage"),
                "--bench-output", str(bench),
            ]
        )
        assert code == 0
        document = json.loads(bench.read_text())
        assert document["serve"] == {"kept": True}
        assert "corpus" in document

    def test_failing_sweep_writes_triage_and_exits_nonzero(
        self, tmp_path, monkeypatch
    ):
        original = ExecutableTask.react
        monkeypatch.setattr(
            ExecutableTask, "react", lambda self, value: original(self, value + 1)
        )
        triage = tmp_path / "triage"
        code = corpus_main(
            [
                "--cases", "1",
                "--seed", "23",
                "--families", "chain",
                "--triage-dir", str(triage),
            ]
        )
        assert code == 1
        bundles = list(triage.iterdir())
        assert bundles, "failing cases must produce triage bundles"

    def test_replay_roundtrip(self, tmp_path, capsys):
        spec = generate_spec(23, "chain")
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_to_dict(spec)))
        assert corpus_main(["--replay", str(path)]) == 0
        assert "PROCESS" in capsys.readouterr().out


@pytest.mark.slow
class TestFullSmoke:
    """The CI corpus job's sweep, runnable locally with ``-m slow``."""

    def test_smoke_sweep_passes(self, tmp_path):
        assert (
            corpus_main(["--smoke", "--triage-dir", str(tmp_path / "triage")]) == 0
        )
