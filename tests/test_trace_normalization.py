"""Tests of the corpus trace normalization itself.

Equivalence must be *insensitive* to legal interleavings of independent
environment channels (the round-robin baseline and the synthesized task emit
to unrelated channels in different global orders) yet *reject* reordered
events on any one channel.  Both directions are pinned here, because a
normalizer that is too loose silently accepts broken codegen and one that is
too strict rejects every legal run.
"""

from __future__ import annotations

import pytest

from repro.corpus.differential import normalize_trace, trace_diff, traces_equivalent
from repro.runtime.channels import TraceRecorder, TracingSink


def _record(script):
    """Build a recorder from [(port, values), ...] in the given global order."""
    recorder = TraceRecorder()
    sinks = {}
    for port, values in script:
        sink = sinks.setdefault(port, TracingSink(port, recorder))
        sink.write(values)
    return recorder


class TestInterleavingInsensitivity:
    def test_independent_channel_interleavings_are_equivalent(self):
        interleaved = _record([("a", [1]), ("b", [9]), ("a", [2]), ("b", [8])])
        grouped = _record([("a", [1]), ("a", [2]), ("b", [9]), ("b", [8])])
        assert traces_equivalent(interleaved, grouped)
        assert trace_diff(interleaved, grouped) is None

    def test_reversed_global_order_is_equivalent(self):
        forward = _record([("a", [1]), ("b", [2])])
        backward = _record([("b", [2]), ("a", [1])])
        assert traces_equivalent(forward, backward)

    def test_three_channel_shuffle(self):
        left = _record([("a", [1]), ("b", [2]), ("c", [3]), ("a", [4])])
        right = _record([("c", [3]), ("a", [1]), ("a", [4]), ("b", [2])])
        assert traces_equivalent(left, right)


class TestSameChannelOrderSensitivity:
    def test_reordered_events_on_one_channel_rejected(self):
        ordered = _record([("a", [1]), ("a", [2])])
        reordered = _record([("a", [2]), ("a", [1])])
        assert not traces_equivalent(ordered, reordered)
        diff = trace_diff(ordered, reordered)
        assert diff is not None and "'a'" in diff and "event 0" in diff

    def test_reorder_on_one_of_many_channels_rejected(self):
        left = _record([("a", [1]), ("b", [5]), ("a", [2]), ("b", [6])])
        right = _record([("a", [1]), ("b", [6]), ("a", [2]), ("b", [5])])
        assert not traces_equivalent(left, right)
        assert "'b'" in trace_diff(left, right)

    def test_missing_events_rejected(self):
        full = _record([("a", [1]), ("a", [2])])
        truncated = _record([("a", [1])])
        assert not traces_equivalent(full, truncated)
        assert "2 vs 1 events" in trace_diff(full, truncated)

    def test_missing_channel_rejected(self):
        both = _record([("a", [1]), ("b", [2])])
        one = _record([("a", [1])])
        assert not traces_equivalent(both, one)
        assert "'b'" in trace_diff(both, one)


class TestEventGranularity:
    def test_burst_boundaries_are_significant(self):
        """One 2-item write is not the same event as two 1-item writes."""
        burst = _record([("a", [1, 2])])
        split = _record([("a", [1]), ("a", [2])])
        assert normalize_trace(burst) == {"a": [(1, 2)]}
        assert normalize_trace(split) == {"a": [(1,), (2,)]}
        assert not traces_equivalent(burst, split)

    def test_mapping_input_form_normalizes_like_recorders(self):
        recorder = _record([("a", [1]), ("a", [2, 3])])
        mapping = {"a": [[1], [2, 3]]}
        assert normalize_trace(mapping) == normalize_trace(recorder)
        assert traces_equivalent(mapping, recorder)
