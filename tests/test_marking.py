"""Unit and property tests for markings."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.petrinet.marking import Marking


def test_empty_marking_behaviour():
    m = Marking()
    assert len(m) == 0
    assert m["anything"] == 0
    assert m.total_tokens() == 0
    assert m.pretty() == "<empty>"


def test_zero_entries_are_dropped():
    assert Marking({"a": 0, "b": 2}) == Marking({"b": 2})
    assert "a" not in Marking({"a": 0})


def test_negative_counts_rejected():
    with pytest.raises(ValueError):
        Marking({"a": -1})


def test_equality_and_hash():
    m1 = Marking({"a": 1, "b": 2})
    m2 = Marking([("b", 2), ("a", 1)])
    assert m1 == m2
    assert hash(m1) == hash(m2)
    assert m1 == {"a": 1, "b": 2}
    assert m1 != Marking({"a": 1})


def test_add_and_covers():
    m = Marking({"a": 1})
    m2 = m.add({"a": 2, "b": 1})
    assert m2 == Marking({"a": 3, "b": 1})
    assert m2.covers(m)
    assert not m.covers(m2)
    with pytest.raises(ValueError):
        m.add({"a": -5})


def test_restrict_and_pretty():
    m = Marking({"a": 1, "b": 3})
    assert m.restrict(["b", "c"]) == Marking({"b": 3})
    assert m.pretty() == "a b^3"


def test_items_with_zero_lists_all_requested_places():
    m = Marking({"a": 2})
    assert dict(m.items_with_zero(["a", "b"])) == {"a": 2, "b": 0}


names = st.sampled_from(["p0", "p1", "p2", "p3", "p4"])
markings = st.dictionaries(names, st.integers(min_value=0, max_value=6), max_size=5)


@given(markings)
def test_marking_roundtrip_property(data):
    m = Marking(data)
    for place, count in data.items():
        assert m[place] == count
    assert m.total_tokens() == sum(data.values())


@given(markings, markings)
def test_add_is_componentwise(a, b):
    result = Marking(a).add(b)
    for place in set(a) | set(b):
        assert result[place] == a.get(place, 0) + b.get(place, 0)


@given(markings, markings)
def test_covers_is_a_partial_order(a, b):
    ma, mb = Marking(a), Marking(b)
    if ma.covers(mb) and mb.covers(ma):
        assert ma == mb
    assert ma.covers(ma)
