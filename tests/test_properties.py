"""Property-based tests (hypothesis) on the core invariants of the flow."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.workloads import (
    build_pipeline_network,
    build_producer_consumer_network,
    random_marked_graph,
)
from repro.flowc.linker import link
from repro.petrinet.analysis import compute_ecs_partition
from repro.petrinet.invariants import incidence_matrix, t_invariant_basis, is_t_invariant
from repro.petrinet.marking import Marking
from repro.scheduling.ep import SchedulerOptions, find_schedule
from repro.scheduling.independence import is_independent_set
from repro.scheduling.runs import build_run


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=50))
def test_firing_matches_incidence_matrix(transitions, seed):
    """Firing a transition changes the marking by exactly its incidence column."""
    net = random_marked_graph(transitions, seed=seed)
    matrix, places, names = incidence_matrix(net)
    marking = net.initial_marking
    for transition in net.enabled_transitions(marking):
        after = net.fire(transition, marking)
        column = matrix[:, names.index(transition)]
        for row, place in enumerate(places):
            assert after[place] - marking[place] == column[row]


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=50))
def test_ecs_partition_is_a_partition(transitions, seed):
    net = random_marked_graph(transitions, seed=seed)
    partition = compute_ecs_partition(net)
    seen = [t for ecs in partition for t in ecs]
    assert sorted(seen) == sorted(net.transitions)
    assert len(seen) == len(set(seen))


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=2, max_value=5), st.integers(min_value=0, max_value=20))
def test_marked_graphs_are_schedulable(transitions, seed):
    """Strongly-connected marked graphs with the all-ones invariant always
    admit a single-source schedule (the class the paper cites as exactly
    solvable)."""
    net = random_marked_graph(transitions, seed=seed)
    result = find_schedule(net, "src", options=SchedulerOptions(max_nodes=20_000))
    assert result.success
    result.schedule.validate()
    # the schedule fires every transition of the ring
    assert set(net.transitions) == result.schedule.involved_transitions()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=1, max_value=6), st.sampled_from([1, 2, 3]))
def test_producer_consumer_schedule_bounds(items_factor, burst):
    """The synthesized schedule bounds the data channel by one burst."""
    items = burst * items_factor
    network = build_producer_consumer_network(items=items, burst=burst)
    system = link(network)
    result = find_schedule(
        system.net, "src.producer.trigger", options=SchedulerOptions(max_nodes=30_000)
    )
    assert result.success
    schedule = result.schedule
    schedule.validate()
    assert len(schedule.await_nodes()) == 1
    data_place = system.channel_places["data"]
    assert schedule.place_bounds()[data_place] <= burst
    # runs of arbitrary length are executable
    run = build_run({"src.producer.trigger": schedule}, ["src.producer.trigger"] * 3)
    assert run.final_marking == system.net.initial_marking


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=2, max_value=4), st.integers(min_value=1, max_value=4))
def test_pipeline_schedules_are_single_source_and_independent(stages, items):
    network = build_pipeline_network(stages=stages, items=items)
    system = link(network)
    result = find_schedule(
        system.net, "src.stage0.trigger", options=SchedulerOptions(max_nodes=30_000)
    )
    assert result.success
    schedule = result.schedule
    assert schedule.is_single_source()
    assert is_independent_set([schedule])
    for place, bound in schedule.channel_bounds().items():
        assert bound <= max(items, 1)


@settings(max_examples=30, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]), st.integers(min_value=0, max_value=5), max_size=3
    ),
    st.dictionaries(
        st.sampled_from(["a", "b", "c"]), st.integers(min_value=0, max_value=5), max_size=3
    ),
)
def test_marking_cover_is_consistent_with_add(base, extra):
    m = Marking(base)
    bigger = m.add(extra)
    assert bigger.covers(m)
    if any(extra.values()):
        assert bigger != m


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=6), st.integers(min_value=0, max_value=30))
def test_invariant_basis_members_are_invariants(transitions, seed):
    net = random_marked_graph(transitions, seed=seed)
    for invariant in t_invariant_basis(net):
        assert is_t_invariant(net, invariant)
        assert all(count > 0 for count in invariant.values())
