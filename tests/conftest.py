"""Shared fixtures: compiled systems and schedules reused across test modules."""

from __future__ import annotations

import pytest

from repro.apps.divisors import build_divisors_system
from repro.apps.video import VideoAppConfig, build_video_system
from repro.scheduling.ep import SchedulerOptions, find_schedule


@pytest.fixture(scope="session")
def divisors_system():
    return build_divisors_system()


@pytest.fixture(scope="session")
def divisors_schedule(divisors_system):
    result = find_schedule(divisors_system.net, "src.divisors.in", raise_on_failure=True)
    return result.schedule


@pytest.fixture(scope="session")
def small_video_config():
    return VideoAppConfig(lines_per_frame=2, pixels_per_line=3)


@pytest.fixture(scope="session")
def small_video_system(small_video_config):
    return build_video_system(small_video_config)


@pytest.fixture(scope="session")
def small_video_schedule(small_video_system):
    result = find_schedule(
        small_video_system.net,
        "src.controller.init",
        options=SchedulerOptions(max_nodes=50_000),
        raise_on_failure=True,
    )
    return result.schedule
