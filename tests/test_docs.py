"""The README is executable documentation.

Every fenced ``python`` block in ``README.md`` is extracted verbatim and
executed in its own namespace -- if the quickstart drifts from the API, this
fails before a reader does.  (The CI docs job runs this module plus every
``examples/*.py`` script.)
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _python_blocks():
    text = README.read_text(encoding="utf-8")
    return _FENCE.findall(text)


def test_readme_exists_with_python_blocks():
    blocks = _python_blocks()
    assert len(blocks) >= 2, "README should carry runnable quickstart snippets"


@pytest.mark.parametrize("index", range(len(_python_blocks())))
def test_readme_python_block_runs_verbatim(index):
    block = _python_blocks()[index]
    namespace: dict = {"__name__": "__readme__"}
    exec(compile(block, f"README.md[python block {index}]", "exec"), namespace)


def test_readme_documents_the_contract():
    text = README.read_text(encoding="utf-8")
    # tier-1 test command, cache knobs and the docs suite must stay mentioned
    assert "python -m pytest -x -q" in text
    assert "REPRO_CACHE" in text and "python -m repro.cache" in text
    assert "docs/user_guide.md" in text and "docs/architecture.md" in text
    for linked in ("docs/user_guide.md", "docs/architecture.md"):
        assert (README.parent / linked).exists(), f"README links a missing {linked}"
